"""Setuptools entry point (kept for legacy editable installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CellFusion / XNC reproduction: multipath vehicle-to-cloud video "
        "streaming with network coding (SIGCOMM 2023)"
    ),
    license="Apache-2.0",
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
