"""Fig. 10(a) — deployment packet-delay CDF: CellFusion vs 5G/LTE-only.

Paper numbers: CellFusion P95/P99/P99.9 = 47.4 / 73.8 / 222.3 ms versus
5G-only 55.8 / 259.2 / 954.7 ms and LTE-only 76.1 / 267.2 / 791.9 ms —
a 71.53 % P99 reduction vs 5G.  Expected shape: CellFusion's tail
(P99/P99.9) is several-fold lower than either single link.
"""

from conftest import bench_duration, bench_seeds, write_result
from repro.analysis.report import format_table
from repro.experiments.figures import fig10a_delay_cdf


def test_fig10a_delay_cdf(once):
    res = once(fig10a_delay_cdf, duration=bench_duration(15.0), seeds=bench_seeds(3))

    rows = []
    for arm in ("cellfusion", "5G-only", "LTE-only"):
        pct = res.percentiles[arm]
        rows.append(
            [arm] + ["%.1f" % (pct[k] * 1000) for k in ("p50", "p95", "p99", "p99.9")]
        )
    table = format_table(
        ["arm", "P50 ms", "P95 ms", "P99 ms", "P99.9 ms"],
        rows,
        title="Fig. 10(a) — video packet delay percentiles",
    )
    red = res.reduction_vs("5G-only")
    footer = "\nreduction vs 5G-only: P95 %.1f%%  P99 %.1f%%  P99.9 %.1f%%" % (
        red["p95"], red["p99"], red["p99.9"],
    )
    write_result("fig10a_delay_cdf", table + footer)

    cf = res.percentiles["cellfusion"]
    for arm in ("5G-only", "LTE-only"):
        single = res.percentiles[arm]
        assert cf["p99"] <= single["p99"], "CellFusion P99 must beat %s" % arm
        assert cf["p99.9"] <= single["p99.9"]
    # meaningful tail reduction vs 5G (paper: 71.5% at P99)
    assert red["p99"] > 20.0
