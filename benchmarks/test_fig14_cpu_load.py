"""Fig. 14 — CPU cost of coding: MPQUIC vs XNC vs SIMD-XNC at 10/20/30 Mbps.

The paper measures CPE CPU load: at 30 Mbps plain XNC costs 43.77 % more
CPU than MPQUIC, SIMD acceleration cuts that to 23.44 % (a 26.56 %
saving).  We measure the sender-side coding work for a window of
streaming: MPQUIC only frames/copies packets, XNC additionally encodes
recovery packets — byte-at-a-time ("no SIMD") or with the vectorised
GF(2^8) kernels (the NEON stand-in).

Python's scalar loops exaggerate the *absolute* gap enormously, so the
assertions check the ordering and the SIMD saving, not the paper's
percentages: cost(MPQUIC) < cost(SIMD-XNC) < cost(XNC), and cost grows
with bitrate.
"""

import random
import time

import pytest

from conftest import write_result
from repro.analysis.report import format_table
from repro.core.rlnc import RlncEncoder, frame_payload
from repro.core.recovery import coded_packet_count

#: Seconds of stream to process per measurement (scaled down so the
#: deliberately slow scalar arm stays benchmarkable).
STREAM_WINDOW = 0.25
PACKET_SIZE = 1200
LOSS_RATE = 0.03
RANGE_SIZE = 10


def _workload(bitrate_mbps, seed=1):
    n_packets = int(bitrate_mbps * 1e6 / 8 / PACKET_SIZE * STREAM_WINDOW)
    rng = random.Random(seed)
    payloads = [bytes(rng.getrandbits(8) for _ in range(64)) * (PACKET_SIZE // 64) for _ in range(8)]
    packets = [payloads[i % 8] for i in range(n_packets)]
    # bursty loss: whole ranges of RANGE_SIZE packets
    n_ranges = max(1, int(n_packets * LOSS_RATE / RANGE_SIZE))
    range_starts = sorted(rng.sample(range(0, max(1, n_packets - RANGE_SIZE)), n_ranges))
    return packets, range_starts


def _mpquic_cost(packets, _range_starts):
    """Baseline transport: frame every packet (copy), no coding."""
    total = 0
    for i, p in enumerate(packets):
        total += len(frame_payload(p))
    return total


def _xnc_cost(packets, range_starts, simd):
    """XNC sender: frame + register everything, encode recovery shots."""
    enc = RlncEncoder(simd=simd)
    total = 0
    for i, p in enumerate(packets):
        total += len(frame_payload(p))
        enc.register(i, p)
    for start in range_starts:
        n_coded = coded_packet_count(RANGE_SIZE)
        for j in range(n_coded):
            total += len(enc.encode(start, RANGE_SIZE, 1 + start * 31 + j))
    return total


ARMS = (
    ("MPQUIC", lambda pkts, rs: _mpquic_cost(pkts, rs)),
    ("SIMD-XNC", lambda pkts, rs: _xnc_cost(pkts, rs, simd=True)),
    ("XNC", lambda pkts, rs: _xnc_cost(pkts, rs, simd=False)),
)

_results = {}


@pytest.mark.parametrize("bitrate", [10, 20, 30])
@pytest.mark.parametrize("arm", [a for a, _f in ARMS])
def test_fig14_cpu_cost(benchmark, arm, bitrate):
    func = dict(ARMS)[arm]
    packets, range_starts = _workload(bitrate)
    benchmark.pedantic(func, args=(packets, range_starts), rounds=2, iterations=1)
    # normalised "CPU load": processing time per second of stream
    load = benchmark.stats.stats.mean / STREAM_WINDOW * 100
    _results[(arm, bitrate)] = load
    benchmark.extra_info["load_pct"] = load


def test_fig14_report_and_shape(benchmark):
    """Runs after the measurements; prints the table and checks ordering."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
    if len(_results) < 9:
        pytest.skip("measurement cells missing (run the whole module)")
    rows = []
    for bitrate in (10, 20, 30):
        rows.append(
            [str(bitrate)]
            + ["%.2f" % _results[(arm, bitrate)] for arm, _f in ARMS]
        )
    table = format_table(
        ["Mbps", "MPQUIC load %", "SIMD-XNC load %", "XNC load %"],
        rows,
        title="Fig. 14 — coding CPU cost (time per stream-second, %)",
    )
    write_result("fig14_cpu_load", table)

    for bitrate in (10, 20, 30):
        mpq = _results[("MPQUIC", bitrate)]
        simd = _results[("SIMD-XNC", bitrate)]
        scalar = _results[("XNC", bitrate)]
        assert mpq < simd < scalar, "ordering MPQUIC < SIMD-XNC < XNC at %d Mbps" % bitrate
    # load grows with bitrate for every arm
    for arm, _f in ARMS:
        assert _results[(arm, 10)] < _results[(arm, 30)]
