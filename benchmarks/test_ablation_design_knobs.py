"""Design-knob ablations (DESIGN.md §5) — beyond the paper's Fig. 13.

Sweeps each XNC design choice across a fixed trace set and prints the
stall / residual-loss / redundancy / tail-delay trade-off, validating the
paper's chosen operating points:

* k = 3 extra coded packets: k = 0 leaves ranges undecodable noticeably
  more often, while larger k only adds redundancy;
* spreading the one-shot across paths beats dumping it on one path;
* t_expire = 700 ms balances recovery opportunity against stale traffic;
* the QoE threshold trades spurious recoveries for tail latency.
"""

import pytest

from conftest import bench_duration, bench_seeds, write_result
from repro.analysis.report import format_table
from repro.experiments.ablations import (
    HARSH_SEEDS,
    ROW_HEADERS,
    sweep_app_threshold,
    sweep_expiry,
    sweep_extra_packets,
    sweep_range_size,
    sweep_rho,
    sweep_spread_mode,
)

DURATION = bench_duration(10.0)
# harsh seeds by default: benign drives make every knob look identical
SEEDS = HARSH_SEEDS if "REPRO_BENCH_SEEDS" not in __import__("os").environ else bench_seeds(2)


def _report(name, title, points):
    table = format_table(ROW_HEADERS, [p.as_row() for p in points], title=title)
    write_result(name, table)
    return {p.label: p for p in points}


def test_ablation_extra_packets(once):
    points = once(sweep_extra_packets, duration=DURATION, seeds=SEEDS)
    by = _report("ablation_extra_packets", "Ablation — k extra coded packets (n' = n + k)", points)
    # more protection never hurts residual loss; redundancy grows with k
    assert by["k=3"].residual_loss <= by["k=0"].residual_loss + 1e-6
    assert by["k=6"].redundancy >= by["k=0"].redundancy - 1e-6


def test_ablation_rho(once):
    points = once(sweep_rho, duration=DURATION, seeds=SEEDS)
    by = _report("ablation_rho", "Ablation — per-path spread bound rho", points)
    assert by["rho=1.19"].redundancy >= by["rho=1.01"].redundancy - 0.02


def test_ablation_spread_mode(once):
    points = once(sweep_spread_mode, duration=DURATION, seeds=SEEDS)
    by = _report("ablation_spread_mode", "Ablation — one-shot spread strategy", points)
    prop = by["proportional_capped"]
    # flooding burns far more redundancy for little QoE gain
    assert by["flood"].redundancy > prop.redundancy
    # single-path recovery forfeits path diversity: never better on loss
    assert prop.residual_loss <= by["single_path"].residual_loss + 0.01


def test_ablation_expiry(once):
    points = once(sweep_expiry, duration=DURATION, seeds=SEEDS)
    by = _report("ablation_expiry", "Ablation — packet expiry t_expire", points)
    # a very short expiry abandons recoverable packets
    assert by["t_expire=0.7s"].residual_loss <= by["t_expire=0.2s"].residual_loss + 1e-6


def test_ablation_range_size(once):
    points = once(sweep_range_size, duration=DURATION, seeds=SEEDS)
    _report("ablation_range_size", "Ablation — encode-range cap r", points)
    # all operating points must remain functional
    for p in points:
        assert p.residual_loss < 0.2


def test_ablation_app_threshold(once):
    points = once(sweep_app_threshold, duration=DURATION, seeds=SEEDS)
    by = _report("ablation_app_threshold", "Ablation — QoE loss-detection threshold", points)
    # an aggressive threshold fires spuriously: more redundancy than PTO-only
    assert by["thresh=60ms"].redundancy >= by["thresh=PTO-only"].redundancy - 0.01
