"""Bitrate scalability — §2.2's remark, made a benchmark.

"Neither the 5G link nor the LTE link was able to support real-time
streaming above 10 Mbps consistently" — while CellFusion carries 30 Mbps
(§8.1.4) and the aggregate of four links has headroom beyond it.  This
benchmark sweeps the video bitrate and reports stall for CellFusion vs a
single 5G link, exposing the crossover where the single carrier saturates
and the fused tunnel keeps going.
"""

import numpy as np

from conftest import bench_duration, bench_seeds, write_result
from repro.analysis.report import format_table
from repro.emulation.cellular import generate_fleet_traces
from repro.experiments.runner import run_single_link_stream, run_stream
from repro.video.source import VideoConfig

BITRATES = (10.0, 20.0, 30.0, 40.0)


def test_bitrate_scalability(once):
    duration = bench_duration(10.0)
    seeds = bench_seeds(3)

    def experiment():
        out = {}
        for seed in seeds:
            traces = generate_fleet_traces(duration=duration, seed=seed)
            for bitrate in BITRATES:
                video = VideoConfig(bitrate_mbps=bitrate, seed=seed + 1)
                fused = run_stream(
                    "cellfusion", uplink_traces=traces, video=video, duration=duration, seed=seed
                )
                single = run_single_link_stream(traces[0], video=video, duration=duration, seed=seed)
                out.setdefault(bitrate, []).append(
                    (fused.qoe.stall_ratio, single.qoe.stall_ratio,
                     fused.delivery_ratio, single.delivery_ratio)
                )
        return out

    out = once(experiment)

    rows = []
    summary = {}
    for bitrate in BITRATES:
        arr = np.array(out[bitrate])
        fused_stall, single_stall = arr[:, 0].mean(), arr[:, 1].mean()
        fused_deliv, single_deliv = arr[:, 2].mean(), arr[:, 3].mean()
        summary[bitrate] = (fused_stall, single_stall, fused_deliv, single_deliv)
        rows.append(
            [
                "%.0f" % bitrate,
                "%.2f" % (fused_stall * 100),
                "%.2f" % (single_stall * 100),
                "%.1f" % (fused_deliv * 100),
                "%.1f" % (single_deliv * 100),
            ]
        )
    table = format_table(
        ["Mbps", "CellFusion stall %", "5G-only stall %", "CF delivery %", "5G delivery %"],
        rows,
        title="Bitrate scalability — fused tunnel vs one carrier (§2.2 remark)",
    )
    write_result("bitrate_scalability", table)

    # CellFusion holds the 30 Mbps ToD operating point
    assert summary[30.0][0] < 0.05, "CellFusion must sustain 30 Mbps with <5% stall"
    # at every bitrate the fused tunnel stalls no more than the single link
    for bitrate in BITRATES:
        assert summary[bitrate][0] <= summary[bitrate][1] + 0.01
    # the single carrier degrades as bitrate grows
    assert summary[40.0][1] >= summary[10.0][1] - 0.01
