"""Theorem 4.1 — decode-success probability with k extra coded packets.

The theorem bounds failure at 1/(255^k * 254); the deployed k = 3 makes
failure astronomically unlikely.  This benchmark Monte-Carlos the rank of
(n + k) x n coefficient matrices drawn exactly as XNC draws them (leading
coefficient folded to 1, rest uniform on GF(256)\\{0}) and checks the
empirical success rate against the bound.
"""

import random

import numpy as np

from conftest import write_result
from repro.analysis.report import format_table
from repro.core.coefficients import coefficient_vector
from repro.core.gf256 import gf_matrix_rank
from repro.core.recovery import decode_probability_bound

TRIALS = 400
N = 8  # lost packets per range (r = 10 bounds it in deployment)


def _empirical_success(k, trials, seed=0):
    rng = random.Random(seed)
    ok = 0
    for _ in range(trials):
        rows = [coefficient_vector(rng.randrange(1, 2 ** 32), N) for _ in range(N + k)]
        if gf_matrix_rank(np.array(rows, dtype=np.uint8)) == N:
            ok += 1
    return ok / trials


def test_theorem41_decode_probability(benchmark):
    rates = benchmark.pedantic(
        lambda: {k: _empirical_success(k, TRIALS, seed=k) for k in (0, 1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [str(k), "%.6f" % decode_probability_bound(k), "%.4f" % rates[k]]
        for k in (0, 1, 2, 3)
    ]
    table = format_table(
        ["k (extra packets)", "Theorem 4.1 bound", "empirical success"],
        rows,
        title="Theorem 4.1 — decode probability vs extra packets",
    )
    write_result("theorem41_decode_probability", table)

    for k in (0, 1, 2, 3):
        bound = decode_probability_bound(k)
        # allow Monte-Carlo noise of a few trials below the bound
        assert rates[k] >= bound - 3.0 / TRIALS
    # k = 3 (the deployed value) should be perfect at this trial count
    assert rates[3] == 1.0
