"""Fig. 10(b) — daily traffic-redundancy trace of a deployed vehicle.

Paper: daily redundancy varied between 1 % and 9 % over ~70 days; the
variation tracks where the vehicle drove.  Expected shape: every "day"
stays below ~10 %, with visible day-to-day variation and a mean of a few
percent — because coding is applied only to loss recovery.
"""

import numpy as np

from conftest import bench_duration, write_result
from repro.analysis.report import format_table
from repro.experiments.figures import fig10b_redundancy


def test_fig10b_daily_redundancy(once):
    days = int(max(6, bench_duration(10.0) // 2))
    series = once(fig10b_redundancy, days=days, duration=bench_duration(10.0))

    rows = [[str(day), "%.2f" % (r * 100)] for day, r in series]
    ratios = np.array([r for _d, r in series])
    table = format_table(
        ["day", "redundancy %"],
        rows,
        title="Fig. 10(b) — daily redundancy cost",
    )
    footer = "\nmean %.2f%%  min %.2f%%  max %.2f%%" % (
        ratios.mean() * 100, ratios.min() * 100, ratios.max() * 100,
    )
    write_result("fig10b_redundancy", table + footer)

    assert ratios.mean() < 0.10, "average daily redundancy must stay below 10%"
    assert ratios.max() < 0.20, "no day should blow past the paper's envelope"
    assert ratios.std() > 0.0, "conditions differ day to day"
