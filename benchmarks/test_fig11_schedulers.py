"""Fig. 11 — XNC vs multipath scheduling optimisations (minRTT/RE/XLINK/ECF).

Paper: XNC reduced average stall by 86.56 % / 82.22 % / 92.75 % vs
minRTT / XLINK / ECF; RE's stall is moderate on average but its
redundancy reaches ~300 % and its tail stalls exceed XNC's.  Expected
shape: XNC has the lowest stall and highest FPS/SSIM; RE's redundancy is
an order of magnitude above XNC's; XNC redundancy < 10 %.
"""

from conftest import bench_duration, bench_seeds, write_result
from repro.analysis.report import format_table
from repro.experiments.figures import fig11_schedulers


def test_fig11_scheduler_comparison(once):
    res = once(fig11_schedulers, duration=bench_duration(12.0), seeds=bench_seeds(3))

    rows = []
    for t in res.transports:
        label = "XNC" if t == "cellfusion" else t
        rows.append(
            [
                label,
                "%.2f" % res.fps[t].mean,
                "%.2f ± %.2f" % (res.stall[t].mean * 100, res.stall[t].std * 100),
                "%.2f (max %.2f)" % (res.stall[t].mean * 100, res.stall[t].max * 100),
                "%.3f" % res.ssim[t].mean,
                "%.1f" % (res.redundancy[t].mean * 100),
            ]
        )
    table = format_table(
        ["scheduler", "avg FPS", "stall %", "stall tail %", "SSIM", "retrans %"],
        rows,
        title="Fig. 11 — XNC vs multipath scheduling optimisations",
    )
    footer = "\nstall reduction: vs minRTT %.1f%%  vs XLINK %.1f%%  vs ECF %.1f%%" % (
        res.stall_reduction_vs("cellfusion", "minRTT"),
        res.stall_reduction_vs("cellfusion", "XLINK"),
        res.stall_reduction_vs("cellfusion", "ECF"),
    )
    write_result("fig11_schedulers", table + footer)

    cf = "cellfusion"
    for other in ("minRTT", "XLINK", "ECF"):
        assert res.stall[cf].mean <= res.stall[other].mean + 1e-9
    # RE: huge redundancy (paper: up to 300%), worse tail stall than XNC
    assert res.redundancy["RE"].mean > 5 * max(res.redundancy[cf].mean, 0.005)
    assert res.redundancy["RE"].mean > 0.5
    assert res.stall[cf].max <= res.stall["RE"].max + 1e-9
    # <10% on deployment averages (Fig. 10b); harsh controlled traces can
    # push individual runs somewhat higher
    assert res.redundancy[cf].mean < 0.15
