"""Fig. 9 — end-to-end road-test QoE: MPQUIC / MPTCP / BONDING / CellFusion.

Paper numbers at 30 Mbps over 5000 km: CellFusion averaged 29.11 fps,
0.99 % stall, 0.93 SSIM, with stall reductions of 66.11 % (vs MPQUIC),
69.35 % (vs MPTCP) and 80.62 % (vs BONDING).  Expected shape here:
CellFusion wins every metric with the smallest variance; BONDING shows
the largest variance (no aggregation).
"""

from conftest import bench_duration, bench_seeds, write_result
from repro.analysis.report import format_table
from repro.experiments.figures import fig9_road_test


def test_fig9_road_test_qoe(once):
    res = once(fig9_road_test, duration=bench_duration(12.0), seeds=bench_seeds(3))

    rows = []
    for t in res.transports:
        rows.append(
            [
                t,
                "%.2f" % res.fps[t].mean,
                "%.2f ± %.2f" % (res.stall[t].mean * 100, res.stall[t].std * 100),
                "%.3f" % res.ssim[t].mean,
                "%.2f" % (res.redundancy[t].mean * 100),
            ]
        )
    reductions = "\nstall reduction vs MPQUIC: %.1f%%  vs MPTCP: %.1f%%  vs BONDING: %.1f%%" % (
        res.stall_reduction_vs("cellfusion", "mpquic"),
        res.stall_reduction_vs("cellfusion", "mptcp"),
        res.stall_reduction_vs("cellfusion", "bonding"),
    )
    table = format_table(
        ["transport", "avg FPS", "stall %", "SSIM", "redundancy %"],
        rows,
        title="Fig. 9 — road-test QoE at 30 Mbps",
    )
    write_result("fig09_road_test_qoe", table + reductions)

    cf = "cellfusion"
    for other in ("mpquic", "mptcp", "bonding"):
        assert res.stall[cf].mean <= res.stall[other].mean + 1e-9, (
            "CellFusion must have the lowest stall (vs %s)" % other
        )
        # reliable tunnels deliver every frame eventually (late frames show
        # up as stall, not FPS), so FPS parity within ~1.5 fps is the claim
        assert res.fps[cf].mean >= res.fps[other].mean - 1.5
        assert res.ssim[cf].mean >= res.ssim[other].mean - 0.02
    # smallest variance claim, most visible against bonding
    assert res.stall[cf].std <= res.stall["bonding"].std + 1e-9
    # XNC redundancy stays below 10% on average
    assert res.redundancy[cf].mean < 0.10
