"""Proactive FEC vs reactive coded recovery — quantifying §4.1's argument.

The paper rejects feed-forward protection for vehicular links: bursty
loss is unpredictable, so a proactive scheme must run a high redundancy
rate *all the time* and a burst longer than a block still defeats it.
XNC instead repairs reactively and pays redundancy only on loss.

This benchmark sweeps the proactive scheme's redundancy rate on
outage-bearing traces and places XNC on the same axes.  Expected shape:
to approach XNC's residual loss, proactive FEC needs several times XNC's
redundancy — and even at high rates its burst-window losses persist.
"""

import numpy as np

from conftest import bench_duration, write_result
from repro.analysis.report import format_table
from repro.baselines.quic_fec import FecConfig
from repro.emulation.cellular import generate_fleet_traces
from repro.experiments.runner import make_transport, run_stream
from repro.video.source import VideoConfig

SEEDS = (0, 7, 8)  # traces with real outages


def _run_fec(rate, traces, duration, seed):
    """run_stream with a custom FEC redundancy rate."""
    from repro.baselines.quic_fec import FecTunnelClient
    from repro.core.endpoint import XncTunnelServer
    from repro.emulation.emulator import MultipathEmulator
    from repro.emulation.events import EventLoop
    from repro.experiments.runner import build_paths
    from repro.quic.cc.bbr import BbrController
    from repro.video.qoe import analyze_qoe
    from repro.video.receiver import VideoReceiver
    from repro.video.source import VideoSource

    loop = EventLoop()
    emulator = MultipathEmulator(loop, traces, seed=seed)
    receiver = VideoReceiver()
    server = XncTunnelServer(loop, emulator, receiver.on_app_packet)
    client = FecTunnelClient(
        loop, emulator, build_paths(emulator, BbrController), FecConfig(redundancy_rate=rate)
    )
    cfg = VideoConfig(bitrate_mbps=20.0, seed=seed + 1)
    source = VideoSource(loop, lambda p, f: client.send_app_packet(p, f), cfg)
    source.start(first_delay=0.01)
    loop.run_until(duration)
    source.stop()
    loop.run_until(duration + 1.5)
    client.close()
    server.close()
    loss = 1.0 - receiver.packets_received / max(source.packets_emitted, 1)
    return loss, client.stats.redundancy_ratio


def test_proactive_vs_reactive(once):
    duration = bench_duration(10.0)

    def experiment():
        rows = {}
        for seed in SEEDS:
            traces = generate_fleet_traces(duration=duration, seed=seed)
            for rate in (0.1, 0.3, 0.6):
                loss, red = _run_fec(rate, traces, duration, seed)
                rows.setdefault("FEC %.0f%%" % (rate * 100), []).append((loss, red))
            xnc = run_stream(
                "cellfusion", uplink_traces=traces, duration=duration, seed=seed,
                video=VideoConfig(bitrate_mbps=20.0, seed=seed + 1),
            )
            rows.setdefault("XNC (reactive)", []).append(
                (1.0 - xnc.delivery_ratio, xnc.redundancy_ratio)
            )
        return rows

    rows = once(experiment)

    table_rows = []
    summary = {}
    for arm, samples in rows.items():
        losses = np.array([l for l, _r in samples])
        reds = np.array([r for _l, r in samples])
        summary[arm] = (float(losses.mean()), float(reds.mean()))
        table_rows.append([arm, "%.3f" % (losses.mean() * 100), "%.1f" % (reds.mean() * 100)])
    table = format_table(
        ["arm", "residual loss %", "redundancy %"],
        table_rows,
        title="Proactive FEC vs reactive XNC (§4.1's design argument)",
    )
    write_result("proactive_vs_reactive", table)

    xnc_loss, xnc_red = summary["XNC (reactive)"]
    # every FEC rate pays more redundancy than XNC
    for arm, (loss, red) in summary.items():
        if arm.startswith("FEC"):
            assert red > xnc_red, "%s should cost more redundancy than XNC" % arm
    # and the cheap FEC rate cannot match XNC's residual loss
    low_loss, _low_red = summary["FEC 10%"]
    assert xnc_loss <= low_loss + 1e-6
