"""Fig. 13 — ablations: Q-RLNC (13a) and QoE-aware loss detection (13b).

Paper: Q-RLNC cut the tail residual loss by 15.55 % (P95) / 41.70 %
(P99) versus retransmitting originals; QoE-aware loss detection cut
packet delay by 8.48 % (P95) / 28.44 % (P99) versus PTO-only.  Expected
shapes: coded recovery yields lower residual loss than plain
retransmission on the same traces; QoE-aware detection yields lower
tail delay than PTO-only.
"""

import numpy as np

from conftest import bench_duration, bench_seeds, write_result
from repro.analysis.report import format_table
from repro.experiments.figures import fig13a_qrlnc_ablation, fig13b_loss_detection_ablation


def test_fig13a_qrlnc_ablation(once):
    res = once(fig13a_qrlnc_ablation, duration=bench_duration(12.0), seeds=bench_seeds(4))

    rows = [
        [arm, "%.3f" % (s["mean"] * 100), "%.3f" % (s["p95"] * 100), "%.3f" % (s["p99"] * 100)]
        for arm, s in res.summary.items()
    ]
    table = format_table(
        ["arm", "mean frame loss %", "P95 %", "P99 %"],
        rows,
        title="Fig. 13(a) — residual per-frame loss with vs without Q-RLNC",
    )
    write_result("fig13a_qrlnc_ablation", table)

    with_rlnc = res.summary["Q-RLNC"]
    without = res.summary["w/o Q-RLNC"]
    # the paper's claim is about the tail: coded recovery survives loss of
    # recovery packets, plain retransmission does not (15.6% / 41.7%
    # reductions at P95/P99)
    assert with_rlnc["p99"] <= without["p99"] + 1e-6
    assert with_rlnc["mean"] <= without["mean"] + 0.01


def test_fig13b_loss_detection_ablation(once):
    res = once(fig13b_loss_detection_ablation, duration=bench_duration(12.0), seeds=bench_seeds(3))

    rows = []
    for arm in ("qoe-aware", "pto-only"):
        rows.append([arm] + ["%.1f" % (res[arm][k] * 1000) for k in ("p25", "p50", "p75", "p90", "p99")])
    rows.append(["reduction %"] + ["%.1f" % res["reduction_pct"][k] for k in ("p25", "p50", "p75", "p90", "p99")])
    table = format_table(
        ["arm", "P25 ms", "P50 ms", "P75 ms", "P90 ms", "P99 ms"],
        rows,
        title="Fig. 13(b) — packet delay, QoE-aware vs PTO-only loss detection",
    )
    write_result("fig13b_loss_detection", table)

    # the tail benefits the most from early detection (paper: 28% at P99)
    assert res["qoe-aware"]["p99"] <= res["pto-only"]["p99"] + 1e-6
