"""Fig. 3 — single cellular link characterisation while driving (§2.2).

Regenerates all four panels for LTE/5G at 10/30 Mbps: RF fluctuation
(3a), loss rate (3b), one-way delay (3c), and the QoE triple (3d).

Expected shape (paper): RSRP/SINR swing >30 dB; loss bursts to 100 %;
delay spikes to seconds; neither link sustains 30 Mbps — FPS drops, stall
ratio climbs into the tens of percent, SSIM falls well below 1, and the
30 Mbps configurations are worse than 10 Mbps.
"""

import numpy as np

from conftest import bench_duration, write_result
from repro.analysis.report import format_table
from repro.experiments.figures import fig3_single_link


def test_fig3_single_link_characterisation(once):
    duration = bench_duration(20.0)
    # seed 3: a drive where both links degrade visibly but not totally —
    # the representative Fig. 3 envelope (other seeds range from clean to
    # outage-dominated)
    out = once(fig3_single_link, duration=duration, seed=3)

    rows = []
    for label in ("LTE-10", "LTE-30", "5G-10", "5G-30"):
        cell = out[label]
        rf_swing = float(cell.rsrp_dbm.max() - cell.rsrp_dbm.min())
        rows.append(
            [
                label,
                "%.1f" % rf_swing,
                "%.1f" % (cell.loss_rate * 100),
                "%.0f" % (cell.delay_p99 * 1000),
                "%.0f" % (cell.delay_max * 1000),
                "%.1f" % cell.qoe.avg_fps,
                "%.1f" % (cell.qoe.stall_ratio * 100),
                "%.2f" % cell.qoe.ssim,
            ]
        )
    table = format_table(
        ["config", "RSRP swing dB", "loss %", "delay p99 ms", "delay max ms", "FPS", "stall %", "SSIM"],
        rows,
        title="Fig. 3 — single-link streaming from a moving vehicle",
    )
    write_result("fig03_single_link", table)

    # shape assertions
    swings = [out[l].rsrp_dbm.max() - out[l].rsrp_dbm.min() for l in out]
    assert max(swings) > 25.0, "RF should fluctuate tens of dB"
    stalls_30 = out["LTE-30"].qoe.stall_ratio + out["5G-30"].qoe.stall_ratio
    stalls_10 = out["LTE-10"].qoe.stall_ratio + out["5G-10"].qoe.stall_ratio
    assert stalls_30 >= stalls_10 - 0.02, "30 Mbps should stress links at least as much"
