"""Telemetry-layer overhead guardrail.

Two promises from docs/telemetry.md are enforced here:

* the *disabled* layer (the ``NULL_TELEMETRY`` fast path every hot call
  site guards on) costs under 5 % of a streaming run — checked with the
  same bound ``tools/check_telemetry_overhead.py`` computes;
* the *enabled* layer captures all three record kinds (lifecycle events,
  metrics, per-path timeline samples) for a standard run, snapshotted to
  ``benchmarks/results/`` as JSONL.
"""

import sys
from pathlib import Path

from conftest import bench_duration, write_result, write_telemetry_snapshot
from repro.experiments.runner import run_stream

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

from check_telemetry_overhead import (  # noqa: E402
    best_wall_time,
    count_activations,
    measure_guard_ns,
)


def test_disabled_overhead_bound(once):
    duration = bench_duration(4.0)

    def run():
        guard_ns = measure_guard_ns()
        activations = count_activations(duration, seed=1)
        off = best_wall_time(False, duration, seed=1, runs=2)
        on = best_wall_time(True, duration, seed=1, runs=2)
        bound_pct = activations * guard_ns * 1e-9 / off * 100.0
        return guard_ns, activations, off, on, bound_pct

    guard_ns, activations, off, on, bound_pct = once(run)
    write_result(
        "telemetry_overhead",
        "telemetry overhead (cellfusion, %.0fs run):\n"
        "  disabled guard      %6.0f ns/site x %d sites -> %.2f%% bound\n"
        "  wall time           off %.3fs  on %.3fs (+%.1f%%)"
        % (duration, guard_ns, activations, bound_pct,
           off, on, (on - off) / off * 100.0),
    )
    assert bound_pct < 5.0, (
        "disabled telemetry overhead bound %.2f%% exceeds 5%%" % bound_pct
    )


def test_telemetry_snapshot_complete(once):
    result = once(
        run_stream, "cellfusion", duration=bench_duration(4.0), seed=1,
        telemetry=True,
    )
    tel = result.telemetry
    path = write_telemetry_snapshot("fig_run_cellfusion", tel)
    kinds = {r["type"] for r in tel.records()}
    assert {"meta", "event", "metric", "path_sample", "stats"} <= kinds, kinds
    assert tel.trace.emitted > 0 and Path(path).exists()
