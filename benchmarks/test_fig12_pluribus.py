"""Fig. 12 — XNC vs Pluribus (network-coding-based multipath).

Paper: XNC cut average stall by >81.67 % and used 89.49 % less redundant
traffic than Pluribus (whose proactive block code pays redundancy all
the time).  Expected shape: XNC wins all QoE metrics and its redundancy
is several-fold lower.
"""

from conftest import bench_duration, bench_seeds, write_result
from repro.analysis.report import format_table
from repro.analysis.stats import reduction_pct
from repro.experiments.figures import fig12_pluribus


def test_fig12_vs_pluribus(once):
    res = once(fig12_pluribus, duration=bench_duration(12.0), seeds=bench_seeds(3))

    rows = []
    for t in res.transports:
        label = "XNC" if t == "cellfusion" else "Pluribus"
        rows.append(
            [
                label,
                "%.2f" % res.fps[t].mean,
                "%.2f" % (res.stall[t].mean * 100),
                "%.3f" % res.ssim[t].mean,
                "%.1f" % (res.redundancy[t].mean * 100),
            ]
        )
    table = format_table(
        ["transport", "avg FPS", "stall %", "SSIM", "retrans %"],
        rows,
        title="Fig. 12 — XNC vs Pluribus",
    )
    footer = "\nredundancy reduction vs Pluribus: %.1f%%   stall reduction: %.1f%%" % (
        reduction_pct(res.redundancy["pluribus"].mean, res.redundancy["cellfusion"].mean),
        res.stall_reduction_vs("cellfusion", "pluribus"),
    )
    write_result("fig12_pluribus", table + footer)

    cf, pl = "cellfusion", "pluribus"
    assert res.stall[cf].mean <= res.stall[pl].mean + 1e-9
    assert res.fps[cf].mean >= res.fps[pl].mean - 0.5
    assert res.ssim[cf].mean >= res.ssim[pl].mean - 0.01
    # the headline: far less redundant traffic (paper: ~90% less)
    assert res.redundancy[cf].mean < 0.5 * res.redundancy[pl].mean
