"""Shared benchmark configuration.

Every figure benchmark reads its scale from environment variables so the
same targets serve both a quick CI pass and a paper-scale reproduction:

* ``REPRO_BENCH_DURATION`` — seconds of simulated streaming per run
  (default 10; the paper's controlled runs replay ~180 s traces).
* ``REPRO_BENCH_SEEDS`` — number of trace seeds, i.e. distinct road
  segments (default 3; the paper uses 100 traces).

Each benchmark prints the rows the paper reports and also writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_duration(default: float = 10.0) -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", default))


def bench_seeds(default: int = 3):
    n = int(os.environ.get("REPRO_BENCH_SEEDS", default))
    return tuple(range(n))


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / ("%s.txt" % name)).write_text(text + "\n")
    print("\n" + text)


def write_telemetry_snapshot(name: str, telemetry) -> str:
    """Export a run's telemetry as JSONL next to the benchmark results.

    Returns the path written.  Benchmarks that stream with
    ``run_stream(..., telemetry=True)`` can snapshot the full
    packet-lifecycle record for later analysis (see docs/telemetry.md).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / ("%s.telemetry.jsonl" % name)
    telemetry.export_jsonl(str(path))
    return str(path)


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under pytest-benchmark."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
