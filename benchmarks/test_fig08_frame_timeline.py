"""Fig. 8 — received-frame timeline sample: MPQUIC vs CellFusion.

The paper's film strip shows MPQUIC suffering blocky frames and lost
frames (stall) where CellFusion stays clear and smooth.  We regenerate
the aligned per-frame status streams and assert CellFusion has no more
degraded frames than MPQUIC on the same traces.
"""

from conftest import bench_duration, write_result
from repro.analysis.report import format_table
from repro.experiments.figures import fig8_frame_timeline


def _strip(statuses, width=66):
    glyph = {"normal": ".", "corrupt": "b", "missing": "X"}
    s = "".join(glyph[x] for x in statuses)
    return s[:width] + ("…" if len(s) > width else "")


def _find_degraded_sample(duration):
    """First seed whose traces actually degrade MPQUIC (a telling sample)."""
    fallback = None
    for seed in range(8):
        out = fig8_frame_timeline(duration=duration, seed=seed)
        if fallback is None:
            fallback = (seed, out)
        mp = out["mpquic"]
        if mp.lost_frames + mp.blocky_frames > 0:
            return seed, out
    return fallback


def test_fig8_frame_timeline(once):
    duration = bench_duration(15.0)
    seed, out = once(_find_degraded_sample, duration)

    mp, cf = out["mpquic"], out["cellfusion"]
    rows = [
        ["MPQUIC", len(mp.statuses), mp.blocky_frames, mp.lost_frames, "%.2f" % (mp.stall_ratio * 100)],
        ["CellFusion", len(cf.statuses), cf.blocky_frames, cf.lost_frames, "%.2f" % (cf.stall_ratio * 100)],
    ]
    table = format_table(
        ["transport", "frames", "blocky", "lost", "stall %"],
        rows,
        title="Fig. 8 — frame timeline sample (seed %d)" % seed,
    )
    strip = "\nMPQUIC     %s\nCellFusion %s" % (_strip(mp.statuses), _strip(cf.statuses))
    write_result("fig08_frame_timeline", table + strip)

    # Fig. 8's contrast is smooth-vs-frozen: CellFusion keeps the stream
    # moving where MPQUIC freezes.  A fully reliable tunnel eventually
    # delivers almost every frame (few "lost"), it just delivers them
    # seconds late — that damage shows up as stall, not as lost frames, so
    # the assertions compare stall and bound CellFusion's total frame
    # degradation rather than comparing lost-frame counts head-to-head.
    assert cf.stall_ratio <= mp.stall_ratio + 1e-9
    if mp.stall_ratio > 0.02:
        assert cf.stall_ratio < mp.stall_ratio * 0.5, "CellFusion must be far smoother"
    degraded = cf.lost_frames + cf.blocky_frames
    assert degraded <= max(0.15 * len(cf.statuses), mp.lost_frames + mp.blocky_frames)
