#!/usr/bin/env python3
"""Quickstart: stream 30 Mbps video from a (simulated) moving vehicle.

Runs the same session through CellFusion/XNC and through plain multipath
QUIC on identical cellular traces, then prints the QoE triple the paper
reports (FPS, stall ratio, SSIM) plus the redundancy cost.

Usage::

    python examples/quickstart.py [duration_seconds] [seed]
"""

import sys

from repro import run_stream
from repro.analysis.report import format_qoe_rows
from repro.emulation.cellular import generate_fleet_traces


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    print("Synthesising a %d s drive (2x5G + 2xLTE, seed %d)..." % (duration, seed))
    traces = generate_fleet_traces(duration=duration, seed=seed)
    for t in traces:
        print("  %-14s mean capacity %5.1f Mbps" % (t.name, t.mean_capacity_mbps))

    results = {}
    for transport in ("cellfusion", "mpquic"):
        print("Streaming 30 Mbps / 30 fps over %s..." % transport)
        results[transport] = run_stream(
            transport, uplink_traces=traces, duration=duration, seed=seed
        )

    print()
    print(format_qoe_rows(results))
    cf = results["cellfusion"]
    print(
        "\nCellFusion delivered %d/%d packets with %.2f%% redundant traffic."
        % (cf.packets_received, cf.packets_sent, cf.redundancy_ratio * 100)
    )


if __name__ == "__main__":
    main()
