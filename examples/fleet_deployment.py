#!/usr/bin/env python3
"""Connectivity-as-a-service: the cloud-native back-end at fleet scale (§6).

Walks the full control-plane lifecycle the paper deploys on 50 CDN PoPs
for 100 vehicles:

1. the controller provisions devices and registers the PoP grid;
2. each CPE authenticates, fetches its tunnel config (including its
   unique tun address for the double-NAT scheme), probes candidate PoPs,
   and connects to the minimum-delay one;
3. two vehicles share one multi-tenant proxy — their flows are SNATed
   apart and return traffic finds the right QUIC connection;
4. a PoP dies; the controller notices missing heartbeats and fails the
   affected vehicle over.
"""

from repro.cloud.controller import Controller
from repro.cloud.pop import default_pop_grid
from repro.cloud.proxy import ProxyServer
from repro.cpe.box import CpeBox
from repro.netstack.ip import build_udp, parse_udp

FLEET_SIZE = 100


def main() -> None:
    controller = Controller()
    pops = default_pop_grid()
    for pop in pops:
        controller.register_pop(pop)
        controller.heartbeat(pop.pop_id, 0, now=0.0)
    print("Controller online with %d PoPs across %d states."
          % (len(pops), len({p.region for p in pops})))

    # -- 1+2: provision and connect the fleet ------------------------------
    fleet = []
    for i in range(FLEET_SIZE):
        cpe = CpeBox("vehicle-%03d" % i, modems=[])
        cpe.provision(controller)
        cpe.vehicle_location = ((i * 37) % 800, (i * 13) % 120)
        pop = cpe.connect(controller)
        fleet.append((cpe, pop))
    by_pop = {}
    for _cpe, pop in fleet:
        by_pop[pop.pop_id] = by_pop.get(pop.pop_id, 0) + 1
    print("Connected %d vehicles across %d PoPs (max %d sessions on one PoP)."
          % (FLEET_SIZE, len(by_pop), max(by_pop.values())))

    # -- 3: multi-tenant proxy data path -------------------------------------
    cpe_a, pop_a = fleet[0]
    cpe_b = next(c for c, p in fleet[1:] if p.pop_id == pop_a.pop_id) if any(
        p.pop_id == pop_a.pop_id for _c, p in fleet[1:]
    ) else fleet[1][0]
    proxy = ProxyServer(pop_a, "203.0.113.10")
    returns = []
    proxy.send_to_vehicle = lambda cid, pkt: returns.append((cid, pkt))

    for cid, cpe in ((1, cpe_a), (2, cpe_b)):
        cpe.set_tunnel_sink(lambda b, cid=cid: proxy.process_uplink(cid, b))
        cpe.send_lan_packet(build_udp("192.168.1.50", 5004, "20.0.0.9", 8554, b"stream"))
    print("Proxy %s now serves %d tenants; %d uplink packets SNATed."
          % (pop_a.pop_id, proxy.tenant_count, proxy.stats.uplink_packets))

    # return traffic routes to the right vehicle
    # (replay what the cloud app would send back to each public port)
    for proto_port in list(proxy.snat._reverse):
        ret = build_udp("20.0.0.9", 8554, "203.0.113.10", proto_port[1], b"ok")
        proxy.process_return(ret)
    print("Return traffic delivered to CIDs: %s" % sorted({cid for cid, _p in returns}))

    # -- 4: failover -------------------------------------------------------------
    victim_cpe, victim_pop = fleet[0]
    print("\nSimulating failure of %s (stale heartbeats)..." % victim_pop.pop_id)
    now = 30.0
    for pop in pops:
        if pop.pop_id != victim_pop.pop_id:
            controller.heartbeat(pop.pop_id, pop.active_sessions, now=now)
    new_pop = controller.failover(victim_cpe.device_id, victim_cpe.token, now=now + 1)
    print("Controller failed %s over: %s -> %s (total failovers: %d)"
          % (victim_cpe.device_id, victim_pop.pop_id, new_pop.pop_id, controller.failovers))


if __name__ == "__main__":
    main()
