#!/usr/bin/env python3
"""Beyond cellular: fusing a sparse LTE link with a LEO satellite (§10).

The paper's discussion suggests CellFusion's network-coding multipath
approach "might not be confined to cellular connectivity" — satellite
links could extend it to areas with sparse infrastructure.  This example
builds that scenario: a rural drive where the only LTE carrier has
stretched cells and long dead zones, plus a LEO satellite uplink with
position-independent capacity but ~45 ms base delay and handover gaps.

It streams the same 8 Mbps video three ways — LTE only, satellite only,
and both fused through XNC — and also demonstrates server migration
(§10's other future-work item) as the vehicle crosses into another PoP's
region.
"""

import sys

import numpy as np

from repro.analysis.report import format_table
from repro.cloud.controller import Controller
from repro.cloud.migration import MigrationManager
from repro.cloud.pop import PopNode
from repro.emulation.cellular import generate_rural_traces
from repro.experiments.runner import run_single_link_stream, run_stream
from repro.video.source import VideoConfig


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    video = VideoConfig(bitrate_mbps=8.0, seed=seed)
    traces = generate_rural_traces(duration=duration, seed=seed)
    print("Rural drive (%.0f s, seed %d): %s at %.1f Mbps mean, %s at %.1f Mbps mean"
          % (duration, seed, traces[0].name, traces[0].mean_capacity_mbps,
             traces[1].name, traces[1].mean_capacity_mbps))

    rows = []
    results = {}
    for label, runner in (
        ("LTE only", lambda: run_single_link_stream(traces[0], video=video, duration=duration, seed=seed)),
        ("LEO only", lambda: run_single_link_stream(traces[1], video=video, duration=duration, seed=seed)),
        ("fused (XNC)", lambda: run_stream("cellfusion", uplink_traces=traces, video=video,
                                           duration=duration, seed=seed)),
    ):
        r = runner()
        results[label] = r
        delays = np.array(r.packet_delays) if r.packet_delays else np.array([duration])
        rows.append([
            label,
            "%.1f%%" % (r.delivery_ratio * 100),
            "%.1f" % r.qoe.avg_fps,
            "%.2f%%" % (r.qoe.stall_ratio * 100),
            "%.0f" % (float(np.percentile(delays, 99)) * 1000),
        ])
    print()
    print(format_table(["uplink", "delivery", "FPS", "stall", "delay P99 ms"], rows,
                       title="8 Mbps video from a rural drive"))

    # --- server migration as the vehicle crosses regions --------------------
    controller = Controller()
    controller.register_pop(PopNode("rural-west", "W", (0.0, 0.0)))
    controller.register_pop(PopNode("rural-east", "E", (500.0, 0.0)))
    for pid in ("rural-west", "rural-east"):
        controller.heartbeat(pid, 0, now=0.0)
    token = controller.register_device("rural-veh")
    controller.assign("rural-veh", "rural-west")
    mgr = MigrationManager(controller, "rural-veh", token, hold=3.0)
    print("\nDriving west to east past the regional boundary...")
    for t in range(40):
        pos = (t * 12.5, 0.0)  # 500 km over the sampled horizon
        event = mgr.observe(pos, now=float(t))
        if event:
            print("  t=%.0fs: migrated %s -> %s (%.1f ms closer, %.0f ms switch gap)"
                  % (event.time, event.from_pop, event.to_pop,
                     event.improvement * 1000, event.gap * 1000))
    print("Final proxy: %s" % mgr.current_pop)


if __name__ == "__main__":
    main()
