#!/usr/bin/env python3
"""Teleoperated driving (ToD): the paper's flagship workload (§2.1).

5GAA's ToD model needs ~30 Mbps of aggregated camera uplink at <100 ms
one-way delay so a remote operator can take over when the self-driving
stack gives up.  This example streams the camera bundle over a harsh
drive and checks the ToD latency budget packet by packet, comparing:

* CellFusion (XNC over 4 fused cellular links),
* a 5G-only connection (today's premium single-carrier connectivity).

It prints the fraction of video packets inside the 100 ms budget, the
delay tail, and the QoE triple — the operator's screen only works when
all three hold up.
"""

import sys

import numpy as np

from repro import run_stream, run_single_link_stream
from repro.analysis.report import format_table
from repro.analysis.stats import tail_percentiles
from repro.emulation.cellular import generate_fleet_traces
from repro.video.source import VideoConfig

TOD_LATENCY_BUDGET = 0.100  # 5GAA: <100 ms one-way
TOD_BITRATE = 30.0          # ~4x 8 Mbps cameras


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    traces = generate_fleet_traces(duration=duration, seed=seed)
    video = VideoConfig(bitrate_mbps=TOD_BITRATE, fps=30.0, seed=seed)

    print("ToD session: %.0f Mbps camera bundle, %.0f s drive, seed %d" % (TOD_BITRATE, duration, seed))
    cellfusion = run_stream("cellfusion", uplink_traces=traces, video=video, duration=duration, seed=seed)
    single_5g = run_single_link_stream(traces[0], video=video, duration=duration, seed=seed)

    rows = []
    for label, result in (("CellFusion", cellfusion), ("5G-only", single_5g)):
        delays = np.array(result.packet_delays) if result.packet_delays else np.array([duration])
        in_budget = float((delays <= TOD_LATENCY_BUDGET).mean()) * result.delivery_ratio
        pct = tail_percentiles(delays)
        rows.append(
            [
                label,
                "%.1f%%" % (in_budget * 100),
                "%.1f" % (pct["p99"] * 1000),
                "%.2f" % result.qoe.avg_fps,
                "%.2f%%" % (result.qoe.stall_ratio * 100),
                "%.3f" % result.qoe.ssim,
            ]
        )
    print()
    print(
        format_table(
            ["link", "pkts in 100ms budget", "delay P99 ms", "FPS", "stall", "SSIM"],
            rows,
            title="Teleoperated-driving feasibility",
        )
    )

    cf_ok = cellfusion.qoe.stall_ratio < 0.05
    print(
        "\nVerdict: CellFusion %s the ToD envelope on this drive; "
        "the single 5G link %s."
        % (
            "meets" if cf_ok else "misses",
            "does not" if single_5g.qoe.stall_ratio > cellfusion.qoe.stall_ratio else "also holds",
        )
    )

    control_loop_demo(duration=min(duration, 10.0), seed=seed)


def control_loop_demo(duration: float, seed: int) -> None:
    """The other half of ToD: operator commands ride the tunnel *down*.

    Steering/throttle commands (50 Hz, tiny packets) share the same four
    cellular links with the camera uplink via the bidirectional tunnel
    (§3.2's reverse flow).
    """
    from repro.emulation.emulator import MultipathEmulator
    from repro.emulation.events import EventLoop, PeriodicTimer
    from repro.transport.reverse import BidirectionalTunnel

    loop = EventLoop()
    emulator = MultipathEmulator(loop, generate_fleet_traces(duration=duration, seed=seed), seed=seed)
    command_delays = []

    def on_command(_pid, payload, now):
        command_delays.append(now - float(payload[:15]))

    tunnel = BidirectionalTunnel(loop, emulator, on_uplink_packet=lambda *a: None,
                                 on_downlink_packet=on_command)
    video = VideoConfig(bitrate_mbps=TOD_BITRATE, fps=30.0, seed=seed)
    from repro.video.source import VideoSource
    camera = VideoSource(loop, lambda p, f: tunnel.send_up(p, f), video)
    camera.start(first_delay=0.01)
    sent = [0]

    def send_command():
        payload = ("%015.6f" % loop.now).encode() + b" steer=+0.02 throttle=0.31"
        tunnel.send_down(payload)
        sent[0] += 1

    commands = PeriodicTimer(loop, 0.02, send_command)  # 50 Hz control
    commands.start()
    loop.run_until(duration)
    camera.stop()
    commands.stop()
    loop.run_until(duration + 1.0)
    tunnel.close()

    if command_delays:
        command_delays.sort()
        p99 = command_delays[max(0, int(len(command_delays) * 0.99) - 1)]
        print("\nControl downlink (50 Hz commands sharing the links with %d Mbps video):" % TOD_BITRATE)
        print("  delivered %d/%d, P99 one-way delay %.0f ms"
              % (len(command_delays), sent[0], p99 * 1000))


if __name__ == "__main__":
    main()
