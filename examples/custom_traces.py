#!/usr/bin/env python3
"""Working with traces: synthesise, inspect, export, and replay (Appx. D).

The paper's controlled experiments replay traces collected from real
drives through an extended Mahimahi mpshell.  This example shows the
equivalent workflow here:

1. synthesise a 5G drive trace and print its RF/capacity profile as an
   ASCII strip chart;
2. export it in Mahimahi's text format (replayable by real mpshell) and
   in the extended JSON format that keeps loss and delay;
3. reload the JSON and replay a stream through the emulator to verify
   the round trip.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.emulation.cellular import generate_cellular_trace
from repro.emulation.trace import load_json, save_json, save_mahimahi
from repro.experiments.runner import run_single_link_stream
from repro.video.source import VideoConfig


def strip_chart(values, width=72, height=8, label=""):
    """Tiny ASCII chart for a 1-D series."""
    v = np.asarray(values, dtype=float)
    if v.size > width:
        bins = np.array_split(v, width)
        v = np.array([b.mean() for b in bins])
    lo, hi = float(v.min()), float(v.max())
    span = (hi - lo) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = lo + span * (level - 0.5) / height
        rows.append("".join("#" if x >= threshold else " " for x in v))
    print("%s  [%.1f .. %.1f]" % (label, lo, hi))
    for r in rows:
        print("  |" + r)
    print("  +" + "-" * len(rows[0]))


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    cell = generate_cellular_trace("5G", duration=duration, seed=seed)
    print("Synthesised 5G drive trace: %.0f s, seed %d\n" % (duration, seed))
    strip_chart(cell.sinr_db, label="SINR (dB)")
    print()
    strip_chart(cell.capacity_mbps, label="capacity (Mbps)")
    print()
    strip_chart(cell.loss_prob * 100, label="loss probability (%)")

    link = cell.to_link_trace()
    outdir = Path(tempfile.mkdtemp(prefix="cellfusion-traces-"))
    mahimahi_path = outdir / "drive-5g.up"
    json_path = outdir / "drive-5g.json"
    save_mahimahi(link, mahimahi_path)
    save_json(link, json_path)
    print("\nExported:")
    print("  %s  (Mahimahi mpshell format, %d delivery opportunities)"
          % (mahimahi_path, link.opportunities.size))
    print("  %s  (extended format with loss + delay)" % json_path)

    reloaded = load_json(json_path)
    result = run_single_link_stream(
        reloaded, video=VideoConfig(bitrate_mbps=10.0), duration=min(duration, 15.0)
    )
    print("\nReplayed a 10 Mbps stream through the reloaded trace:")
    print("  delivery %.1f%%, FPS %.1f, stall %.2f%%"
          % (result.delivery_ratio * 100, result.qoe.avg_fps, result.qoe.stall_ratio * 100))


if __name__ == "__main__":
    main()
