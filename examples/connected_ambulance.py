#!/usr/bin/env python3
"""Connected ambulance: remote diagnostics en route (§1).

A paramedic streams an HD cabin view (8 Mbps) plus a low-rate vitals
telemetry channel to a hospital while the ambulance drives through the
city.  The remote physician needs the video watchable (few stalls) and
the vitals channel near-lossless.

Both flows ride the same CellFusion tunnel: the tunnel is transparent
(§3.2), so the two UDP sessions just coexist — this example multiplexes
them through one XNC tunnel and reports per-flow outcomes.
"""

import sys

from repro.core.endpoint import XncConfig, XncTunnelClient, XncTunnelServer
from repro.emulation.cellular import generate_fleet_traces
from repro.emulation.emulator import MultipathEmulator
from repro.emulation.events import EventLoop, PeriodicTimer
from repro.experiments.runner import build_paths
from repro.quic.cc.bbr import BbrController
from repro.video.qoe import analyze_qoe
from repro.video.receiver import VideoReceiver
from repro.video.source import VideoConfig, VideoSource

VITALS_INTERVAL = 0.050  # 20 Hz patient telemetry
VITALS_SIZE = 200


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    loop = EventLoop()
    traces = generate_fleet_traces(duration=duration, seed=seed)
    emulator = MultipathEmulator(loop, traces, seed=seed)

    # demultiplex at the hospital end by payload prefix
    video_rx = VideoReceiver()
    vitals_delays = []

    def on_packet(packet_id, payload, now):
        if payload.startswith(b"VITALS"):
            sent = float(payload[6:21])
            vitals_delays.append(now - sent)
        else:
            video_rx.on_app_packet(packet_id, payload, now)

    server = XncTunnelServer(loop, emulator, on_packet)
    client = XncTunnelClient(loop, emulator, build_paths(emulator, BbrController), XncConfig())

    video_cfg = VideoConfig(bitrate_mbps=8.0, fps=30.0, seed=seed)
    camera = VideoSource(loop, lambda p, f: client.send_app_packet(p, f), video_cfg)
    camera.start(first_delay=0.01)

    vitals_sent = [0]

    def send_vitals():
        payload = b"VITALS" + ("%015.6f" % loop.now).encode()
        payload += bytes(VITALS_SIZE - len(payload))
        client.send_app_packet(payload)
        vitals_sent[0] += 1

    vitals = PeriodicTimer(loop, VITALS_INTERVAL, send_vitals)
    vitals.start()

    loop.run_until(duration)
    camera.stop()
    vitals.stop()
    loop.run_until(duration + 1.5)

    qoe = analyze_qoe(video_rx.frame_records(camera.frames_emitted), video_cfg.fps, duration)
    print("Ambulance uplink over CellFusion (%.0f s drive, seed %d)" % (duration, seed))
    print("  Cabin video (8 Mbps): %.1f fps, %.2f%% stall, SSIM %.3f"
          % (qoe.avg_fps, qoe.stall_ratio * 100, qoe.ssim))
    if vitals_delays:
        vitals_delays.sort()
        p99 = vitals_delays[int(len(vitals_delays) * 0.99) - 1]
        print("  Vitals channel: %d/%d delivered, P99 delay %.0f ms"
              % (len(vitals_delays), vitals_sent[0], p99 * 1000))
    print("  Tunnel redundancy: %.2f%%" % (client.stats.redundancy_ratio * 100))

    ok = qoe.stall_ratio < 0.05 and len(vitals_delays) >= vitals_sent[0] * 0.98
    print("\nVerdict: remote diagnostics %s on this drive." % ("feasible" if ok else "degraded"))


if __name__ == "__main__":
    main()
