"""Seeded randomness helpers — the single sanctioned RNG constructor.

Every stochastic component in the simulator (loss processes, coefficient
seeds, video source jitter, baseline repair seeds) must draw from a
generator derived from an explicit integer seed, so that a benchmark run
is a pure function of its configuration.  The repo linter
(``tools/lint`` rule ``no-raw-rng``) flags direct ``random.Random(...)``
construction inside ``src/repro/`` and points here.

``seeded_rng(seed)`` with no components is byte-for-byte equivalent to
``random.Random(seed)`` — existing golden test expectations keep their
exact streams.  Passing components derives an independent sub-stream
(e.g. ``seeded_rng(cfg.seed, "uplink", path_id)``) so two consumers of
the same configured seed do not accidentally share one sequence.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["seeded_rng"]


def derive_seed(seed: int, *components) -> int:
    """Mix ``components`` into ``seed``, returning a derived integer seed.

    Deterministic across processes and platforms (crc32, not ``hash()``).
    With no components the seed is returned unchanged.
    """
    derived = seed
    for comp in components:
        tag = zlib.crc32(repr(comp).encode("utf-8"))
        derived = (derived * 0x9E3779B1 + tag) & 0xFFFFFFFFFFFFFFFF
    return derived


def seeded_rng(seed: int, *components) -> random.Random:
    """Return a ``random.Random`` seeded from ``seed`` (+ sub-stream tags).

    The one place in ``src/repro/`` allowed to construct the generator
    directly; callers get determinism and the linter gets a single
    whitelisted site.
    """
    return random.Random(derive_seed(seed, *components))  # lint: disable=no-raw-rng -- this helper IS the sanctioned constructor
