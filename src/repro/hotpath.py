"""Explicit hot-path registry — the static seed for ``repro lint --perf``.

CellFusion's data plane must sustain per-packet encode/recode/decode at
line rate (§5): any allocation churn or slow idiom on these paths is a
throughput bug even when it is semantically correct.  Decorating a
function with :func:`hot_path` declares "this runs at packet rate":

* the perf lint pass (``tools/lint/perf.py``) seeds its call-graph
  hotness propagation from every ``@hot_path`` function (recognised
  *syntactically*, by decorator name, so analysis never imports project
  code) in addition to the bench-suite entry points, and analyzes
  everything transitively reachable;
* at runtime the decorator is a no-op apart from recording the function
  in :func:`hot_registry`, which tests use to assert the registry and
  the analyzer agree on what is hot.

Keep the registry small and honest: decorate packet-rate *entry points*
(the tunnel send/receive path, codec push/encode), not every helper they
call — propagation covers the callees.
"""

from __future__ import annotations

from typing import Callable, Dict, TypeVar

__all__ = ["hot_path", "hot_registry"]

FuncT = TypeVar("FuncT", bound=Callable)

#: qualname -> function, in decoration order.  Import-time only writes.
_REGISTRY: Dict[str, Callable] = {}  # lint: shard-safe(populated once at import time by decorators; identical in every worker)


def hot_path(func: FuncT) -> FuncT:
    """Mark ``func`` as a packet-rate hot path (runtime no-op).

    The original function object is returned unchanged — no wrapper, no
    call overhead — so decorating a hot function costs nothing on the
    path it declares hot.
    """
    _REGISTRY["%s.%s" % (func.__module__, func.__qualname__)] = func
    return func


def hot_registry() -> Dict[str, Callable]:
    """Snapshot of registered hot functions: dotted qualname -> function."""
    return dict(_REGISTRY)
