"""Fleet report: the merged, digest-carrying result of a fleet run.

A :class:`FleetReport` is plain data — the config, one summary row per
vehicle, the control-plane accounting, and the *lossless* merged
:class:`~repro.obs.RunAggregate` state — plus a canonical content
digest.  The digest is the determinism contract: it is computed over a
canonical JSON document in which every float is rendered with
``float.hex()`` (bit-exact, no formatting ambiguity), keys are sorted,
and run-shape-only fields (``shards``, ``sanitize``, wall time) are
excluded.  Two runs agree on the digest iff they agree on every bit of
every result — the shard-invariance suite pins digest equality across
shard counts, and ``repro fleet --check-digest`` re-runs a saved
config and verifies the stored digest still reproduces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..obs.aggregate import RunAggregate
from .config import FleetConfig

__all__ = [
    "FleetReport",
    "hex_floats",
]

#: Config fields that change how a run executes but never what it
#: computes; the digest must ignore them.
_SHAPE_ONLY_CONFIG = ("shards", "sanitize", "shard_retries")


def hex_floats(value: Any) -> Any:
    """Recursively replace floats with ``float.hex()`` strings.

    Canonicalises a JSON-able document for digesting: hex rendering is
    bit-exact both ways, so two documents digest equal iff every float
    in them is the *same double*, not merely printed alike.
    """
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {k: hex_floats(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [hex_floats(v) for v in value]
    return value


@dataclass
class FleetReport:
    """Everything a fleet run produced, JSON-able and digest-stable."""

    config: dict
    #: One summary row per vehicle (sorted by vid): placement, QoE,
    #: delivery counts — everything except the bulky aggregate state.
    vehicles: List[dict]
    #: Control-plane accounting from :func:`~repro.fleet.runner.plan_fleet`.
    control: dict
    #: Lossless merged fleet aggregate (``RunAggregate.state_dict()``).
    aggregate_state: dict
    #: Informational wall-clock seconds; excluded from the digest.
    wall: float = 0.0
    meta: dict = field(default_factory=dict)

    @classmethod
    def build(cls, config: FleetConfig, plan, payloads: List[dict],
              fleet_agg: RunAggregate, wall: float) -> "FleetReport":
        rows = []
        for payload, spec in zip(payloads, plan.vehicles):
            row = {k: v for k, v in payload.items() if k != "aggregate"}
            row["join_time"] = spec.join_time
            row["faulted"] = spec.faulted
            rows.append(row)
        return cls(
            config=config.as_dict(),
            vehicles=rows,
            control=plan.control,
            aggregate_state=fleet_agg.state_dict(),
            wall=wall,
        )

    # -- derived views -----------------------------------------------------

    def fleet_aggregate(self) -> RunAggregate:
        """The merged aggregate, rehydrated (lossless)."""
        return RunAggregate.from_state(self.aggregate_state)

    def qoe_summary(self) -> Dict[str, float]:
        """Fleet-mean QoE over placed-or-not vehicles."""
        n = len(self.vehicles)
        if not n:
            return {"avg_fps": 0.0, "stall_ratio": 0.0, "ssim": 0.0}
        return {
            "avg_fps": sum(v["qoe"]["avg_fps"] for v in self.vehicles) / n,
            "stall_ratio": sum(v["qoe"]["stall_ratio"] for v in self.vehicles) / n,
            "ssim": sum(v["qoe"]["ssim"] for v in self.vehicles) / n,
        }

    def summary_table(self) -> str:
        """Human-readable fleet summary (ASCII)."""
        from ..analysis.report import format_table

        qoe = self.qoe_summary()
        agg = self.fleet_aggregate()
        ctl = self.control
        rows = [
            ["vehicles", "%d" % len(self.vehicles)],
            ["unplaced", "%d" % ctl["controller"]["unplaced"]],
            ["failovers", "%d" % ctl["controller"]["failovers"]],
            ["peak concurrency", "%d" % ctl["concurrency"]["peak_total"]],
            ["autoscaler up/down", "%d/%d" % (ctl["autoscaler"]["ups"],
                                              ctl["autoscaler"]["downs"])],
            ["snat peak/ports", "%d/%d" % (ctl["snat"]["peak_live"],
                                           ctl["snat"]["port_count"])],
            ["snat denials", "%d" % ctl["snat"]["denials"]],
            ["mean fps", "%.2f" % qoe["avg_fps"]],
            ["mean stall", "%.2f%%" % (qoe["stall_ratio"] * 100)],
            ["mean ssim", "%.3f" % qoe["ssim"]],
            ["delivery", "%.2f%%" % (agg.delivery_ratio * 100)],
            ["digest", self.digest[:16]],
        ]
        return format_table(["metric", "value"], rows,
                            title="fleet run (%d vehicles, seed %d)"
                            % (len(self.vehicles), self.config.get("seed", 0)))

    # -- digest ------------------------------------------------------------

    def digest_document(self) -> dict:
        """The canonical document the digest is computed over.

        Excludes run-shape knobs (``shards``, ``sanitize``) and wall
        time; everything else — including every per-vehicle float and
        every histogram bucket — participates, hex-canonicalised.
        """
        config = {k: v for k, v in self.config.items()
                  if k not in _SHAPE_ONLY_CONFIG}
        return hex_floats({
            "config": config,
            "vehicles": self.vehicles,
            "control": self.control,
            "aggregate": self.aggregate_state,
        })

    @property
    def digest(self) -> str:
        doc = json.dumps(self.digest_document(), sort_keys=True,
                         separators=(",", ":"))
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()

    # -- (de)serialisation -------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "type": "fleet-report",
            "config": self.config,
            "vehicles": self.vehicles,
            "control": self.control,
            "aggregate_state": self.aggregate_state,
            "wall": self.wall,
            "meta": self.meta,
            "digest": self.digest,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FleetReport":
        with open(path) as fh:
            d = json.load(fh)
        report = cls(config=d["config"], vehicles=d["vehicles"],
                     control=d["control"],
                     aggregate_state=d["aggregate_state"],
                     wall=d.get("wall", 0.0), meta=d.get("meta", {}))
        stored = d.get("digest")
        if stored is not None and stored != report.digest:
            raise ValueError("fleet report digest mismatch: file says %s..., "
                             "content hashes to %s..."
                             % (stored[:12], report.digest[:12]))
        return report
