"""Fleet run configuration.

One :class:`FleetConfig` fully determines a fleet run: the per-vehicle
seeds, the control-plane timeline (joins, leaves, autoscaler ticks,
outages), the SNAT pool sizing, and the per-vehicle simulations are all
pure functions of it.  ``shards`` is the *only* field allowed to change
without changing the results — the shard-invariance regression suite
pins that a :class:`~repro.fleet.report.FleetReport` digest is
byte-identical for any shard count.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple

__all__ = [
    "VEHICLE_MODES",
    "FleetConfig",
]

#: Per-vehicle simulation fidelities.
#:
#: * ``tunnel`` — every vehicle is a full seeded
#:   :func:`~repro.experiments.runner.run_stream` session (real XNC
#:   tunnel, emulator, video source).  ~0.2 wall-seconds per simulated
#:   second per vehicle; the fidelity the paper figures use.
#: * ``lite``  — every vehicle is a cheap closed-form seeded QoE draw
#:   (no event loop).  ~10k vehicles/second; same control plane, same
#:   aggregation pipeline, for 1k-10k-scale runs and merge-path tests.
VEHICLE_MODES = ("tunnel", "lite")


@dataclass
class FleetConfig:
    """Everything a fleet run needs; validated on construction."""

    #: Fleet size (the paper deployment ran 100 vehicles, §6.1).
    vehicles: int = 100
    #: Worker processes; vids are split into contiguous blocks, one
    #: event-loop-owning process per block.  Never affects results.
    shards: int = 1
    #: Root seed; every vehicle derives its own sub-stream from it.
    seed: int = 0
    #: Per-vehicle simulated streaming seconds (a *sample* of the
    #: vehicle's session, not the control-plane session length below).
    duration: float = 2.0
    #: Transport registry name (see repro.experiments.runner).
    transport: str = "cellfusion"
    bitrate_mbps: float = 30.0
    #: Per-vehicle fidelity, one of :data:`VEHICLE_MODES`.
    mode: str = "tunnel"

    # -- control plane ------------------------------------------------------
    #: PoP grid: per-region count x regions (defaults to the paper's
    #: ~50-PoP / three-state footprint).
    pops_per_region: int = 17
    regions: Tuple[str, ...] = ("state-A", "state-B", "state-C")
    #: Candidate PoPs the controller offers each CPE (§6.1 function 4).
    candidates: int = 3
    #: Vehicles join staggered over this many control-clock seconds.
    join_window: float = 600.0
    #: Control-clock seconds each vehicle stays connected.
    session_time: float = 300.0
    #: Autoscaler / health-check / SNAT-expiry tick interval.
    control_tick: float = 15.0
    #: Proxy containers: sessions per container and scaling cooldown
    #: (the rest of the policy keeps AutoscalerPolicy defaults).
    sessions_per_container: int = 25
    autoscaler_cooldown: float = 30.0
    #: PoPs that stop heartbeating at ``outage_time`` (0 = no outage).
    outage_pops: int = 0
    #: When the outage strikes; defaults to mid-join-window when None.
    outage_time: float = -1.0

    # -- SNAT ---------------------------------------------------------------
    #: Flows each vehicle pushes through the proxy SNAT (one per path).
    flows_per_vehicle: int = 4
    #: Proxy SNAT port-pool size; 0 = auto-size to roughly half the
    #: fleet's total flow demand, so overlapping sessions genuinely
    #: contend for ports at every fleet size.
    snat_port_count: int = 0
    #: UDP-style idle expiry for SNAT mappings (control-clock seconds).
    snat_idle_timeout: float = 60.0

    # -- chaos --------------------------------------------------------------
    #: Fraction of vehicles that stream under a seeded random fault plan.
    fault_rate: float = 0.0
    fault_seed: int = 0

    #: Arm the runtime protocol sanitizer inside every vehicle run.
    sanitize: bool = False

    #: Times a crashed shard's vid block is retried **in-process** before
    #: the fleet run gives up.  Like ``shards``/``sanitize``, this is a
    #: shape-only knob: recovery replays the same pure (seed, vid) specs,
    #: so the report digest never depends on it.
    shard_retries: int = 2

    def __post_init__(self):
        if self.vehicles < 1:
            raise ValueError("vehicles must be >= 1")
        if not 1 <= self.shards <= self.vehicles:
            raise ValueError("shards must be in [1, vehicles]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.mode not in VEHICLE_MODES:
            raise ValueError("mode must be one of %s, got %r"
                             % (VEHICLE_MODES, self.mode))
        if self.pops_per_region < 1 or not self.regions:
            raise ValueError("need at least one PoP in at least one region")
        if self.candidates < 1:
            raise ValueError("candidates must be >= 1")
        if self.join_window < 0 or self.session_time <= 0:
            raise ValueError("join_window must be >= 0, session_time > 0")
        if self.control_tick <= 0:
            raise ValueError("control_tick must be positive")
        if self.flows_per_vehicle < 0 or self.snat_port_count < 0:
            raise ValueError("flows_per_vehicle/snat_port_count must be >= 0")
        if self.snat_idle_timeout <= 0:
            raise ValueError("snat_idle_timeout must be positive")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must lie in [0, 1]")
        if self.outage_pops < 0:
            raise ValueError("outage_pops must be >= 0")
        if self.shard_retries < 0:
            raise ValueError("shard_retries must be >= 0")
        if self.outage_pops >= self.pops_per_region * len(self.regions):
            raise ValueError("outage_pops must leave at least one PoP up")
        from ..experiments.runner import TRANSPORT_NAMES

        if self.transport not in TRANSPORT_NAMES:
            raise ValueError("unknown transport %r" % self.transport)
        self.regions = tuple(self.regions)

    @property
    def effective_outage_time(self) -> float:
        """The configured outage time, defaulted to mid-join-window."""
        return self.outage_time if self.outage_time >= 0 else self.join_window / 2

    @property
    def effective_snat_ports(self) -> int:
        """Auto-sized port pool: ~half the fleet's total flow demand."""
        if self.snat_port_count:
            return self.snat_port_count
        return max(64, self.vehicles * self.flows_per_vehicle // 2)

    def as_dict(self) -> dict:
        d = asdict(self)
        d["regions"] = list(self.regions)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FleetConfig":
        d = dict(d)
        if "regions" in d:
            d["regions"] = tuple(d["regions"])
        return cls(**d)
