"""Fleet-scale simulation: N seeded vehicle tunnels, sharded (ROADMAP 1).

The fleet layer drives many independent per-vehicle tunnel simulations
through one shared control plane — real controller placement, SNAT
port-pool pressure, autoscaling — and merges per-vehicle aggregates
into a fleet report whose content digest is byte-identical for any
shard count.  See docs/fleet.md.
"""

from .config import VEHICLE_MODES, FleetConfig
from .report import FleetReport, hex_floats
from .runner import FleetPlan, plan_fleet, run_fleet, shard_blocks
from .vehicle import UNPLACED_ACCESS_DELAY, VehicleSpec, simulate_vehicle

__all__ = [
    "VEHICLE_MODES",
    "FleetConfig",
    "FleetPlan",
    "FleetReport",
    "UNPLACED_ACCESS_DELAY",
    "VehicleSpec",
    "hex_floats",
    "plan_fleet",
    "run_fleet",
    "shard_blocks",
    "simulate_vehicle",
]
