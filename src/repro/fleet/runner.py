"""Fleet runner: control plane + sharded per-vehicle simulation.

Two phases, deliberately separated so shard count can never leak into
results:

**Phase 1 — control plane** (:func:`plan_fleet`, parent process only).
A deterministic discrete timeline on the *control clock*: vehicles join
staggered over ``join_window`` and stay for ``session_time``; at each
join the :class:`~repro.cloud.controller.Controller` runs real placement
(healthy least-loaded candidates, per-vehicle seeded tie-breaking) and
the vehicle's flows are pushed through the shared proxy
:class:`~repro.cloud.nat.SnatTable` (auto-sized to genuinely contend);
every ``control_tick`` the PoPs heartbeat, stale PoPs are failed, the
:class:`~repro.cloud.autoscaler.ProxyAutoscaler` reacts to aggregate
load, idle SNAT mappings expire, vehicles stranded on dead PoPs fail
over, and per-PoP concurrency is sampled.  The output is a
:class:`FleetPlan`: one frozen :class:`~repro.fleet.vehicle.VehicleSpec`
per vehicle plus the control-plane accounting.

**Phase 2 — vehicles** (:func:`run_fleet`).  Each spec is a pure
function of (fleet seed, vid, placement); specs are split into
contiguous vid blocks and executed on a
``concurrent.futures.ProcessPoolExecutor`` — one worker process (and
therefore one event loop at a time) per shard.  Workers return plain
payload dicts; the parent always folds them **in vid order**, so the
merged :class:`~repro.obs.RunAggregate` — and the
:class:`~repro.fleet.report.FleetReport` digest over it — is
byte-identical for 1, 2, 4, or any other shard count (float addition is
not associative, so a per-shard pre-merge would not be).
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..cloud.autoscaler import AutoscalerPolicy, ProxyAutoscaler
from ..cloud.controller import Controller
from ..cloud.nat import NatError, SnatTable
from ..cloud.pop import default_pop_grid
from ..determinism import derive_seed, seeded_rng
from ..obs.aggregate import RunAggregate
from .config import FleetConfig
from .report import FleetReport
from .vehicle import UNPLACED_ACCESS_DELAY, VehicleSpec, simulate_vehicle

__all__ = [
    "FleetPlan",
    "plan_fleet",
    "run_fleet",
    "shard_blocks",
]

logger = logging.getLogger(__name__)

#: Proxy-side public IP of the SNAT model (documentation value).
SNAT_PUBLIC_IP = "203.0.113.7"
#: UDP protocol number for SNAT flow keys.
_UDP = 17


@dataclass
class FleetPlan:
    """Phase-1 output: frozen vehicle specs + control-plane accounting."""

    config: FleetConfig
    vehicles: List[VehicleSpec]
    #: Deterministic control-plane accounting (autoscaler / SNAT /
    #: controller / per-PoP concurrency), JSON-able.
    control: dict = field(default_factory=dict)


def _grid_bounds(pops) -> Tuple[float, float, float, float]:
    xs = [p.location[0] for p in pops]
    ys = [p.location[1] for p in pops]
    return min(xs), max(xs), min(ys), max(ys)


def plan_fleet(config: FleetConfig) -> FleetPlan:
    """Run the deterministic control-plane timeline; returns the plan.

    Everything here happens in the parent process before any shard
    spawns, and consumes only RNG streams derived per vehicle
    (``seeded_rng(seed, "vehicle-*", vid)``) — so the plan is identical
    for every shard count and every scheduling order.
    """
    pops = default_pop_grid(config.pops_per_region, config.regions)
    controller = Controller()
    scaler = ProxyAutoscaler(AutoscalerPolicy(
        sessions_per_container=config.sessions_per_container,
        cooldown=config.autoscaler_cooldown,
    ))
    for pop in pops:
        controller.register_pop(pop)
        # containers drive admission capacity from t=0
        pop.capacity_sessions = scaler.capacity(pop.pop_id)
    snat = SnatTable(SNAT_PUBLIC_IP, port_count=config.effective_snat_ports,
                     idle_timeout=config.snat_idle_timeout)
    outage_ids = [p.pop_id for p in pops[:config.outage_pops]]
    outage_time = config.effective_outage_time

    x0, x1, y0, y1 = _grid_bounds(pops)
    tokens: Dict[int, str] = {}
    joins: List[Tuple[float, int]] = []
    for vid in range(config.vehicles):
        prng = seeded_rng(config.seed, "vehicle-place", vid)
        jitter = prng.random() * config.join_window / max(1, config.vehicles)
        join_time = config.join_window * vid / config.vehicles + jitter
        joins.append((join_time, vid))

    # one merged timeline: ticks, the outage, leaves, then joins at equal
    # instants (fixed kind priority keeps ordering fully deterministic)
    end = (max(t for t, _ in joins) if joins else 0.0) + config.session_time
    events: List[Tuple[float, int, int]] = []
    tick = 0.0
    while tick <= end + config.control_tick:
        events.append((tick, 0, -1))
        tick += config.control_tick
    if outage_ids:
        events.append((outage_time, 1, -1))
    for t, vid in joins:
        events.append((t + config.session_time, 2, vid))  # leave
        events.append((t, 3, vid))                        # join
    events.sort()

    specs: Dict[int, VehicleSpec] = {}
    active: Dict[int, VehicleSpec] = {}
    flows: Dict[int, List[Tuple[str, int]]] = {}
    outage_struck = False
    unplaced = 0
    snat_denials = 0
    peak_live_ports = 0
    peak_containers = scaler.total_containers()
    per_pop_peak: Dict[str, int] = {}
    samples: List[dict] = []
    health_failures = 0

    def _refresh_flows(vid: int, now: float) -> None:
        nonlocal snat_denials
        for addr, port in flows.get(vid, ()):
            try:
                snat.translate(_UDP, addr, port, now=now)
            except NatError:
                snat_denials += 1

    for now, kind, vid in events:
        if kind == 0:  # control tick
            for pop in pops:
                if outage_struck and pop.pop_id in outage_ids:
                    continue  # crashed PoPs stop heartbeating
                controller.heartbeat(pop.pop_id, pop.active_sessions, now)
            health_failures += len(controller.check_health(now))
            # vehicles stranded on a dead PoP re-orchestrate
            for avid in sorted(active):
                spec = active[avid]
                pop_id = controller.assigned_pop(spec.device_id)
                if pop_id is not None:
                    pop = next((p for p in pops if p.pop_id == pop_id), None)
                    if pop is not None and not pop.healthy:
                        controller.failover(spec.device_id, tokens[avid], now)
            for decision in scaler.evaluate_fleet(pops, now):
                logger.debug("autoscaler %s %s %d->%d", decision.pop_id,
                             decision.direction, decision.from_containers,
                             decision.to_containers)
            peak_containers = max(peak_containers, scaler.total_containers())
            snat.expire_idle(now)
            for avid in sorted(active):
                _refresh_flows(avid, now)
            peak_live_ports = max(peak_live_ports, len(snat))
            per_pop = {p.pop_id: p.active_sessions for p in pops
                       if p.active_sessions}
            for pid, n in per_pop.items():
                if n > per_pop_peak.get(pid, 0):
                    per_pop_peak[pid] = n
            samples.append({"t": now, "total": len(active),
                            "per_pop": per_pop})
        elif kind == 1:  # outage strikes
            outage_struck = True
        elif kind == 2:  # leave: sessions end, UDP mappings just go idle
            spec = active.pop(vid, None)
            if spec is None:
                continue
            pop_id = controller.assigned_pop(spec.device_id)
            if pop_id is not None:
                pop = next((p for p in pops if p.pop_id == pop_id), None)
                if pop is not None:
                    pop.release()
        else:  # join: authenticate, place, open SNAT flows
            device_id = "veh-%05d" % vid
            token = controller.register_device(device_id)
            tokens[vid] = token
            prng = seeded_rng(config.seed, "vehicle-place", vid)
            prng.random()  # consumed above for join jitter
            location = (x0 + prng.random() * (x1 - x0),
                        y0 + prng.random() * (y1 - y0))
            choice = controller.place(
                device_id, token, location,
                rng=seeded_rng(config.seed, "vehicle-tiebreak", vid),
                count=config.candidates)
            if choice is None:
                unplaced += 1
                pop_id, access = None, UNPLACED_ACCESS_DELAY
            else:
                pop_id, access = choice.pop_id, choice.access_delay(location)
            faulted = (config.fault_rate > 0.0 and
                       seeded_rng(config.seed, "vehicle-fault", vid).random()
                       < config.fault_rate)
            spec = VehicleSpec(
                vid=vid,
                seed=derive_seed(config.seed, "vehicle", vid),
                device_id=device_id,
                join_time=now,
                location=location,
                pop_id=pop_id,
                access_delay=access,
                faulted=faulted,
                fault_seed=derive_seed(config.fault_seed, "vehicle-fault", vid),
            )
            specs[vid] = spec
            active[vid] = spec
            tun_addr = "10.64.0.%d" % (vid % 250)
            flows[vid] = [(tun_addr, 50000 + vid * config.flows_per_vehicle + i)
                          for i in range(config.flows_per_vehicle)]
            _refresh_flows(vid, now)
            peak_live_ports = max(peak_live_ports, len(snat))

    ups = sum(1 for d in scaler.decisions if d.direction == "up")
    downs = sum(1 for d in scaler.decisions if d.direction == "down")
    control = {
        "ticks": len(samples),
        "autoscaler": {
            "ups": ups,
            "downs": downs,
            "final_containers": scaler.total_containers(),
            "peak_containers": peak_containers,
        },
        "snat": {
            "port_count": config.effective_snat_ports,
            "evictions": snat.evictions,
            "flushes": snat.flushes,
            "denials": snat_denials,
            "peak_live": peak_live_ports,
        },
        "controller": {
            "failovers": controller.failovers,
            "unplaced": unplaced,
            "health_failures": health_failures,
            "outage_pops": outage_ids,
            "outage_time": outage_time if outage_ids else None,
        },
        "concurrency": {
            "samples": samples,
            "peak_total": max((s["total"] for s in samples), default=0),
            "per_pop_peak": {k: per_pop_peak[k] for k in sorted(per_pop_peak)},
        },
    }
    return FleetPlan(config=config,
                     vehicles=[specs[v] for v in sorted(specs)],
                     control=control)


def shard_blocks(n_vehicles: int, shards: int) -> List[range]:
    """Contiguous vid blocks, one per shard; sizes differ by at most 1."""
    if not 1 <= shards <= n_vehicles:
        raise ValueError("shards must be in [1, n_vehicles]")
    return [range(i * n_vehicles // shards, (i + 1) * n_vehicles // shards)
            for i in range(shards)]


#: Test hook: comma-separated vids whose *worker-process* simulation
#: crashes the shard (the in-process retry is immune, which is exactly
#: what makes recovery deterministic and digest-identical).
_CRASH_ENV = "REPRO_FLEET_CRASH_VIDS"


def _maybe_crash(vid: int) -> None:
    import multiprocessing
    import os

    raw = os.environ.get(_CRASH_ENV, "")
    if not raw:
        return
    if vid in {int(v) for v in raw.split(",") if v.strip()}:
        if multiprocessing.parent_process() is not None:
            # hard worker death (no exception, no cleanup): the parent
            # sees BrokenProcessPool, the shape a real OOM-kill takes
            os._exit(17)


def _run_shard(config: FleetConfig, specs: List[VehicleSpec]) -> List[dict]:
    """Worker entry point: simulate one contiguous block of vehicles.

    Module-level on purpose (executor spawn safety): no closures, no
    shared state — just (config, specs) in, payload dicts out.
    """
    out = []
    for spec in specs:
        _maybe_crash(spec.vid)
        out.append(simulate_vehicle(spec, config))
    return out


def run_fleet(config: FleetConfig) -> FleetReport:
    """Plan the fleet, simulate every vehicle, merge, and report.

    Shard workers return per-vehicle payloads; the parent folds them in
    ascending vid order regardless of which shard produced them or when
    it finished, which makes the merged aggregate — and the report
    digest — invariant to ``config.shards``.

    **Crash recovery**: a shard worker dying (``BrokenProcessPool`` from
    an OOM-kill or segfault) or raising no longer kills the run — the
    failed vid block is retried **in the parent process**, up to
    ``config.shard_retries`` times per block.  Specs are pure functions
    of (fleet seed, vid, placement), so a replayed block reproduces the
    crashed worker's payloads bit for bit and the report digest matches
    an unfaulted run; recovery counts land in ``report.meta`` only.
    """
    import time

    t0 = time.perf_counter()  # lint: disable=no-wall-clock -- informational wall time for the report meta; excluded from the digest
    plan = plan_fleet(config)
    blocks = shard_blocks(config.vehicles, config.shards)
    recoveries: List[dict] = []
    if config.shards == 1:
        payloads = _run_shard(config, plan.vehicles)
    else:
        by_block = [[plan.vehicles[v] for v in block] for block in blocks]
        with ProcessPoolExecutor(max_workers=config.shards) as pool:
            futures = [pool.submit(_run_shard, config, specs)
                       for specs in by_block]
            shard_results: List[List[dict]] = []
            for i, future in enumerate(futures):
                block = by_block[i]
                try:
                    shard_results.append(future.result())
                    continue
                except Exception as exc:  # BrokenProcessPool, worker raise
                    first_error = exc
                    logger.warning(
                        "shard %d (vids %d-%d) failed: %s — retrying "
                        "in-process", i, block[0].vid, block[-1].vid, exc)
                recovered = None
                errors = [repr(first_error)]
                for attempt in range(config.shard_retries):
                    try:
                        recovered = _run_shard(config, block)
                        break
                    except Exception as exc:
                        errors.append(repr(exc))
                        logger.warning("shard %d retry %d failed: %s",
                                       i, attempt + 1, exc)
                if recovered is None:
                    raise RuntimeError(
                        "fleet shard %d (vids %d-%d) failed and %d in-process "
                        "retr%s could not recover it: %s"
                        % (i, block[0].vid, block[-1].vid,
                           config.shard_retries,
                           "y" if config.shard_retries == 1 else "ies",
                           "; ".join(errors))) from first_error
                shard_results.append(recovered)
                recoveries.append({
                    "shard": i,
                    "vids": [block[0].vid, block[-1].vid],
                    "attempts": len(errors),
                    "errors": errors,
                })
        payloads = [p for block in shard_results for p in block]
    payloads.sort(key=lambda p: p["vid"])

    fleet_agg = RunAggregate()
    for payload in payloads:
        fleet_agg.merge(RunAggregate.from_state(payload["aggregate"]))
    wall = time.perf_counter() - t0  # lint: disable=no-wall-clock -- paired read closing the informational wall-time window

    logger.info("fleet run: %d vehicles / %d shard(s) in %.1f s wall",
                config.vehicles, config.shards, wall)
    report = FleetReport.build(config, plan, payloads, fleet_agg, wall)
    if recoveries:
        report.meta["shard_recoveries"] = recoveries
    return report
