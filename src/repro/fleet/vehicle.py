"""Per-vehicle simulation: one seeded tunnel session -> one payload dict.

A vehicle's entire behaviour is a pure function of its
:class:`VehicleSpec` (itself derived from the fleet seed as
``derive_seed(fleet_seed, "vehicle", vid)``) and the
:class:`~repro.fleet.config.FleetConfig`.  Nothing here reads fleet
state: the control plane already baked placement into the spec, so a
vehicle simulates identically whether it runs inline, in shard 0 of 2,
or in shard 3 of 4 — the property the shard-invariance suite pins.

Two fidelities (``config.mode``):

* ``tunnel`` — a full :func:`~repro.experiments.runner.run_stream`
  session: real XNC/RLNC tunnel, 4-path cellular emulator, video
  source, optional per-vehicle fault plan.
* ``lite`` — a closed-form seeded QoE draw with no event loop, ~1000x
  cheaper, for 1k-10k-vehicle scale runs.  Same payload shape, same
  aggregation pipeline.

The payload is plain JSON-able data (the shard boundary is a process
boundary): a lossless :class:`~repro.obs.RunAggregate` state plus the
scalar summary row the fleet report prints.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Tuple

from ..determinism import derive_seed, seeded_rng
from ..obs.aggregate import RunAggregate

__all__ = [
    "UNPLACED_ACCESS_DELAY",
    "VehicleSpec",
    "simulate_vehicle",
]

#: Access delay charged to vehicles the controller could not place (no
#: PoP capacity): the long-haul fallback path, far worse than any PoP.
UNPLACED_ACCESS_DELAY = 0.030

#: Lite-mode synthetic stream shape.
LITE_FPS = 30.0
LITE_PACKETS_PER_FRAME = 4


@dataclass
class VehicleSpec:
    """One vehicle's placement-time identity, fixed by the control plane."""

    vid: int
    #: run_stream seed: ``derive_seed(fleet_seed, "vehicle", vid)``.
    seed: int
    device_id: str
    join_time: float
    location: Tuple[float, float]
    #: Chosen PoP (None when the controller had no capacity anywhere).
    pop_id: Optional[str]
    #: One-way vehicle->PoP delay, added onto tunnel delays end to end.
    access_delay: float
    #: Whether this vehicle streams under a seeded random fault plan.
    faulted: bool = False
    fault_seed: int = 0

    def as_dict(self) -> dict:
        d = asdict(self)
        d["location"] = list(self.location)
        return d


def _lite_payload(spec: VehicleSpec, config) -> dict:
    """Closed-form seeded vehicle: no event loop, same payload shape."""
    rng = seeded_rng(spec.seed, "lite")
    frames = max(1, int(config.duration * LITE_FPS))
    # per-vehicle radio quality: loss probability and delay scale drawn
    # once, then per-packet outcomes drawn from the same stream
    loss_p = 0.004 + 0.045 * rng.random()
    if spec.faulted:
        loss_p = min(0.9, loss_p * (2.0 + 3.0 * seeded_rng(
            spec.fault_seed, "lite-fault", spec.vid).random()))
    base_delay = 0.012 + 0.010 * rng.random()
    sent = 0
    received = 0
    delays = []
    status_counts = {"normal": 0, "corrupt": 0, "missing": 0}
    for _ in range(frames):  # lint: hot-ok(lite-mode vehicle synthesis is the workload itself; one draw per synthetic packet)
        lost = 0
        for _ in range(LITE_PACKETS_PER_FRAME):
            sent += 1
            if rng.random() < loss_p:
                lost += 1
            else:
                received += 1
                delays.append(base_delay + rng.expovariate(120.0))
        if lost == 0:
            status_counts["normal"] += 1
        elif lost < LITE_PACKETS_PER_FRAME:
            status_counts["corrupt"] += 1
        else:
            status_counts["missing"] += 1

    agg = RunAggregate("lite")
    agg.runs = 1
    agg.duration = config.duration
    agg.frames_sent = frames
    agg.frame_status = {k: v for k, v in status_counts.items() if v}
    agg.packets_sent = sent
    agg.packets_received = received
    censored = delays + [1.0] * (sent - received)
    agg.metrics.observe_many("delay.packet", censored)
    agg.metrics.observe_many("delay.e2e",
                             [d + spec.access_delay for d in censored])
    ok = status_counts["normal"] + status_counts["corrupt"]
    qoe = {
        "avg_fps": LITE_FPS * ok / frames,
        "stall_ratio": status_counts["missing"] / frames,
        "ssim": max(0.0, 0.99 - 0.4 * status_counts["corrupt"] / frames
                    - 0.9 * status_counts["missing"] / frames),
    }
    return {
        "vid": spec.vid,
        "pop": spec.pop_id,
        "access_delay": spec.access_delay,
        "qoe": qoe,
        "frames_sent": frames,
        "packets_sent": sent,
        "packets_received": received,
        "terminal_error": None,
        "faults_applied": 1 if spec.faulted else 0,
        "aggregate": agg.state_dict(),
    }


def _tunnel_payload(spec: VehicleSpec, config) -> dict:
    """Full seeded run_stream session for one vehicle."""
    from ..experiments.runner import run_stream
    from ..video.source import VideoConfig

    plan = None
    if spec.faulted:
        from ..faults.plan import random_plan

        # random_plan needs >1 s of room; clamp for very short samples
        plan = random_plan(spec.fault_seed,
                           duration=max(1.25, config.duration))
    result = run_stream(
        config.transport,
        duration=config.duration,
        seed=spec.seed,
        video=VideoConfig(bitrate_mbps=config.bitrate_mbps,
                          seed=derive_seed(spec.seed, "video")),
        sanitize=True if config.sanitize else None,
        faults=plan,
        fault_seed=spec.fault_seed,
    )
    agg = RunAggregate().add_result(result)
    agg.metrics.observe_many(
        "delay.e2e",
        [d + spec.access_delay for d in result.censored_packet_delays()])
    return {
        "vid": spec.vid,
        "pop": spec.pop_id,
        "access_delay": spec.access_delay,
        "qoe": {
            "avg_fps": result.qoe.avg_fps,
            "stall_ratio": result.qoe.stall_ratio,
            "ssim": result.qoe.ssim,
        },
        "frames_sent": result.frames_sent,
        "packets_sent": result.packets_sent,
        "packets_received": result.packets_received,
        "terminal_error": result.terminal_error,
        "faults_applied": (result.fault_summary or {}).get("applied", 0),
        "aggregate": agg.state_dict(),
    }


def simulate_vehicle(spec: VehicleSpec, config) -> dict:
    """Simulate one vehicle; returns its JSON-able payload.

    Pure in (spec, config): no module state read or written, no RNG
    shared with any other vehicle — safe to run in any process, in any
    order.
    """
    if config.mode == "lite":
        return _lite_payload(spec, config)
    return _tunnel_payload(spec, config)
