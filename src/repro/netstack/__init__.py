"""Minimal IP machinery for the transparent tunnel (Appx. E, §6.2)."""

from .ip import (
    FragmentReassembler,
    IpError,
    Ipv4Packet,
    PROTO_TCP,
    PROTO_UDP,
    build_udp,
    checksum16,
    fragment,
    parse_udp,
)

__all__ = [
    "FragmentReassembler",
    "IpError",
    "Ipv4Packet",
    "PROTO_TCP",
    "PROTO_UDP",
    "build_udp",
    "checksum16",
    "fragment",
    "parse_udp",
]
