"""Minimal IPv4/UDP packet machinery for the transparent tunnel.

CellFusion tunnels raw IP packets (§3.2): the CPE's tun interface captures
them, the proxy decapsulates and Source-NATs them, and fragmentation
handles the worst-case MTU overflow (Appx. E).  This module provides just
enough of IPv4 — header build/parse, checksum, fragmentation and
reassembly, UDP encapsulation — for those code paths to be real rather
than pretend.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "UDP_HEADER",
    "UDP_HEADER_SIZE",
    "PROTO_UDP",
    "FLAG_DF",
    "IpError",
    "checksum16",
    "ip_to_bytes",
    "bytes_to_ip",
    "Ipv4Packet",
    "build_udp",
    "parse_udp",
    "fragment",
    "FragmentReassembler",
]

IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")
IPV4_HEADER_SIZE = IPV4_HEADER.size  # 20, no options
UDP_HEADER = struct.Struct("!HHHH")
UDP_HEADER_SIZE = UDP_HEADER.size  # 8

PROTO_UDP = 17
PROTO_TCP = 6

FLAG_DF = 0x2
FLAG_MF = 0x1


class IpError(Exception):
    """Malformed IP packet."""


def checksum16(data: bytes) -> int:
    """RFC 1071 16-bit one's-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def ip_to_bytes(addr: str) -> bytes:
    parts = addr.split(".")
    if len(parts) != 4:
        raise IpError("bad IPv4 address %r" % addr)
    try:
        octets = [int(p) for p in parts]
    except ValueError:
        raise IpError("bad IPv4 address %r" % addr)
    if any(not 0 <= o <= 255 for o in octets):
        raise IpError("bad IPv4 address %r" % addr)
    return bytes(octets)


def bytes_to_ip(data: bytes) -> str:
    if len(data) != 4:
        raise IpError("bad address length")
    return ".".join(str(b) for b in data)


@dataclass
class Ipv4Packet:
    """A parsed (or to-be-built) IPv4 packet."""

    src: str
    dst: str
    proto: int
    payload: bytes
    identification: int = 0
    ttl: int = 64
    flags: int = 0
    fragment_offset: int = 0  # in 8-byte units

    @property
    def total_length(self) -> int:
        return IPV4_HEADER_SIZE + len(self.payload)

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & FLAG_MF)

    @property
    def is_fragment(self) -> bool:
        return self.fragment_offset > 0 or self.more_fragments

    def encode(self) -> bytes:
        header = IPV4_HEADER.pack(
            0x45,
            0,
            self.total_length,
            self.identification,
            (self.flags << 13) | self.fragment_offset,
            self.ttl,
            self.proto,
            0,
            ip_to_bytes(self.src),
            ip_to_bytes(self.dst),
        )
        csum = checksum16(header)
        header = header[:10] + struct.pack("!H", csum) + header[12:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "Ipv4Packet":
        if len(data) < IPV4_HEADER_SIZE:
            raise IpError("truncated IPv4 header")
        (vihl, _tos, total, ident, flags_frag, ttl, proto, csum, src, dst) = IPV4_HEADER.unpack_from(data)
        if vihl >> 4 != 4:
            raise IpError("not IPv4")
        ihl = (vihl & 0xF) * 4
        if ihl != IPV4_HEADER_SIZE:
            raise IpError("IPv4 options unsupported")
        if total > len(data):
            raise IpError("truncated IPv4 packet")
        if verify_checksum and checksum16(data[:ihl]) != 0:
            raise IpError("bad IPv4 header checksum")
        return cls(
            src=bytes_to_ip(src),
            dst=bytes_to_ip(dst),
            proto=proto,
            payload=data[ihl:total],
            identification=ident,
            ttl=ttl,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
        )


def build_udp(src: str, sport: int, dst: str, dport: int, payload: bytes, ident: int = 0) -> bytes:
    """A complete IPv4/UDP packet (checksum left zero, as many stacks do)."""
    udp = UDP_HEADER.pack(sport, dport, UDP_HEADER_SIZE + len(payload), 0) + payload
    return Ipv4Packet(src=src, dst=dst, proto=PROTO_UDP, payload=udp, identification=ident).encode()


def parse_udp(data: bytes) -> Tuple[Ipv4Packet, int, int, bytes]:
    """Parse an IPv4/UDP packet -> (ip, sport, dport, udp payload)."""
    ip = Ipv4Packet.decode(data)
    if ip.proto != PROTO_UDP:
        raise IpError("not UDP")
    if len(ip.payload) < UDP_HEADER_SIZE:
        raise IpError("truncated UDP header")
    sport, dport, length, _csum = UDP_HEADER.unpack_from(ip.payload)
    if length > len(ip.payload):
        raise IpError("truncated UDP payload")
    return ip, sport, dport, ip.payload[UDP_HEADER_SIZE:length]


def fragment(packet: Ipv4Packet, mtu: int) -> List[Ipv4Packet]:
    """IP fragmentation for packets exceeding the tun MTU (Appx. E).

    Returns [packet] unchanged when it already fits.  Raises IpError when
    DF is set on an oversized packet (the PMTU-discovery case — senders
    then shrink, per the appendix).
    """
    if packet.total_length <= mtu:
        return [packet]
    if packet.flags & FLAG_DF:
        raise IpError("DF set on oversized packet (PMTU black hole)")
    chunk = ((mtu - IPV4_HEADER_SIZE) // 8) * 8
    if chunk <= 0:
        raise IpError("MTU too small to fragment")
    frags = []
    payload = packet.payload
    offset = 0
    while offset < len(payload):
        piece = payload[offset : offset + chunk]
        last = offset + chunk >= len(payload)
        frags.append(
            Ipv4Packet(
                src=packet.src,
                dst=packet.dst,
                proto=packet.proto,
                payload=piece,
                identification=packet.identification,
                ttl=packet.ttl,
                flags=(packet.flags & ~FLAG_MF) | (0 if last else FLAG_MF),
                fragment_offset=packet.fragment_offset + offset // 8,
            )
        )
        offset += chunk
    return frags


class FragmentReassembler:
    """Reassembles fragmented IPv4 packets keyed by (src, dst, proto, id)."""

    def __init__(self, timeout: float = 30.0):
        self.timeout = timeout
        self._partial: Dict[Tuple, Dict] = {}
        self.reassembled = 0
        self.timed_out = 0

    def push(self, packet: Ipv4Packet, now: float = 0.0) -> Optional[Ipv4Packet]:
        """Add a fragment; returns the whole packet when complete."""
        if not packet.is_fragment:
            return packet
        key = (packet.src, packet.dst, packet.proto, packet.identification)
        state = self._partial.setdefault(
            key, {"pieces": {}, "total": None, "first": now}
        )
        state["pieces"][packet.fragment_offset * 8] = packet.payload
        if not packet.more_fragments:
            state["total"] = packet.fragment_offset * 8 + len(packet.payload)
        if state["total"] is None:
            return None
        # complete when contiguous from 0 to total
        have = 0
        for off in sorted(state["pieces"]):
            if off != have:
                return None
            have = off + len(state["pieces"][off])
        if have != state["total"]:
            return None
        payload = b"".join(state["pieces"][off] for off in sorted(state["pieces"]))
        del self._partial[key]
        self.reassembled += 1
        return Ipv4Packet(
            src=packet.src,
            dst=packet.dst,
            proto=packet.proto,
            payload=payload,
            identification=packet.identification,
            ttl=packet.ttl,
        )

    def expire(self, now: float) -> int:
        """Drop stale partial reassemblies; returns how many."""
        stale = [k for k, s in self._partial.items() if now - s["first"] > self.timeout]
        for k in stale:
            del self._partial[k]
        self.timed_out += len(stale)
        return len(stale)
