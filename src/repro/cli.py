"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — stream one session through a chosen transport and print the
  QoE summary (the quickstart, parameterised);
* ``report`` — stream one session with span tracing armed and write the
  self-contained HTML report (delay CDFs, per-path timelines with fault
  overlays, frame delay decomposition, span waterfalls);
* ``compare`` — run several transports over the same traces and print
  the comparison table (the Fig. 9/11 harness, parameterised);
* ``figure`` — regenerate one paper figure's rows (fig3, fig8, fig9,
  fig10a, fig10b, fig11, fig12, fig13a, fig13b);
* ``fleet`` — run a sharded N-vehicle fleet simulation through the
  shared control plane (controller placement, SNAT pressure,
  autoscaling) and write the merged fleet report — JSON with a
  canonical content digest plus a self-contained HTML page;
  ``--check-digest`` re-runs a saved report's config and verifies the
  stored digest still reproduces (see docs/fleet.md);
* ``chaos`` — the robustness gate: ``chaos list`` prints the scenario
  catalog, ``chaos zoo`` runs every checked-in scenario and asserts its
  invariant oracles (``--rerun`` demands byte-identical digests),
  ``chaos run`` executes one scenario or replays a shrunk-plan JSON
  artifact, ``chaos campaign`` searches random fault plans with
  Hypothesis and shrinks any failure to a minimal replayable plan, and
  ``chaos diff`` drives one scenario across all nine transports and
  writes the HTML verdict matrix (see docs/robustness.md);
* ``trace`` — synthesise a cellular drive trace and export it;
* ``lint`` — run the repo's static protocol/determinism linter
  (``tools/lint``) over the source tree;
* ``bench`` — run the deterministic hot-path microbenchmarks
  (``tools/bench``) with optional regression gating (see
  docs/performance.md).

``run --sanitize`` arms the runtime protocol sanitizer for the session —
every transmit, ACK, range build, recovery plan and decode completion is
checked against the paper's invariants, and the first breach raises
(see docs/static-analysis.md).  ``REPRO_SANITIZE=1`` does the same for
any entry point without touching flags.

``run --faults PLAN.json`` arms deterministic fault injection for the
session — blackouts, brownouts, RTT spikes, bandwidth cliffs, NAT
rebinds and more, on a declarative schedule replayed exactly by
``--fault-seed`` (see docs/robustness.md).

``run --telemetry`` turns on the observability layer for the session and
prints the run summary (event counts, histogram tails, per-path
timelines); ``--telemetry-out FILE`` additionally exports everything as
JSONL (see docs/telemetry.md).  ``--log-level`` configures the ``repro.*``
logging namespace once for the whole process.

``run --spans-out FILE`` arms causal span tracing and exports the span
tree as JSONL; ``--chrome-trace FILE`` exports the same tree as Chrome
trace-event JSON loadable in Perfetto / ``chrome://tracing``.
``--profile`` attaches the sim-time profiler and prints per-component
event-loop attribution after the run (see docs/telemetry.md).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from .analysis.report import format_qoe_rows, format_table
from .analysis.stats import tail_percentiles
from .emulation.cellular import generate_cellular_trace, generate_fleet_traces
from .emulation.trace import save_json, save_mahimahi
from .experiments import figures
from .experiments.runner import TRANSPORT_NAMES, run_stream
from .video.source import VideoConfig

__all__ = [
    "build_parser",
    "main",
]

logger = logging.getLogger(__name__)


def configure_logging(level: str = "warning") -> None:
    """Configure the ``repro.*`` logger namespace once (idempotent)."""
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
        root.propagate = False
    root.setLevel(getattr(logging, level.upper()))


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--duration", type=float, default=10.0, help="seconds of streaming")
    p.add_argument("--seed", type=int, default=0, help="trace seed (road segment)")
    p.add_argument("--bitrate", type=float, default=30.0, help="video bitrate in Mbps")


def _load_plan(path: Optional[str]):
    if not path:
        return None
    from .faults import FaultPlan

    return FaultPlan.load(path)


def _cmd_run(args: argparse.Namespace) -> int:
    spans = bool(args.spans_out or args.chrome_trace)
    telemetry = bool(args.telemetry or args.telemetry_out or spans)
    plan = _load_plan(args.faults)
    result = run_stream(
        args.transport,
        duration=args.duration,
        seed=args.seed,
        video=VideoConfig(bitrate_mbps=args.bitrate, seed=args.seed + 1),
        telemetry=telemetry,
        sanitize=True if args.sanitize else None,
        faults=plan,
        fault_seed=args.fault_seed,
        spans=spans,
        profile=args.profile,
    )
    print(format_qoe_rows({args.transport: result}))
    if result.packet_delays:
        pct = tail_percentiles(result.packet_delays)
        print("packet delay: " + "  ".join("%s=%.1fms" % (k, v * 1000) for k, v in pct.items()))
    print("delivery %.2f%%  redundancy %.2f%%"
          % (result.delivery_ratio * 100, result.redundancy_ratio * 100))
    if result.fault_summary is not None:
        fs = result.fault_summary
        print("faults: %d applied, %d lifted, %d NAT flush(es), "
              "%d health transition(s), final health [%s]"
              % (fs["applied"], fs["lifted"], fs["nat_flushes"],
                 fs["health_transitions"], ", ".join(fs["final_health"])))
    if result.terminal_error:
        print("TERMINAL: %s" % result.terminal_error)
    if telemetry:
        print()
        print(result.telemetry.summary_table())
        if args.telemetry_out:
            n = result.telemetry.export_jsonl(args.telemetry_out)
            print("wrote %d telemetry records to %s" % (n, args.telemetry_out))
        if args.spans_out:
            n = result.telemetry.spans.export_jsonl(args.spans_out)
            print("wrote %d span records to %s" % (n, args.spans_out))
        if args.chrome_trace:
            n = result.telemetry.spans.export_chrome_trace(args.chrome_trace)
            print("wrote %d trace events to %s (load in Perfetto)"
                  % (n, args.chrome_trace))
    if args.profile and result.profile is not None:
        from .obs import SimProfiler

        print()
        print(SimProfiler.format_report(result.profile))
    if args.sanitize:
        from .sanitizer import registered_globals, totals

        t = totals()
        print("sanitizer: %d checks, %d violations" % (t["checks"], t["violations"]))
        print("state guard: %d registered global(s) verified, no leaks"
              % len(registered_globals()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import write_html_report

    result = run_stream(
        args.transport,
        duration=args.duration,
        seed=args.seed,
        video=VideoConfig(bitrate_mbps=args.bitrate, seed=args.seed + 1),
        telemetry=True,
        spans=True,
        faults=_load_plan(args.faults),
        fault_seed=args.fault_seed,
    )
    title = "CellFusion run report — %s, seed %d, %.0fs" % (
        args.transport, args.seed, args.duration)
    n = write_html_report(args.out, result, title=title)
    print("wrote %s (%d bytes)" % (args.out, n))
    if args.spans_out:
        count = result.telemetry.spans.export_jsonl(args.spans_out)
        print("wrote %d span records to %s" % (count, args.spans_out))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import FleetConfig, FleetReport, run_fleet

    if args.check_digest:
        saved = FleetReport.load(args.check_digest)
        config = FleetConfig.from_dict(saved.config)
        if args.shards is not None:
            config = FleetConfig.from_dict(
                dict(saved.config, shards=args.shards))
        print("re-running %d vehicles (seed %d, %d shard(s)) against %s"
              % (config.vehicles, config.seed, config.shards,
                 args.check_digest))
        fresh = run_fleet(config)
        if fresh.digest != saved.digest:
            print("DIGEST MISMATCH: saved %s..., fresh %s..."
                  % (saved.digest[:16], fresh.digest[:16]), file=sys.stderr)
            return 1
        print("digest reproduced: %s" % fresh.digest)
        return 0

    config = FleetConfig(
        vehicles=args.vehicles,
        shards=args.shards if args.shards is not None else 1,
        seed=args.seed,
        duration=args.duration,
        transport=args.transport,
        bitrate_mbps=args.bitrate,
        mode=args.mode,
        join_window=args.join_window,
        session_time=args.session_time,
        outage_pops=args.outage_pops,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        sanitize=bool(args.sanitize),
    )
    report = run_fleet(config)
    print(report.summary_table())
    if args.out:
        report.save(args.out)
        print("wrote %s" % args.out)
    if args.html:
        from .analysis.report import write_fleet_html_report

        title = "CellFusion fleet report — %d vehicles, seed %d" % (
            config.vehicles, config.seed)
        n = write_fleet_html_report(args.html, report, title=title)
        print("wrote %s (%d bytes)" % (args.html, n))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .scenarios import (
        SCENARIOS,
        catalog_rows,
        get_scenario,
        run_scenario,
        scenario_names,
    )

    if args.chaos_command == "list":
        print(format_table(
            ["scenario", "faults", "invariants", "expected QoE shape"],
            catalog_rows()))
        return 0

    if args.chaos_command == "run":
        if args.plan:
            from .scenarios import replay_artifact

            report, verdicts = replay_artifact(
                args.plan, seed=args.seed, duration=args.duration,
                transport=args.transport, sanitize=bool(args.sanitize))
            print("replayed %s: delivery %.2f%%, digest %s"
                  % (args.plan, report.delivery_ratio * 100, report.digest[:16]))
        else:
            if not args.scenario:
                print("chaos run needs a SCENARIO name or --plan FILE",
                      file=sys.stderr)
                return 2
            res = run_scenario(args.scenario, seed=args.seed or 1,
                               duration=args.duration,
                               transport=args.transport,
                               sanitize=bool(args.sanitize), smoke=args.smoke)
            verdicts = res.verdicts
            print("%s: delivery %.2f%%, digest %s"
                  % (res.scenario, res.report.delivery_ratio * 100,
                     res.digest[:16]))
            if res.extras:
                print("extras: %s" % res.extras)
        bad = [v for v in verdicts if not v.ok]
        for v in verdicts:
            print("  %-18s %s  %s" % (v.oracle, "ok " if v.ok else "FAIL",
                                      "" if v.ok else v.detail))
        return 1 if bad else 0

    if args.chaos_command == "zoo":
        names = args.scenario or list(scenario_names())
        failures = 0
        for name in names:
            res = run_scenario(name, seed=args.seed or 1, smoke=args.smoke,
                               sanitize=bool(args.sanitize))
            drift = ""
            if args.rerun:
                again = run_scenario(name, seed=args.seed or 1,
                                     smoke=args.smoke,
                                     sanitize=bool(args.sanitize))
                if again.digest != res.digest:
                    drift = "  DIGEST DRIFT"
                    failures += 1
            ok = res.passed
            if not ok:
                failures += 1
            print("%-22s %s  delivery %6.2f%%  %s%s"
                  % (name, "PASS" if ok else "FAIL",
                     res.report.delivery_ratio * 100, res.digest[:16], drift))
            for v in res.failures():
                print("    %s: %s" % (v.oracle, v.detail))
        print("%d/%d scenarios passed" % (len(names) - failures, len(names)))
        return 1 if failures else 0

    if args.chaos_command == "campaign":
        from .scenarios import run_campaign

        out = run_campaign(
            seed=args.seed or 1,
            duration=args.duration or 4.0,
            transport=args.transport or "cellfusion",
            max_examples=args.examples,
            max_events=args.max_events,
            derandomize=args.derandomize,
            kinds=args.kind or None,
            artifact_path=args.artifact,
            sanitize=bool(args.sanitize),
        )
        print("campaign: %d executions, %s"
              % (out.executions, "FAILED" if out.failed else "all oracles held"))
        if out.failed and out.minimal_plan is not None:
            print("minimal failing plan (%d event(s)):" % len(out.minimal_plan))
            for e in out.minimal_plan:
                print("  %s" % e.as_dict())
            for v in out.minimal_verdicts:
                if not v.ok:
                    print("  violated %s: %s" % (v.oracle, v.detail))
            if out.artifact_path:
                print("replay artifact: %s (repro chaos run --plan %s)"
                      % (out.artifact_path, out.artifact_path))
        return 1 if out.failed else 0

    if args.chaos_command == "diff":
        from .analysis.report import write_diff_html_report
        from .scenarios import DIFF_TRANSPORTS, run_diff

        transports = args.transports or list(DIFF_TRANSPORTS)
        matrix = run_diff(args.scenario, seed=args.seed or 1,
                          duration=args.duration, transports=transports,
                          sanitize=bool(args.sanitize), smoke=args.smoke)
        from .scenarios import ORACLE_NAMES

        grid = matrix.verdict_grid()
        rows = []
        for r in matrix.results:
            marks = ["+" if grid[r.transport][o].ok else "x"
                     for o in ORACLE_NAMES]
            rows.append([r.transport, "%.2f%%" % (r.report.delivery_ratio * 100)]
                        + marks)
        print(format_table(["transport", "delivery"] + list(ORACLE_NAMES), rows,
                           title="scenario %s, seed %d" % (matrix.scenario,
                                                           matrix.seed)))
        if args.out:
            n = write_diff_html_report(args.out, matrix)
            print("wrote %s (%d bytes)" % (args.out, n))
        return 0

    print("unknown chaos command", file=sys.stderr)
    return 2


def _cmd_lint(args: argparse.Namespace) -> int:
    # tools/ is a sibling of src/ at the repo root, deliberately outside
    # the package so the linter stays importable without repro installed
    import tools.lint as lint

    forwarded = list(args.lint_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return lint.main(forwarded)


def _cmd_bench(args: argparse.Namespace) -> int:
    # same sibling-package arrangement as the linter (see _cmd_lint)
    import tools.bench as bench

    forwarded = list(args.bench_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return bench.main(forwarded)


def _cmd_compare(args: argparse.Namespace) -> int:
    seeds = tuple(range(args.runs))
    res = figures.compare_transports(
        args.transports, duration=args.duration, seeds=seeds, bitrate_mbps=args.bitrate
    )
    rows = [
        [
            t,
            "%.2f" % res.fps[t].mean,
            "%.2f ± %.2f" % (res.stall[t].mean * 100, res.stall[t].std * 100),
            "%.3f" % res.ssim[t].mean,
            "%.2f" % (res.redundancy[t].mean * 100),
        ]
        for t in res.transports
    ]
    print(format_table(["transport", "avg FPS", "stall %", "SSIM", "redundancy %"], rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    name = args.name.lower()
    if name == "fig3":
        out = figures.fig3_single_link(duration=args.duration, seed=args.seed)
        for label, cell in out.items():
            print("%s: loss %.1f%%  P99 delay %.0f ms  FPS %.1f  stall %.1f%%  SSIM %.2f"
                  % (label, cell.loss_rate * 100, cell.delay_p99 * 1000,
                     cell.qoe.avg_fps, cell.qoe.stall_ratio * 100, cell.qoe.ssim))
    elif name == "fig8":
        out = figures.fig8_frame_timeline(duration=args.duration, seed=args.seed)
        for label, tl in out.items():
            print("%s: %d frames, %d blocky, %d lost, stall %.2f%%"
                  % (label, len(tl.statuses), tl.blocky_frames, tl.lost_frames, tl.stall_ratio * 100))
    elif name in ("fig9", "fig11", "fig12"):
        fn = {"fig9": figures.fig9_road_test, "fig11": figures.fig11_schedulers,
              "fig12": figures.fig12_pluribus}[name]
        res = fn(duration=args.duration, seeds=tuple(range(3)))
        for t in res.transports:
            print("%-12s fps %.2f  stall %.2f%%  ssim %.3f  redundancy %.2f%%"
                  % (t, res.fps[t].mean, res.stall[t].mean * 100, res.ssim[t].mean,
                     res.redundancy[t].mean * 100))
    elif name == "fig10a":
        from .analysis.plots import ascii_cdf

        res = figures.fig10a_delay_cdf(duration=args.duration, seeds=tuple(range(3)))
        for arm, pct in res.percentiles.items():
            print("%-12s " % arm + "  ".join("%s=%.1fms" % (k, v * 1000) for k, v in pct.items()))
        print()
        print(ascii_cdf(res.delays, x_label="packet delay (s)", log_x=True))
    elif name == "fig10b":
        for day, r in figures.fig10b_redundancy(days=7, duration=args.duration):
            print("day %d: %.2f%%" % (day, r * 100))
    elif name == "fig13a":
        res = figures.fig13a_qrlnc_ablation(duration=args.duration, seeds=tuple(range(3)))
        for arm, s in res.summary.items():
            print("%-12s mean %.3f%%  P99 %.3f%%" % (arm, s["mean"] * 100, s["p99"] * 100))
    elif name == "fig13b":
        res = figures.fig13b_loss_detection_ablation(duration=args.duration, seeds=tuple(range(3)))
        for arm in ("qoe-aware", "pto-only"):
            print("%-10s " % arm + "  ".join("%s=%.1fms" % (k, v * 1000) for k, v in res[arm].items()))
    else:
        print("unknown figure %r" % args.name, file=sys.stderr)
        return 2
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    cell = generate_cellular_trace(args.tech, carrier=args.carrier,
                                   duration=args.duration, seed=args.seed)
    link = cell.to_link_trace()
    print("%s: mean capacity %.1f Mbps, mean loss %.1f%%, outage %.1f%% of time"
          % (link.name, link.mean_capacity_mbps, cell.loss_prob.mean() * 100,
             cell.outage_mask.mean() * 100))
    if args.out:
        if args.out.endswith(".json"):
            save_json(link, args.out)
        else:
            save_mahimahi(link, args.out)
        print("wrote %s" % args.out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error"],
        help="logging level for the repro.* namespace",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="stream one session")
    p_run.add_argument("transport", choices=TRANSPORT_NAMES)
    _add_common(p_run)
    p_run.add_argument("--telemetry", action="store_true",
                       help="record and print packet-lifecycle telemetry")
    p_run.add_argument("--telemetry-out", metavar="FILE",
                       help="export telemetry as JSONL (implies --telemetry)")
    p_run.add_argument("--faults", metavar="PLAN.json",
                       help="arm a fault-injection plan for the session "
                            "(see docs/robustness.md for the schema)")
    p_run.add_argument("--fault-seed", type=int, default=0,
                       help="seed for fault randomness (independent of --seed)")
    p_run.add_argument("--sanitize", action="store_true",
                       help="arm the runtime protocol sanitizer (fail fast "
                            "on any invariant breach)")
    p_run.add_argument("--spans-out", metavar="FILE",
                       help="arm causal span tracing and export the span "
                            "tree as JSONL (implies --telemetry)")
    p_run.add_argument("--chrome-trace", metavar="FILE",
                       help="arm span tracing and export Chrome trace-event "
                            "JSON (load in Perfetto / chrome://tracing)")
    p_run.add_argument("--profile", action="store_true",
                       help="attach the sim-time profiler and print "
                            "per-component event-loop attribution")
    p_run.set_defaults(func=_cmd_run)

    p_rep = sub.add_parser("report", help="run one session and write the "
                                          "self-contained HTML report")
    p_rep.add_argument("transport", choices=TRANSPORT_NAMES)
    _add_common(p_rep)
    p_rep.add_argument("--out", default="report.html", metavar="FILE",
                       help="output HTML path (default report.html)")
    p_rep.add_argument("--faults", metavar="PLAN.json",
                       help="arm a fault-injection plan (windows are shaded "
                            "on the report's timelines)")
    p_rep.add_argument("--fault-seed", type=int, default=0,
                       help="seed for fault randomness (independent of --seed)")
    p_rep.add_argument("--spans-out", metavar="FILE",
                       help="additionally export the span tree as JSONL")
    p_rep.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser("compare", help="compare transports on the same traces")
    p_cmp.add_argument("transports", nargs="+", choices=TRANSPORT_NAMES)
    p_cmp.add_argument("--runs", type=int, default=3, help="number of trace seeds")
    _add_common(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_fig = sub.add_parser("figure", help="regenerate one paper figure")
    p_fig.add_argument("name", help="fig3|fig8|fig9|fig10a|fig10b|fig11|fig12|fig13a|fig13b")
    _add_common(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_tr = sub.add_parser("trace", help="synthesise and export a drive trace")
    p_tr.add_argument("--tech", default="5G", choices=["5G", "LTE", "LEO-SAT"])
    p_tr.add_argument("--carrier", type=int, default=0)
    p_tr.add_argument("--duration", type=float, default=60.0)
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--out", help="output path (.json keeps loss/delay; else mahimahi)")
    p_tr.set_defaults(func=_cmd_trace)

    p_fleet = sub.add_parser(
        "fleet", help="run a sharded N-vehicle fleet simulation")
    p_fleet.add_argument("--vehicles", type=int, default=100,
                         help="fleet size (default 100, the paper's)")
    p_fleet.add_argument("--shards", type=int, default=None,
                         help="worker processes (never affects results)")
    p_fleet.add_argument("--seed", type=int, default=0, help="fleet seed")
    p_fleet.add_argument("--duration", type=float, default=2.0,
                         help="simulated streaming seconds per vehicle")
    p_fleet.add_argument("--transport", default="cellfusion",
                         choices=TRANSPORT_NAMES)
    p_fleet.add_argument("--bitrate", type=float, default=30.0,
                         help="video bitrate in Mbps")
    from .fleet.config import VEHICLE_MODES

    p_fleet.add_argument("--mode", default="tunnel",
                         choices=list(VEHICLE_MODES),
                         help="per-vehicle fidelity: full tunnel sim or "
                              "closed-form lite draw (1k-10k scale)")
    p_fleet.add_argument("--join-window", type=float, default=600.0,
                         help="control-clock seconds joins are staggered over")
    p_fleet.add_argument("--session-time", type=float, default=300.0,
                         help="control-clock seconds each vehicle stays")
    p_fleet.add_argument("--outage-pops", type=int, default=0,
                         help="PoPs that crash mid-run (0 = none)")
    p_fleet.add_argument("--fault-rate", type=float, default=0.0,
                         help="fraction of vehicles streaming under a "
                              "seeded random fault plan")
    p_fleet.add_argument("--fault-seed", type=int, default=0)
    p_fleet.add_argument("--sanitize", action="store_true",
                         help="arm the runtime protocol sanitizer inside "
                              "every vehicle run")
    p_fleet.add_argument("--out", metavar="FILE",
                         help="write the full fleet report as JSON")
    p_fleet.add_argument("--html", metavar="FILE", default="fleet-report.html",
                         help="write the fleet HTML report "
                              "(default fleet-report.html; '' disables)")
    p_fleet.add_argument("--check-digest", metavar="REPORT.json",
                         help="re-run the saved report's config and verify "
                              "the stored digest reproduces (ignores all "
                              "other flags except --shards)")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_chaos = sub.add_parser(
        "chaos", help="scenario zoo, chaos campaigns, differential verdicts")
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True)

    def _chaos_common(p, duration_default=None):
        p.add_argument("--seed", type=int, default=1, help="soak seed")
        p.add_argument("--duration", type=float, default=duration_default,
                       help="override the scenario's run length")
        p.add_argument("--sanitize", action="store_true",
                       help="arm the runtime protocol sanitizer")
        p.add_argument("--smoke", action="store_true",
                       help="use the scenario's short smoke duration")

    c_list = chaos_sub.add_parser("list", help="print the scenario catalog")
    c_list.set_defaults(func=_cmd_chaos)

    c_run = chaos_sub.add_parser(
        "run", help="run one zoo scenario, or replay a shrunk-plan artifact")
    c_run.add_argument("scenario", nargs="?", help="zoo scenario name")
    c_run.add_argument("--plan", metavar="FILE",
                       help="replay a (shrunk) plan JSON artifact instead")
    c_run.add_argument("--transport", default=None, choices=TRANSPORT_NAMES)
    _chaos_common(c_run)
    c_run.set_defaults(func=_cmd_chaos)

    c_zoo = chaos_sub.add_parser(
        "zoo", help="run every zoo scenario and assert its oracles")
    c_zoo.add_argument("--scenario", action="append",
                       help="restrict to named scenario(s); repeatable")
    c_zoo.add_argument("--rerun", action="store_true",
                       help="run each scenario twice and demand "
                            "byte-identical digests")
    _chaos_common(c_zoo)
    c_zoo.set_defaults(func=_cmd_chaos)

    c_camp = chaos_sub.add_parser(
        "campaign", help="hypothesis-driven random-plan campaign with "
                         "failure shrinking")
    c_camp.add_argument("--examples", type=int, default=25,
                        help="generated plans per campaign")
    c_camp.add_argument("--max-events", type=int, default=6,
                        help="events per generated plan")
    c_camp.add_argument("--derandomize", action="store_true",
                        help="derive generation from the property itself "
                             "(deterministic CI mode)")
    c_camp.add_argument("--kind", action="append",
                        help="restrict generated fault kinds; repeatable")
    c_camp.add_argument("--artifact", metavar="FILE",
                        default="chaos-shrunk.json",
                        help="where to write the minimal failing plan "
                             "(default chaos-shrunk.json)")
    c_camp.add_argument("--transport", default=None, choices=TRANSPORT_NAMES)
    _chaos_common(c_camp, duration_default=4.0)
    c_camp.set_defaults(func=_cmd_chaos)

    c_diff = chaos_sub.add_parser(
        "diff", help="same scenario and seed across every transport; "
                     "HTML verdict matrix")
    c_diff.add_argument("scenario", help="zoo scenario name")
    c_diff.add_argument("--transports", nargs="+", default=None,
                        choices=TRANSPORT_NAMES,
                        help="override the 9-transport comparison set")
    c_diff.add_argument("--out", metavar="FILE", default="chaos-diff.html",
                        help="HTML verdict matrix path ('' disables)")
    _chaos_common(c_diff)
    c_diff.set_defaults(func=_cmd_chaos)

    p_lint = sub.add_parser("lint", help="run the repo protocol/determinism linter")
    p_lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to tools.lint (e.g. --json, "
                             "--rule no-wall-clock, paths)")
    p_lint.set_defaults(func=_cmd_lint)

    p_bench = sub.add_parser("bench", help="run the hot-path microbenchmarks")
    p_bench.add_argument("bench_args", nargs=argparse.REMAINDER,
                         help="arguments forwarded to tools.bench (e.g. "
                              "--smoke, --out FILE, --compare OLD.json)")
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # forward everything after "lint" verbatim — argparse REMAINDER
        # refuses to capture leading option strings like --json
        configure_logging("warning")
        import tools.lint as lint

        return lint.main(argv[1:])
    if argv and argv[0] == "bench":
        # same verbatim forwarding for the benchmark CLI
        configure_logging("warning")
        import tools.bench as bench

        return bench.main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    return args.func(args)
