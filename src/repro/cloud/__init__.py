"""CellFusion's cloud-native back-end: controller, proxies, PoPs (§6)."""

from .autoscaler import AutoscalerPolicy, ProxyAutoscaler, ScalingDecision
from .controller import AuthError, Controller, TunnelConfig
from .migration import MigrationEvent, MigrationManager, drive_with_migration
from .nat import NatError, SnatTable, TunAddressPool
from .pop import PopNode, default_pop_grid
from .proxy import ProxyServer, ProxyStats

__all__ = [
    "AutoscalerPolicy",
    "ProxyAutoscaler",
    "ScalingDecision",
    "MigrationEvent",
    "MigrationManager",
    "drive_with_migration",
    "AuthError",
    "Controller",
    "TunnelConfig",
    "NatError",
    "SnatTable",
    "TunAddressPool",
    "PopNode",
    "default_pop_grid",
    "ProxyServer",
    "ProxyStats",
]
