"""Source-NAT tables for the multi-tenant proxy (§6.2).

CellFusion applies NAT twice: once at the CPE's tun interface (every LAN
flow of a vehicle is rewritten to the vehicle's controller-allocated
private address) and once at the proxy's public interface (so return
traffic from the cloud app routes back to the proxy).  This module
implements the generic port-allocating SNAT used at both places, plus the
address-pool allocator the controller uses to hand out per-CPE tun
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "NatError",
    "SnatTable",
    "TunAddressPool",
]

FlowKey = Tuple[int, str, int]  # (proto, ip, port)


class NatError(Exception):
    """Translation failures (pool exhausted, unknown reverse mapping)."""


class SnatTable:
    """Port-translating source NAT.

    Forward: (proto, private_ip, private_port) -> public port on
    ``public_ip``.  Reverse: public port -> the original endpoint.

    With ``idle_timeout`` set, mappings carry a last-use stamp (callers
    pass ``now`` to :meth:`translate`/:meth:`reverse`) and idle entries
    are evicted — lazily when an allocation finds the pool exhausted, or
    eagerly via :meth:`expire_idle`.  Without it the table behaves as
    before: mappings live until released, which on long soak runs
    exhausts the port pool.  :meth:`flush` models a NAT rebind (the
    middlebox rebooted / the mapping state is gone), the fault the
    chaos layer injects.
    """

    def __init__(self, public_ip: str, port_base: int = 20000, port_count: int = 40000,
                 idle_timeout: Optional[float] = None):
        if port_count <= 0:
            raise ValueError("port_count must be positive")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive (or None)")
        self.public_ip = public_ip
        self.idle_timeout = idle_timeout
        self._port_base = port_base
        self._port_count = port_count
        self._next = 0
        self._forward: Dict[FlowKey, int] = {}
        self._reverse: Dict[Tuple[int, int], Tuple[str, int]] = {}
        self._last_used: Dict[FlowKey, float] = {}
        self.evictions = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._forward)

    def translate(self, proto: int, src_ip: str, src_port: int,
                  now: Optional[float] = None) -> Tuple[str, int]:
        """Map a private endpoint to (public_ip, public_port), allocating
        a port on first use.  ``now`` refreshes the idle stamp."""
        key = (proto, src_ip, src_port)
        port = self._forward.get(key)
        if port is None:
            if len(self._forward) >= self._port_count:
                if not (self.idle_timeout is not None and now is not None
                        and self.expire_idle(now)):
                    raise NatError("SNAT port pool exhausted")
            for _ in range(self._port_count):
                candidate = self._port_base + self._next
                self._next = (self._next + 1) % self._port_count
                if (proto, candidate) not in self._reverse:
                    port = candidate
                    break
            if port is None:
                raise NatError("SNAT port pool exhausted")
            self._forward[key] = port
            self._reverse[(proto, port)] = (src_ip, src_port)
        if now is not None:
            self._last_used[key] = now
        return self.public_ip, port

    def reverse(self, proto: int, public_port: int,
                now: Optional[float] = None) -> Tuple[str, int]:
        """Original endpoint for return traffic hitting ``public_port``.
        Return traffic also keeps the mapping alive when ``now`` is given."""
        try:
            src_ip, src_port = self._reverse[(proto, public_port)]
        except KeyError:
            raise NatError("no SNAT mapping for proto %d port %d" % (proto, public_port))
        if now is not None:
            self._last_used[(proto, src_ip, src_port)] = now
        return src_ip, src_port

    def release(self, proto: int, src_ip: str, src_port: int) -> None:
        key = (proto, src_ip, src_port)
        port = self._forward.pop(key, None)
        if port is not None:
            self._reverse.pop((proto, port), None)
        self._last_used.pop(key, None)

    def expire_idle(self, now: float) -> int:
        """Evict every mapping idle longer than ``idle_timeout``; returns
        the eviction count.  No-op when no timeout is configured."""
        if self.idle_timeout is None:
            return 0
        limit = self.idle_timeout
        stale = [key for key in self._forward
                 if now - self._last_used.get(key, 0.0) > limit]
        for key in stale:
            self.release(*key)
        self.evictions += len(stale)
        return len(stale)

    def flush(self) -> int:
        """Drop every mapping at once (NAT rebind); returns how many died."""
        n = len(self._forward)
        self._forward.clear()
        self._reverse.clear()
        self._last_used.clear()
        self.flushes += 1
        return n


class TunAddressPool:
    """Controller-side allocator of unique per-CPE tun addresses (§6.2)."""

    def __init__(self, prefix: str = "10.64", size: int = 65000):
        self.prefix = prefix
        self.size = size
        self._by_device: Dict[str, str] = {}
        self._used = 0

    def allocate(self, device_id: str) -> str:
        """Idempotently allocate one private address per device."""
        addr = self._by_device.get(device_id)
        if addr is not None:
            return addr
        if self._used >= self.size:
            raise NatError("tun address pool exhausted")
        idx = self._used + 2  # skip .0/.1
        self._used += 1
        addr = "%s.%d.%d" % (self.prefix, idx // 250, idx % 250)
        self._by_device[device_id] = addr
        return addr

    def lookup(self, device_id: str) -> Optional[str]:
        return self._by_device.get(device_id)

    def release(self, device_id: str) -> None:
        self._by_device.pop(device_id, None)
