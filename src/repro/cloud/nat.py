"""Source-NAT tables for the multi-tenant proxy (§6.2).

CellFusion applies NAT twice: once at the CPE's tun interface (every LAN
flow of a vehicle is rewritten to the vehicle's controller-allocated
private address) and once at the proxy's public interface (so return
traffic from the cloud app routes back to the proxy).  This module
implements the generic port-allocating SNAT used at both places, plus the
address-pool allocator the controller uses to hand out per-CPE tun
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "NatError",
    "SnatTable",
    "TunAddressPool",
]

FlowKey = Tuple[int, str, int]  # (proto, ip, port)


class NatError(Exception):
    """Translation failures (pool exhausted, unknown reverse mapping)."""


class SnatTable:
    """Port-translating source NAT.

    Forward: (proto, private_ip, private_port) -> public port on
    ``public_ip``.  Reverse: public port -> the original endpoint.
    """

    def __init__(self, public_ip: str, port_base: int = 20000, port_count: int = 40000):
        if port_count <= 0:
            raise ValueError("port_count must be positive")
        self.public_ip = public_ip
        self._port_base = port_base
        self._port_count = port_count
        self._next = 0
        self._forward: Dict[FlowKey, int] = {}
        self._reverse: Dict[Tuple[int, int], Tuple[str, int]] = {}

    def __len__(self) -> int:
        return len(self._forward)

    def translate(self, proto: int, src_ip: str, src_port: int) -> Tuple[str, int]:
        """Map a private endpoint to (public_ip, public_port), allocating
        a port on first use."""
        key = (proto, src_ip, src_port)
        port = self._forward.get(key)
        if port is None:
            if len(self._forward) >= self._port_count:
                raise NatError("SNAT port pool exhausted")
            for _ in range(self._port_count):
                candidate = self._port_base + self._next
                self._next = (self._next + 1) % self._port_count
                if (proto, candidate) not in self._reverse:
                    port = candidate
                    break
            if port is None:
                raise NatError("SNAT port pool exhausted")
            self._forward[key] = port
            self._reverse[(proto, port)] = (src_ip, src_port)
        return self.public_ip, port

    def reverse(self, proto: int, public_port: int) -> Tuple[str, int]:
        """Original endpoint for return traffic hitting ``public_port``."""
        try:
            return self._reverse[(proto, public_port)]
        except KeyError:
            raise NatError("no SNAT mapping for proto %d port %d" % (proto, public_port))

    def release(self, proto: int, src_ip: str, src_port: int) -> None:
        port = self._forward.pop((proto, src_ip, src_port), None)
        if port is not None:
            self._reverse.pop((proto, port), None)


class TunAddressPool:
    """Controller-side allocator of unique per-CPE tun addresses (§6.2)."""

    def __init__(self, prefix: str = "10.64", size: int = 65000):
        self.prefix = prefix
        self.size = size
        self._by_device: Dict[str, str] = {}
        self._used = 0

    def allocate(self, device_id: str) -> str:
        """Idempotently allocate one private address per device."""
        addr = self._by_device.get(device_id)
        if addr is not None:
            return addr
        if self._used >= self.size:
            raise NatError("tun address pool exhausted")
        idx = self._used + 2  # skip .0/.1
        self._used += 1
        addr = "%s.%d.%d" % (self.prefix, idx // 250, idx % 250)
        self._by_device[device_id] = addr
        return addr

    def lookup(self, device_id: str) -> Optional[str]:
        return self._by_device.get(device_id)

    def release(self, device_id: str) -> None:
        self._by_device.pop(device_id, None)
