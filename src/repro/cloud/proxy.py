"""The multi-tenant edge proxy (tunnel-server host, §6.2).

One proxy container serves many vehicles.  Uplink: a QUIC connection
(identified by CID) delivers decoded IP packets whose source address is
the CPE's controller-allocated tun address; the proxy learns the
address<->CID mapping, applies Source-NAT at its public interface, and
forwards toward the cloud app.  Downlink: return traffic hits the public
address, the SNAT reverse mapping restores the tenant address, the
address->CID table picks the right QUIC connection, and the packet rides
the tunnel back to the vehicle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..netstack.ip import IpError, Ipv4Packet, PROTO_UDP, UDP_HEADER, UDP_HEADER_SIZE
from .nat import NatError, SnatTable
from .pop import PopNode

__all__ = [
    "ProxyStats",
    "ProxyServer",
]


@dataclass
class ProxyStats:
    uplink_packets: int = 0
    downlink_packets: int = 0
    forwarded_bytes: int = 0
    unknown_tenant_drops: int = 0
    nat_errors: int = 0
    parse_errors: int = 0

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


class ProxyServer:
    """One CellFusion proxy container at a CDN PoP."""

    def __init__(
        self,
        pop: PopNode,
        public_ip: str,
        forward_to_cloud: Optional[Callable[[bytes], None]] = None,
        send_to_vehicle: Optional[Callable[[int, bytes], None]] = None,
    ):
        self.pop = pop
        self.public_ip = public_ip
        self.forward_to_cloud = forward_to_cloud
        self.send_to_vehicle = send_to_vehicle
        self.snat = SnatTable(public_ip)
        #: tenant tun address -> QUIC connection id (§6.2 mapping table)
        self._cid_by_address: Dict[str, int] = {}
        self._address_by_cid: Dict[int, str] = {}
        self.stats = ProxyStats()

    @property
    def tenant_count(self) -> int:
        return len(self._cid_by_address)

    def register_tenant(self, tun_address: str, cid: int) -> None:
        """Bind a CPE's allocated address to its QUIC connection."""
        old = self._address_by_cid.pop(cid, None)
        if old is not None:
            self._cid_by_address.pop(old, None)
        self._cid_by_address[tun_address] = cid
        self._address_by_cid[cid] = tun_address

    def remove_tenant(self, cid: int) -> None:
        addr = self._address_by_cid.pop(cid, None)
        if addr is not None:
            self._cid_by_address.pop(addr, None)

    # -- uplink: vehicle -> cloud -------------------------------------------------

    def process_uplink(self, cid: int, ip_bytes: bytes) -> Optional[bytes]:
        """Decapsulated tunnel packet from a vehicle: learn, SNAT, forward."""
        try:
            packet = Ipv4Packet.decode(ip_bytes)
        except IpError:
            self.stats.parse_errors += 1
            return None
        # learn (or re-learn after CID rotation) the address<->CID binding
        known = self._address_by_cid.get(cid)
        if known != packet.src:
            self.register_tenant(packet.src, cid)
        translated = self._snat_outbound(packet)
        if translated is None:
            return None
        self.stats.uplink_packets += 1
        self.stats.forwarded_bytes += len(translated)
        if self.forward_to_cloud is not None:
            self.forward_to_cloud(translated)
        return translated

    def _snat_outbound(self, packet: Ipv4Packet) -> Optional[bytes]:
        if packet.proto != PROTO_UDP or len(packet.payload) < UDP_HEADER_SIZE:
            # non-UDP passenger protocols are forwarded with address-only
            # NAT (no port rewrite) — enough for the simulation's traffic
            rewritten = Ipv4Packet(
                src=self.public_ip, dst=packet.dst, proto=packet.proto,
                payload=packet.payload, identification=packet.identification, ttl=packet.ttl - 1,
            )
            return rewritten.encode()
        sport, dport, length, _csum = UDP_HEADER.unpack_from(packet.payload)
        try:
            pub_ip, pub_port = self.snat.translate(PROTO_UDP, packet.src, sport)
        except NatError:
            self.stats.nat_errors += 1
            return None
        udp = UDP_HEADER.pack(pub_port, dport, length, 0) + packet.payload[UDP_HEADER_SIZE:]
        rewritten = Ipv4Packet(
            src=pub_ip, dst=packet.dst, proto=PROTO_UDP, payload=udp,
            identification=packet.identification, ttl=packet.ttl - 1,
        )
        return rewritten.encode()

    # -- downlink: cloud -> vehicle ---------------------------------------------------

    def process_return(self, ip_bytes: bytes) -> Optional[Tuple[int, bytes]]:
        """Return traffic at the public interface: un-NAT, find CID, send."""
        try:
            packet = Ipv4Packet.decode(ip_bytes)
        except IpError:
            self.stats.parse_errors += 1
            return None
        if packet.dst != self.public_ip:
            self.stats.unknown_tenant_drops += 1
            return None
        if packet.proto != PROTO_UDP or len(packet.payload) < UDP_HEADER_SIZE:
            self.stats.unknown_tenant_drops += 1
            return None
        sport, dport, length, _csum = UDP_HEADER.unpack_from(packet.payload)
        try:
            tenant_ip, tenant_port = self.snat.reverse(PROTO_UDP, dport)
        except NatError:
            self.stats.nat_errors += 1
            return None
        cid = self._cid_by_address.get(tenant_ip)
        if cid is None:
            self.stats.unknown_tenant_drops += 1
            return None
        udp = UDP_HEADER.pack(sport, tenant_port, length, 0) + packet.payload[UDP_HEADER_SIZE:]
        restored = Ipv4Packet(
            src=packet.src, dst=tenant_ip, proto=PROTO_UDP, payload=udp,
            identification=packet.identification, ttl=packet.ttl - 1,
        ).encode()
        self.stats.downlink_packets += 1
        if self.send_to_vehicle is not None:
            self.send_to_vehicle(cid, restored)
        return cid, restored
