"""The CellFusion controller: control and management plane (§6.1).

Five responsibilities, per the paper: (1) CPE authentication, (2)
configuration management for CPEs and proxies, (3) high availability —
monitoring proxy health and failing over, (4) orchestration — pointing a
CPE at candidate servers by availability and load (the CPE then measures
delay and picks the minimum), and (§6.2) allocating each CPE its unique
private tun address for the double-NAT scheme.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .nat import TunAddressPool
from .pop import PopNode

__all__ = [
    "HEARTBEAT_TIMEOUT",
    "AuthError",
    "TunnelConfig",
    "Controller",
]

#: A proxy missing heartbeats for this long is considered down.
HEARTBEAT_TIMEOUT = 10.0


class AuthError(Exception):
    """Device authentication failure."""


@dataclass
class TunnelConfig:
    """Parameters a CPE and its proxy need before the tunnel comes up.

    Mirrors the knobs of §4.4/§4.5 plus the §6.2 address allocation.
    """

    device_id: str
    tun_address: str
    range_max_packets: int = 10
    range_max_span: float = 0.060
    t_expire: float = 0.700
    app_loss_threshold: float = 0.120
    rho: float = 1.1
    extra_coded_packets: int = 3
    congestion_controller: str = "bbr"
    scheduler: str = "minRTT"


@dataclass
class DeviceRecord:
    device_id: str
    secret: bytes
    revoked: bool = False
    assigned_pop: Optional[str] = None


class Controller:
    """Central-cloud control plane."""

    def __init__(self, secret_key: bytes = b"cellfusion-controller"):
        self._key = secret_key
        self._devices: Dict[str, DeviceRecord] = {}
        self._pops: Dict[str, PopNode] = {}
        self._addresses = TunAddressPool()
        self.failovers = 0

    # -- device lifecycle ------------------------------------------------------

    def register_device(self, device_id: str) -> str:
        """Provision a CPE; returns its auth token (kept on the device)."""
        if device_id in self._devices and not self._devices[device_id].revoked:
            raise ValueError("device %s already registered" % device_id)
        secret = hmac.new(self._key, device_id.encode(), hashlib.sha256).digest()
        self._devices[device_id] = DeviceRecord(device_id, secret)
        return secret.hex()

    def revoke_device(self, device_id: str) -> None:
        record = self._devices.get(device_id)
        if record is not None:
            record.revoked = True
            self._addresses.release(device_id)

    def authenticate(self, device_id: str, token: str) -> bool:
        """Only legal users may access the service (§6.1 function 1)."""
        record = self._devices.get(device_id)
        if record is None or record.revoked:
            return False
        try:
            presented = bytes.fromhex(token)
        except ValueError:
            return False
        return hmac.compare_digest(record.secret, presented)

    # -- configuration ---------------------------------------------------------

    def get_config(self, device_id: str, token: str) -> TunnelConfig:
        """Hand a CPE its tunnel configuration (§6.1 function 2)."""
        if not self.authenticate(device_id, token):
            raise AuthError("authentication failed for %s" % device_id)
        return TunnelConfig(device_id=device_id, tun_address=self._addresses.allocate(device_id))

    # -- proxy fleet / health ----------------------------------------------------

    def register_pop(self, pop: PopNode) -> None:
        self._pops[pop.pop_id] = pop

    def pops(self) -> List[PopNode]:
        return list(self._pops.values())

    def heartbeat(self, pop_id: str, active_sessions: int, now: float) -> None:
        pop = self._pops.get(pop_id)
        if pop is None:
            return
        pop.active_sessions = active_sessions
        pop.last_heartbeat = now
        pop.healthy = True

    def check_health(self, now: float) -> List[str]:
        """Mark PoPs with stale heartbeats unhealthy (§6.1 function 3)."""
        failed = []
        for pop in self._pops.values():
            if pop.healthy and now - pop.last_heartbeat > HEARTBEAT_TIMEOUT:
                pop.healthy = False
                failed.append(pop.pop_id)
        return failed

    def drain(self, pop_id: str) -> None:
        """Stop placing new vehicles on a PoP (existing sessions stay)."""
        pop = self._pops.get(pop_id)
        if pop is not None:
            pop.draining = True

    def undrain(self, pop_id: str) -> None:
        pop = self._pops.get(pop_id)
        if pop is not None:
            pop.draining = False

    # -- orchestration -------------------------------------------------------------

    def candidate_proxies(
        self, device_id: str, token: str, count: int = 3
    ) -> List[PopNode]:
        """Healthy, least-loaded PoPs for the CPE to probe (§6.1 func. 4).

        The CPE measures network delay to each candidate and connects to
        the minimum-delay one.
        """
        if not self.authenticate(device_id, token):
            raise AuthError("authentication failed for %s" % device_id)
        healthy = [p for p in self._pops.values() if p.has_capacity]
        healthy.sort(key=lambda p: (p.load, p.pop_id))
        return healthy[:count]

    def assign(self, device_id: str, pop_id: str) -> None:
        """Record the CPE's chosen PoP and count the session."""
        record = self._devices.get(device_id)
        pop = self._pops.get(pop_id)
        if record is None or pop is None:
            raise ValueError("unknown device or pop")
        if record.assigned_pop == pop_id:
            return
        if record.assigned_pop is not None:
            previous = self._pops.get(record.assigned_pop)
            if previous is not None:
                previous.release()
            self.failovers += 1
        pop.admit()
        record.assigned_pop = pop_id

    def assigned_pop(self, device_id: str) -> Optional[str]:
        record = self._devices.get(device_id)
        return record.assigned_pop if record else None

    def place(
        self,
        device_id: str,
        token: str,
        location: Tuple[float, float],
        rng=None,
        count: int = 3,
    ) -> Optional[PopNode]:
        """Orchestrate one CPE end to end: candidates -> delay -> assign.

        Models the paper's two-step placement (§6.1): the controller
        offers the ``count`` healthy least-loaded PoPs, the CPE measures
        access delay to each and connects to the minimum.  Exact delay
        ties (co-located PoPs on the grid) are broken by drawing from
        ``rng`` — pass a per-vehicle seeded generator
        (``seeded_rng(fleet_seed, "vehicle-place", vid)``) and placement
        is a pure function of the vehicle, independent of fleet
        iteration or shard order.  Without ``rng`` ties fall back to
        lexicographic ``pop_id``.  Returns the chosen PoP (assigned and
        admitted), or ``None`` when no candidate has capacity.
        """
        candidates = self.candidate_proxies(device_id, token, count)
        if not candidates:
            return None
        best_delay = min(p.access_delay(location) for p in candidates)
        tied = [p for p in candidates
                if p.access_delay(location) == best_delay]
        tied.sort(key=lambda p: p.pop_id)
        choice = tied[rng.randrange(len(tied))] if (rng is not None
                                                    and len(tied) > 1) else tied[0]
        self.assign(device_id, choice.pop_id)
        return choice

    def failover(self, device_id: str, token: str, now: float) -> Optional[PopNode]:
        """Re-orchestrate a CPE whose PoP went unhealthy."""
        self.check_health(now)
        current = self.assigned_pop(device_id)
        if current is not None and self._pops.get(current) is not None and self._pops[current].healthy:
            return self._pops[current]
        candidates = self.candidate_proxies(device_id, token)
        if not candidates:
            return None
        choice = candidates[0]
        self.assign(device_id, choice.pop_id)
        return choice
