"""Server migration (§10, future work).

The paper notes a limitation: once a CPE picks an edge proxy the server
stays fixed, but a vehicle that covers a large area eventually wants to
migrate to a closer PoP (RFC 9000 doesn't allow server migration, though
extensions can).  This module implements the controller-orchestrated
migration the discussion sketches:

* the CPE periodically reports its position-implied access delay to the
  candidate PoPs;
* when a better PoP has beaten the current one by ``improvement_ms`` for
  ``hold_s`` seconds (hysteresis against flapping), the controller
  orchestrates a make-before-break switch: the new tunnel is established
  while the old one still carries traffic, then traffic flips over;
* the brief switch-over gap is modelled explicitly so experiments can
  quantify the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .controller import Controller
from .pop import PopNode

__all__ = [
    "DEFAULT_HOLD",
    "SWITCHOVER_GAP",
    "MigrationManager",
    "drive_with_migration",
]

#: Default hysteresis: the candidate must be 1.5 ms closer for 5 s.  At
#: ~5 us of fibre delay per km, 1.5 ms corresponds to moving ~300 km
#: closer to another PoP — a genuine region change, not jitter.
DEFAULT_IMPROVEMENT = 0.0015
DEFAULT_HOLD = 5.0
#: Make-before-break switch-over gap (new-path handshake already done;
#: this is the route-flip interval during which packets may reorder).
SWITCHOVER_GAP = 0.050


@dataclass
class MigrationEvent:
    """One completed migration."""

    time: float
    from_pop: str
    to_pop: str
    improvement: float
    gap: float


class MigrationManager:
    """Tracks one vehicle's proxy assignment and migrates it when a
    consistently-closer PoP exists."""

    def __init__(
        self,
        controller: Controller,
        device_id: str,
        token: str,
        improvement: float = DEFAULT_IMPROVEMENT,
        hold: float = DEFAULT_HOLD,
        candidates: int = 5,
    ):
        if improvement <= 0 or hold <= 0:
            raise ValueError("improvement and hold must be positive")
        self.controller = controller
        self.device_id = device_id
        self.token = token
        self.improvement = improvement
        self.hold = hold
        self.candidates = candidates
        self.events: List[MigrationEvent] = []
        self._better_since: Optional[float] = None
        self._better_pop: Optional[str] = None

    @property
    def current_pop(self) -> Optional[str]:
        return self.controller.assigned_pop(self.device_id)

    def observe(self, vehicle_location: Tuple[float, float], now: float) -> Optional[MigrationEvent]:
        """Feed one position sample; returns a MigrationEvent when the
        hysteresis condition fires and migration executes."""
        current_id = self.current_pop
        if current_id is None:
            return None
        pops = {p.pop_id: p for p in self.controller.pops()}
        current = pops.get(current_id)
        if current is None:
            return None
        current_delay = current.access_delay(vehicle_location)

        candidates = self.controller.candidate_proxies(self.device_id, self.token, self.candidates)
        best = None
        best_delay = current_delay
        for pop in candidates:
            if pop.pop_id == current_id:
                continue
            d = pop.access_delay(vehicle_location)
            if d < best_delay - self.improvement:
                if best is None or d < best_delay:
                    best = pop
                    best_delay = d
        if best is None:
            self._better_since = None
            self._better_pop = None
            return None
        # hysteresis: the same candidate must stay better for `hold`
        if self._better_pop != best.pop_id:
            self._better_pop = best.pop_id
            self._better_since = now
            return None
        if now - self._better_since < self.hold:
            return None
        # migrate: make-before-break via the controller
        self.controller.assign(self.device_id, best.pop_id)
        event = MigrationEvent(
            time=now,
            from_pop=current_id,
            to_pop=best.pop_id,
            improvement=current_delay - best_delay,
            gap=SWITCHOVER_GAP,
        )
        self.events.append(event)
        self._better_since = None
        self._better_pop = None
        return event


def drive_with_migration(
    controller: Controller,
    device_id: str,
    token: str,
    route: List[Tuple[float, float]],
    sample_interval: float = 1.0,
    manager: Optional[MigrationManager] = None,
) -> List[MigrationEvent]:
    """Replay a route through the migration manager; returns its events.

    ``route`` is a list of (x, y) km positions sampled every
    ``sample_interval`` seconds.
    """
    mgr = manager or MigrationManager(controller, device_id, token)
    events = []
    for i, pos in enumerate(route):
        ev = mgr.observe(pos, now=i * sample_interval)
        if ev is not None:
            events.append(ev)
    return events
