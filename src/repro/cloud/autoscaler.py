"""Proxy container autoscaling (§6.1).

"Containerization makes it easy to autoscale these proxy servers to meet
the change in demand."  This module implements that control loop: each
PoP runs some number of proxy containers, each serving up to
``sessions_per_container`` vehicles; the autoscaler scales the container
count toward a target utilisation with hysteresis and per-step rate
limits (the standard HPA shape), never dropping below one container per
healthy PoP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .pop import PopNode

__all__ = [
    "AutoscalerPolicy",
    "ProxyAutoscaler",
]


@dataclass
class AutoscalerPolicy:
    """Horizontal scaling policy for proxy containers at one PoP."""

    sessions_per_container: int = 25
    target_utilisation: float = 0.70
    scale_up_threshold: float = 0.85
    scale_down_threshold: float = 0.40
    min_containers: int = 1
    max_containers: int = 40
    max_step: int = 4
    cooldown: float = 30.0

    def __post_init__(self):
        if not 0 < self.scale_down_threshold < self.target_utilisation < self.scale_up_threshold <= 1.0:
            raise ValueError("thresholds must satisfy down < target < up <= 1")
        if self.min_containers < 1 or self.max_containers < self.min_containers:
            raise ValueError("bad container bounds")
        if self.sessions_per_container < 1:
            raise ValueError("sessions_per_container must be >= 1")


@dataclass
class ScalingDecision:
    """One autoscaling action at one PoP."""

    time: float
    pop_id: str
    from_containers: int
    to_containers: int
    utilisation: float

    @property
    def direction(self) -> str:
        if self.to_containers > self.from_containers:
            return "up"
        if self.to_containers < self.from_containers:
            return "down"
        return "none"


class ProxyAutoscaler:
    """Scales proxy containers per PoP toward the target utilisation."""

    def __init__(self, policy: Optional[AutoscalerPolicy] = None):
        self.policy = policy or AutoscalerPolicy()
        self._containers: Dict[str, int] = {}
        self._last_scaled: Dict[str, float] = {}
        self.decisions: List[ScalingDecision] = []

    def containers(self, pop_id: str) -> int:
        return self._containers.get(pop_id, self.policy.min_containers)

    def capacity(self, pop_id: str) -> int:
        """Sessions the PoP's current containers can hold."""
        return self.containers(pop_id) * self.policy.sessions_per_container

    def utilisation(self, pop: PopNode) -> float:
        cap = self.capacity(pop.pop_id)
        return pop.active_sessions / cap if cap else math.inf

    def _desired(self, pop: PopNode) -> int:
        """Containers needed to sit at the target utilisation."""
        wanted = pop.active_sessions / (
            self.policy.sessions_per_container * self.policy.target_utilisation
        )
        return max(self.policy.min_containers, min(self.policy.max_containers, math.ceil(wanted)))

    def evaluate(self, pop: PopNode, now: float) -> Optional[ScalingDecision]:
        """One control-loop tick for one PoP; returns the action, if any."""
        pop_id = pop.pop_id
        current = self.containers(pop_id)
        util = self.utilisation(pop)
        last = self._last_scaled.get(pop_id, -math.inf)
        if now - last < self.policy.cooldown:
            return None
        if self.policy.scale_down_threshold <= util <= self.policy.scale_up_threshold:
            return None
        desired = self._desired(pop)
        if desired == current:
            return None
        # rate-limit the step
        step = max(-self.policy.max_step, min(self.policy.max_step, desired - current))
        target = current + step
        self._containers[pop_id] = target
        self._last_scaled[pop_id] = now
        decision = ScalingDecision(now, pop_id, current, target, util)
        self.decisions.append(decision)
        # containers determine what the PoP can admit
        pop.capacity_sessions = target * self.policy.sessions_per_container
        return decision

    def evaluate_fleet(self, pops: List[PopNode], now: float) -> List[ScalingDecision]:
        """Tick every PoP; returns the actions taken."""
        out = []
        for pop in pops:
            decision = self.evaluate(pop, now)
            if decision is not None:
                out.append(decision)
        return out

    def total_containers(self) -> int:
        return sum(self._containers.values()) if self._containers else 0
