"""CDN Point-of-Presence model (§6, §7).

CellFusion's back-end ran proxy containers on 50 CDN PoPs across three
states.  A :class:`PopNode` captures what the control plane cares about:
location (for access delay), capacity, current load, and health.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "PopNode",
    "default_pop_grid",
]

#: Rough propagation constant: one-way delay grows ~5 us per km of fibre
#: plus a fixed last-mile constant.
FIBRE_DELAY_PER_KM = 5e-6
LAST_MILE_DELAY = 0.008


@dataclass
class PopNode:
    """One CDN PoP hosting CellFusion proxy containers."""

    pop_id: str
    region: str
    location: Tuple[float, float]  # km coordinates on a flat map
    capacity_sessions: int = 200
    active_sessions: int = 0
    healthy: bool = True
    #: Administratively draining: existing sessions keep running but the
    #: controller must never place a *new* vehicle here (maintenance /
    #: pre-outage evacuation via :mod:`repro.cloud.migration`).
    draining: bool = False
    last_heartbeat: float = 0.0

    def __post_init__(self):
        if self.capacity_sessions <= 0:
            raise ValueError("capacity must be positive")

    @property
    def load(self) -> float:
        """Utilisation in [0, 1+] (can exceed 1 when over-subscribed)."""
        return self.active_sessions / self.capacity_sessions

    @property
    def has_capacity(self) -> bool:
        return (self.healthy and not self.draining
                and self.active_sessions < self.capacity_sessions)

    def distance_km(self, point: Tuple[float, float]) -> float:
        dx = self.location[0] - point[0]
        dy = self.location[1] - point[1]
        return math.hypot(dx, dy)

    def access_delay(self, vehicle_location: Tuple[float, float]) -> float:
        """Modelled one-way network delay from a vehicle to this PoP."""
        return LAST_MILE_DELAY + self.distance_km(vehicle_location) * FIBRE_DELAY_PER_KM

    def admit(self) -> None:
        self.active_sessions += 1

    def release(self) -> None:
        self.active_sessions = max(0, self.active_sessions - 1)


def default_pop_grid(per_region: int = 17, regions: Tuple[str, ...] = ("state-A", "state-B", "state-C")) -> list:
    """A ~50-PoP deployment across three states (the paper's footprint)."""
    pops = []
    for r, region in enumerate(regions):
        for i in range(per_region):
            pops.append(
                PopNode(
                    pop_id="%s-pop%02d" % (region, i),
                    region=region,
                    location=(r * 400.0 + (i % 5) * 60.0, (i // 5) * 60.0),
                )
            )
    return pops
