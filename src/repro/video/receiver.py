"""Stream receiver: reassembles frames and records delivery telemetry.

The cloud-side analogue of the modified ffmpeg receiver of Appendix C: it
logs, per frame, how many packets arrived and when the frame completed,
and per packet the one-way delay.  The QoE analyser consumes these
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import NULL_TELEMETRY
from .source import VideoPacket, VideoPacketError

__all__ = [
    "FrameRecord",
    "VideoReceiver",
]


@dataclass
class FrameRecord:
    """Reception state of one video frame."""

    frame_id: int
    capture_ts: float
    keyframe: bool
    expected_packets: int
    received_packets: int = 0
    complete_time: Optional[float] = None
    first_packet_time: Optional[float] = None
    _seen: set = field(default_factory=set, repr=False)

    @property
    def complete(self) -> bool:
        return self.complete_time is not None

    @property
    def received_fraction(self) -> float:
        if self.expected_packets == 0:
            return 0.0
        return self.received_packets / self.expected_packets


class VideoReceiver:
    """Collects frames and packet delays from tunnel deliveries."""

    def __init__(self, telemetry=None):
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.frames: Dict[int, FrameRecord] = {}
        self.packet_delays: List[float] = []
        self.packets_received = 0
        self.duplicate_packets = 0
        self.parse_errors = 0

    def on_app_packet(self, packet_id: int, payload: bytes, now: float) -> None:
        """Tunnel delivery callback (packet_id is the tunnel's app id)."""
        try:
            pkt = VideoPacket.parse(payload)
        except VideoPacketError:
            self.parse_errors += 1
            return
        record = self.frames.get(pkt.frame_id)
        if record is None:
            record = FrameRecord(
                frame_id=pkt.frame_id,
                capture_ts=pkt.capture_ts,
                keyframe=pkt.keyframe,
                expected_packets=pkt.count,
            )
            self.frames[pkt.frame_id] = record
        if pkt.seq in record._seen:
            self.duplicate_packets += 1
            return
        record._seen.add(pkt.seq)
        record.received_packets += 1
        self.packets_received += 1
        self.packet_delays.append(now - pkt.capture_ts)
        if record.first_packet_time is None:
            record.first_packet_time = now
        completed = (record.received_packets >= record.expected_packets
                     and record.complete_time is None)
        if completed:
            record.complete_time = now
        tel = self.telemetry
        if tel.enabled:
            sp = tel.spans
            if sp.enabled:
                sp.close(sp.lookup("packet", packet_id), now,
                         outcome="delivered")
                if completed:
                    sp.close(sp.lookup("frame", pkt.frame_id), now,
                             outcome="complete")

    def frame_records(self, total_frames: Optional[int] = None) -> List[FrameRecord]:
        """All frames in order; frames never seen at all appear as empty
        records when ``total_frames`` is given."""
        if total_frames is None:
            ids = sorted(self.frames)
        else:
            ids = range(total_frames)
        out = []
        for fid in ids:
            record = self.frames.get(fid)
            if record is None:
                record = FrameRecord(fid, 0.0, False, 0)  # lint: hot-ok(end-of-run report assembly, once per frame after the stream closes)
            out.append(record)
        return out
