"""Video workload: synthetic source, receiver, QoE analysis (Appx. C)."""

from .playout import PlayoutPolicy, PlayoutReport, minimum_clean_playout_delay, simulate_playout
from .qoe import QoeReport, STALL_THRESHOLD, analyze_qoe
from .receiver import FrameRecord, VideoReceiver
from .rtp import RtpPacket, RtpPacketizer, sniff_frame_border, sniff_frame_id
from .source import VideoConfig, VideoPacket, VideoSource, build_packet

__all__ = [
    "PlayoutPolicy",
    "PlayoutReport",
    "minimum_clean_playout_delay",
    "simulate_playout",
    "QoeReport",
    "STALL_THRESHOLD",
    "analyze_qoe",
    "FrameRecord",
    "RtpPacket",
    "RtpPacketizer",
    "sniff_frame_border",
    "sniff_frame_id",
    "VideoReceiver",
    "VideoConfig",
    "VideoPacket",
    "VideoSource",
    "build_packet",
]
