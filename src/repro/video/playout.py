"""Playout-buffer simulation over reception records.

The QoE analyser (Appendix C) computes the paper's metrics directly from
frame-completion times.  A live *viewer*, though, sits behind a playout
buffer: frames are displayed on a fixed schedule ``capture + playout_delay``;
a frame that hasn't completed by its slot either freezes the screen
(buffer underrun) or, past a skip threshold, is skipped to re-sync.

This module post-processes the same :class:`FrameRecord` stream under an
explicit playout policy — useful for questions the paper's tooling
doesn't ask, like "what's the smallest playout delay at which this drive
plays cleanly?"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .receiver import FrameRecord

__all__ = [
    "PlayoutPolicy",
    "simulate_playout",
    "minimum_clean_playout_delay",
]


@dataclass
class PlayoutPolicy:
    """Fixed-delay playout with freeze-then-skip semantics."""

    playout_delay: float = 0.150
    #: freeze at most this long waiting for a late frame, then skip it
    skip_after: float = 0.500

    def __post_init__(self):
        if self.playout_delay < 0 or self.skip_after < 0:
            raise ValueError("delays must be non-negative")


@dataclass
class PlayoutEvent:
    """What happened to one frame at the screen."""

    frame_id: int
    scheduled: float
    displayed: Optional[float]  # None = skipped
    freeze_before: float = 0.0

    @property
    def on_time(self) -> bool:
        return self.displayed is not None and self.freeze_before == 0.0


@dataclass
class PlayoutReport:
    """Viewer-side outcome of one session under a playout policy."""

    events: List[PlayoutEvent]
    policy: PlayoutPolicy

    @property
    def displayed_frames(self) -> int:
        return sum(1 for e in self.events if e.displayed is not None)

    @property
    def skipped_frames(self) -> int:
        return sum(1 for e in self.events if e.displayed is None)

    @property
    def total_freeze_time(self) -> float:
        return sum(e.freeze_before for e in self.events)

    @property
    def on_time_fraction(self) -> float:
        if not self.events:
            return 0.0
        return sum(1 for e in self.events if e.on_time) / len(self.events)


def simulate_playout(
    frames: Sequence[FrameRecord], policy: Optional[PlayoutPolicy] = None,
    telemetry=None,
) -> PlayoutReport:
    """Run the playout clock over reception records.

    Frames are taken in ID order; frame i's slot is
    ``capture_ts + playout_delay`` (shifted later by accumulated freezes,
    as a real player's clock would be).

    When ``telemetry`` (with span recording enabled) is given, each
    frame's screen outcome is appended to the causal span tree as a
    root-level ``playout`` span — slot time to display (or the skip
    window), ``cause`` pointing at the frame span — completing the
    capture-to-display causal chain the report's waterfall draws.
    """
    policy = policy or PlayoutPolicy()
    spans = None
    if telemetry is not None and telemetry.enabled and telemetry.spans.enabled:
        spans = telemetry.spans
    events: List[PlayoutEvent] = []
    clock_shift = 0.0
    for record in frames:
        scheduled = record.capture_ts + policy.playout_delay + clock_shift
        ready = record.complete_time
        if record.expected_packets == 0:
            ready = None  # never seen at all
        if ready is None:
            # wait out the skip window, then drop the frame
            events.append(
                PlayoutEvent(record.frame_id, scheduled, None, freeze_before=policy.skip_after)
            )
            clock_shift += policy.skip_after
            continue
        if ready <= scheduled:
            events.append(PlayoutEvent(record.frame_id, scheduled, scheduled))
            continue
        lateness = ready - scheduled
        if lateness <= policy.skip_after:
            events.append(
                PlayoutEvent(record.frame_id, scheduled, ready, freeze_before=lateness)
            )
            clock_shift += lateness
        else:
            events.append(
                PlayoutEvent(record.frame_id, scheduled, None, freeze_before=policy.skip_after)
            )
            clock_shift += policy.skip_after
    if spans is not None:
        for e in events:
            sid = spans.open(
                "playout", e.scheduled,
                frame=e.frame_id, cause=spans.lookup("frame", e.frame_id),
                freeze=e.freeze_before,
                outcome=("displayed" if e.displayed is not None else "skipped"),
            )
            spans.close(sid, e.displayed if e.displayed is not None
                        else e.scheduled + policy.skip_after)
    return PlayoutReport(events=events, policy=policy)


def minimum_clean_playout_delay(
    frames: Sequence[FrameRecord],
    candidates: Sequence[float] = (0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0),
    max_freeze: float = 0.0,
    max_skip_fraction: float = 0.01,
) -> Optional[float]:
    """Smallest candidate delay at which the session plays "cleanly".

    Clean = total freeze time <= ``max_freeze`` and skipped frames <=
    ``max_skip_fraction`` of the stream.  Returns None if no candidate
    qualifies — the drive was too rough for the offered buffer depths.
    """
    for delay in sorted(candidates):
        report = simulate_playout(frames, PlayoutPolicy(playout_delay=delay))
        if not report.events:
            return None
        skip_frac = report.skipped_frames / len(report.events)
        if report.total_freeze_time <= max_freeze and skip_frac <= max_skip_fraction:
            return delay
    return None
