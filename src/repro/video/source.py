"""Synthetic real-time video source (the ffmpeg/RTSP stand-in, §8).

Generates a 30 fps stream at a target bitrate with a GoP structure —
periodic keyframes several times larger than P-frames and lognormal-ish
size variation — then packetises each frame into fixed-size datagrams
carrying a small header (frame id, sequence-within-frame, packet count,
capture timestamp, keyframe flag).  The header is what the paper's
reference video encodes visually as frame-ID stamps (Appx. C); carrying it
in-band lets the receiver compute the same QoE metrics.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..determinism import seeded_rng
from ..emulation.events import EventLoop, PeriodicTimer
from ..obs import NULL_TELEMETRY

__all__ = [
    "PACKET_HEADER",
    "VideoPacketError",
    "VideoPacket",
    "build_packet",
    "VideoConfig",
    "VideoSource",
]

#: Packet header: magic(2) frame_id(u32) seq(u16) count(u16) flags(u8)
#: capture_ts(f64) -> 19 bytes.
PACKET_HEADER = struct.Struct("!HIHHBd")
HEADER_MAGIC = 0xCF01
FLAG_KEYFRAME = 0x01

#: Default payload size: fits the 1440-byte tun MTU with tunnel overheads.
DEFAULT_PACKET_PAYLOAD = 1200


class VideoPacketError(Exception):
    """Malformed video packet payload."""


@dataclass(frozen=True)
class VideoPacket:
    """One packetised slice of a video frame."""

    frame_id: int
    seq: int
    count: int
    keyframe: bool
    capture_ts: float
    payload: bytes

    @classmethod
    def parse(cls, data: bytes) -> "VideoPacket":
        if len(data) < PACKET_HEADER.size:
            raise VideoPacketError("short video packet")
        magic, frame_id, seq, count, flags, ts = PACKET_HEADER.unpack_from(data)
        if magic != HEADER_MAGIC:
            raise VideoPacketError("bad magic 0x%04x" % magic)
        return cls(frame_id, seq, count, bool(flags & FLAG_KEYFRAME), ts, data)


def build_packet(
    frame_id: int, seq: int, count: int, keyframe: bool, capture_ts: float, size: int
) -> bytes:
    """Serialise one video packet of exactly ``size`` bytes."""
    if size < PACKET_HEADER.size:
        raise ValueError("size smaller than header")
    header = PACKET_HEADER.pack(
        HEADER_MAGIC, frame_id, seq, count, FLAG_KEYFRAME if keyframe else 0, capture_ts
    )
    return header + bytes(size - PACKET_HEADER.size)


@dataclass
class VideoConfig:
    """Encoder model parameters."""

    bitrate_mbps: float = 30.0
    fps: float = 30.0
    gop: int = 30
    keyframe_scale: float = 3.0
    size_jitter: float = 0.15
    packet_payload: int = DEFAULT_PACKET_PAYLOAD
    seed: int = 1

    def __post_init__(self):
        if self.bitrate_mbps <= 0 or self.fps <= 0:
            raise ValueError("bitrate and fps must be positive")
        if self.gop < 1:
            raise ValueError("gop must be >= 1")
        if not 0 <= self.size_jitter < 1:
            raise ValueError("size_jitter must be in [0, 1)")

    @property
    def mean_frame_bytes(self) -> float:
        return self.bitrate_mbps * 1e6 / 8 / self.fps


class VideoSource:
    """Emits packetised frames on the event loop at the configured fps.

    ``sink(payload, frame_id)`` is called once per packet — normally bound
    to ``TunnelClientBase.send_app_packet``.
    """

    def __init__(self, loop: EventLoop, sink: Callable[[bytes, int], None],
                 config: Optional[VideoConfig] = None, telemetry=None):
        self.loop = loop
        self.sink = sink
        self.config = config or VideoConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._rng = seeded_rng(self.config.seed)  # lint: disable=shard-rng-provenance -- adding a derivation label would shift frame-size draws and break golden replay; VideoConfig.seed is unique per source
        self.frames_emitted = 0
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self._timer = PeriodicTimer(loop, 1.0 / self.config.fps, self._emit_frame)

    def start(self, first_delay: float = 0.0) -> None:
        self._timer.start(first_delay=max(first_delay, 1e-9))

    def stop(self) -> None:
        self._timer.stop()

    def _frame_size(self, keyframe: bool) -> int:
        cfg = self.config
        # normalise so the long-run average hits the target bitrate:
        # one keyframe of scale k and (gop-1) P-frames of scale s satisfy
        # (k + (gop-1)*s) / gop == 1
        if cfg.gop == 1:
            scale = 1.0
        elif keyframe:
            scale = cfg.keyframe_scale
        else:
            scale = (cfg.gop - cfg.keyframe_scale) / (cfg.gop - 1)
            scale = max(scale, 0.1)
        jitter = 1.0 + self._rng.uniform(-cfg.size_jitter, cfg.size_jitter)
        return max(PACKET_HEADER.size + 16, int(cfg.mean_frame_bytes * scale * jitter))

    def _emit_frame(self) -> None:
        cfg = self.config
        frame_id = self.frames_emitted
        self.frames_emitted += 1
        keyframe = frame_id % cfg.gop == 0
        total = self._frame_size(keyframe)
        capture_ts = self.loop.now
        count = max(1, math.ceil(total / cfg.packet_payload))
        tel = self.telemetry
        if tel.enabled:
            sp = tel.spans
            if sp.enabled:
                # the root of the causal tree: capture -> complete delivery;
                # packet spans attach underneath via the frame binding
                sid = sp.open("frame", capture_ts, frame=frame_id,
                              keyframe=keyframe, bytes=total, count=count)
                sp.bind("frame", frame_id, sid)
        remaining = total
        for seq in range(count):
            size = min(cfg.packet_payload, max(PACKET_HEADER.size, remaining))
            remaining -= size
            payload = build_packet(frame_id, seq, count, keyframe, capture_ts, size)
            self.packets_emitted += 1
            self.bytes_emitted += len(payload)
            self.sink(payload, frame_id)
