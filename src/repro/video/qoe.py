"""Video QoE metrics: FPS, stall ratio, normalized SSIM proxy (Appx. C).

The paper's analysis tool computes three metrics from the received
recording against the reference video:

* **FPS** — decoded (normal) frames per second;
* **stall ratio** — inter-frame display intervals above 200 ms accumulate
  into stall time; ratio = stall time / stream time;
* **normalized SSIM** — structural similarity of aligned frames.

We have delivery records instead of pixels, so SSIM uses a documented
proxy model: a fully delivered frame scores near 1; a partially delivered
frame is "blocky" and scores in proportion to the fraction received; a
missing frame repeats the last displayed image, whose similarity to the
reference decays with scene motion; and corruption propagates through the
prediction chain until the next complete keyframe (standard codec error
propagation).  The proxy is monotone in exactly the quantities real SSIM
responds to, so comparative results (who wins, by how much) carry over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .receiver import FrameRecord

__all__ = [
    "STALL_THRESHOLD",
    "SSIM_FULL",
    "DECODE_MIN_FRACTION",
    "QoeReport",
    "analyze_qoe",
]

#: Stall threshold used by streaming services and by the paper (200 ms).
STALL_THRESHOLD = 0.200
#: SSIM of a perfectly delivered frame (encoder quantisation leaves ~0.97).
SSIM_FULL = 0.97
#: Per-repeated-frame SSIM decay when the stream freezes (scene motion).
SSIM_FREEZE_DECAY = 0.05
#: Floor: a frozen/blank image vs a moving road scene.
SSIM_FLOOR = 0.20
#: Fraction of packets below which a frame is undecodable (not just blocky).
DECODE_MIN_FRACTION = 0.60
#: Exponent shaping blockiness: missing slices hurt more than linearly.
BLOCKY_EXPONENT = 1.5
#: Residual quality multiplier while the prediction chain is corrupt.
PROPAGATION_PENALTY = 0.80


@dataclass
class QoeReport:
    """The Fig. 3(d)/9/11/12 metric triple plus supporting detail."""

    avg_fps: float
    stall_ratio: float
    ssim: float
    total_frames: int
    decoded_frames: int
    corrupt_frames: int
    missing_frames: int
    duration: float
    stall_time: float
    stall_events: int

    def as_row(self) -> dict:
        return {
            "fps": round(self.avg_fps, 2),
            "stall_ratio_pct": round(self.stall_ratio * 100, 2),
            "ssim": round(self.ssim, 3),
        }


def _frame_status(record: FrameRecord) -> str:
    """normal / corrupt / missing, per the modified-ffmpeg classification."""
    if record.complete:
        return "normal"
    if record.expected_packets and record.received_fraction >= DECODE_MIN_FRACTION:
        return "corrupt"
    return "missing"


def analyze_qoe(
    frames: Sequence[FrameRecord],
    fps: float,
    duration: Optional[float] = None,
    stall_threshold: float = STALL_THRESHOLD,
) -> QoeReport:
    """Compute the QoE triple from reassembly records.

    ``frames`` must be in frame-ID order and include never-received frames
    as empty records (``VideoReceiver.frame_records(total_frames=...)``).
    """
    if fps <= 0:
        raise ValueError("fps must be positive")
    total = len(frames)
    if total == 0:
        return QoeReport(0.0, 0.0, 0.0, 0, 0, 0, 0, 0.0, 0.0, 0)
    if duration is None:
        duration = total / fps

    statuses = [_frame_status(f) for f in frames]
    decoded = sum(1 for s in statuses if s == "normal")
    corrupt = sum(1 for s in statuses if s == "corrupt")
    missing = total - decoded - corrupt

    # --- stall: gaps between consecutive displayable-frame times ---------
    display_times = [
        f.complete_time for f, s in zip(frames, statuses) if s != "missing" and f.complete_time is not None
    ]
    # corrupt frames display at their last packet's arrival; approximate
    # with first_packet_time when completion never happened
    display_times += [
        f.first_packet_time
        for f, s in zip(frames, statuses)
        if s == "corrupt" and f.complete_time is None and f.first_packet_time is not None
    ]
    display_times.sort()
    stall_time = 0.0
    stall_events = 0
    if display_times:
        # leading stall: stream started but first frame came late
        first_capture = min((f.capture_ts for f in frames if f.expected_packets), default=0.0)
        lead = display_times[0] - first_capture
        if lead > stall_threshold:
            stall_time += lead - stall_threshold
            stall_events += 1
        for a, b in zip(display_times, display_times[1:]):
            gap = b - a
            if gap > stall_threshold:
                stall_time += gap - stall_threshold
                stall_events += 1
        # trailing stall: stream died before the end
        stream_end = max((f.capture_ts for f in frames if f.expected_packets), default=duration)
        tail = stream_end - display_times[-1]
        if tail > stall_threshold:
            stall_time += tail - stall_threshold
            stall_events += 1
    else:
        stall_time = duration
        stall_events = 1
    stall_ratio = min(1.0, stall_time / duration) if duration > 0 else 0.0

    # --- SSIM proxy with error propagation --------------------------------
    scores: List[float] = []
    chain_corrupt = False
    freeze_run = 0
    for record, status in zip(frames, statuses):
        if status == "normal":
            freeze_run = 0
            if record.keyframe:
                chain_corrupt = False
            score = SSIM_FULL * (PROPAGATION_PENALTY if chain_corrupt else 1.0)
        elif status == "corrupt":
            freeze_run = 0
            chain_corrupt = True
            blocky = record.received_fraction ** BLOCKY_EXPONENT
            score = max(SSIM_FLOOR, SSIM_FULL * blocky * PROPAGATION_PENALTY)
        else:
            freeze_run += 1
            chain_corrupt = True
            score = max(SSIM_FLOOR, SSIM_FULL - SSIM_FREEZE_DECAY * freeze_run)
        scores.append(score)
    ssim = sum(scores) / len(scores)

    return QoeReport(
        avg_fps=decoded / duration,
        stall_ratio=stall_ratio,
        ssim=ssim,
        total_frames=total,
        decoded_frames=decoded,
        corrupt_frames=corrupt,
        missing_frames=missing,
        duration=duration,
        stall_time=stall_time,
        stall_events=stall_events,
    )
