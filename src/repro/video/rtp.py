"""RTP packetisation (RFC 3550) for the tunnelled video stream.

CellFusion tunnels the application's own protocols — the road tests
stream RTSP/RTP over UDP (§8) — and XNC's range-border logic can
optionally detect video frame borders from "an RTP header with extension
marking" (§4.4.2).  This module implements exactly that slice of RTP:

* the fixed 12-byte header (version/padding/extension/CC, marker +
  payload type, sequence number, timestamp, SSRC);
* the marker bit set on the *last* packet of a frame (standard for
  video payloads), which is what the border detector keys on;
* a one-word header extension carrying the frame ID, mirroring the
  reference video's frame stamps (Appx. C).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "EXTENSION_PROFILE",
    "DEFAULT_PAYLOAD_TYPE",
    "VIDEO_CLOCK_HZ",
    "RtpError",
    "RtpPacket",
    "RtpPacketizer",
    "sniff_frame_border",
    "sniff_frame_id",
]

RTP_VERSION = 2
RTP_HEADER = struct.Struct("!BBHII")
RTP_HEADER_SIZE = RTP_HEADER.size  # 12
#: Extension: profile id (2B) + length-in-words (2B) + frame id word (4B).
EXTENSION_PROFILE = 0xCF02
EXTENSION_SIZE = 8
#: Dynamic payload type conventionally used for H.264 video.
DEFAULT_PAYLOAD_TYPE = 96
#: 90 kHz video clock (RFC 3551).
VIDEO_CLOCK_HZ = 90_000


class RtpError(Exception):
    """Malformed RTP packet."""


@dataclass(frozen=True)
class RtpPacket:
    """One parsed RTP packet."""

    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    marker: bool
    payload: bytes
    frame_id: Optional[int] = None  # from the header extension, if present

    def encode(self) -> bytes:
        has_ext = self.frame_id is not None
        b0 = (RTP_VERSION << 6) | (0x10 if has_ext else 0)
        b1 = (0x80 if self.marker else 0) | (self.payload_type & 0x7F)
        header = RTP_HEADER.pack(b0, b1, self.sequence & 0xFFFF, self.timestamp & 0xFFFFFFFF, self.ssrc)
        ext = b""
        if has_ext:
            ext = struct.pack("!HHI", EXTENSION_PROFILE, 1, self.frame_id & 0xFFFFFFFF)
        return header + ext + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "RtpPacket":
        if len(data) < RTP_HEADER_SIZE:
            raise RtpError("truncated RTP header")
        b0, b1, seq, ts, ssrc = RTP_HEADER.unpack_from(data)
        if b0 >> 6 != RTP_VERSION:
            raise RtpError("not RTP version 2")
        csrc_count = b0 & 0x0F
        offset = RTP_HEADER_SIZE + 4 * csrc_count
        frame_id = None
        if b0 & 0x10:  # extension present
            if len(data) < offset + 4:
                raise RtpError("truncated RTP extension header")
            profile, words = struct.unpack_from("!HH", data, offset)
            ext_end = offset + 4 + words * 4
            if len(data) < ext_end:
                raise RtpError("truncated RTP extension body")
            if profile == EXTENSION_PROFILE and words >= 1:
                (frame_id,) = struct.unpack_from("!I", data, offset + 4)
            offset = ext_end
        return cls(
            payload_type=b1 & 0x7F,
            sequence=seq,
            timestamp=ts,
            ssrc=ssrc,
            marker=bool(b1 & 0x80),
            payload=data[offset:],
            frame_id=frame_id,
        )


class RtpPacketizer:
    """Splits encoded frames into RTP packets, marker on the last."""

    def __init__(self, ssrc: int = 0xC311F051, payload_type: int = DEFAULT_PAYLOAD_TYPE,
                 mtu_payload: int = 1188, fps: float = 30.0):
        if mtu_payload <= 0:
            raise ValueError("mtu_payload must be positive")
        self.ssrc = ssrc
        self.payload_type = payload_type
        self.mtu_payload = mtu_payload
        self.fps = fps
        self._sequence = 0

    def packetize(self, frame_id: int, frame_bytes: bytes) -> List[RtpPacket]:
        """One frame -> RTP packets (≥1 even for an empty frame)."""
        timestamp = int(frame_id * VIDEO_CLOCK_HZ / self.fps)
        chunks = [
            frame_bytes[i : i + self.mtu_payload]
            for i in range(0, max(len(frame_bytes), 1), self.mtu_payload)
        ]
        packets = []
        for i, chunk in enumerate(chunks):
            packets.append(
                RtpPacket(
                    payload_type=self.payload_type,
                    sequence=self._sequence,
                    timestamp=timestamp,
                    ssrc=self.ssrc,
                    marker=(i == len(chunks) - 1),
                    payload=chunk,
                    frame_id=frame_id,
                )
            )
            self._sequence = (self._sequence + 1) & 0xFFFF
        return packets


def sniff_frame_border(payload: bytes) -> Optional[bool]:
    """Best-effort frame-border detection on tunnelled traffic (§4.4.2).

    Returns True when ``payload`` parses as RTP and carries the marker bit
    (last packet of a frame), False when it parses without the marker, and
    None when it isn't recognisable RTP — e.g. end-to-end encrypted
    traffic, for which the border condition simply stays off.
    """
    try:
        packet = RtpPacket.decode(payload)
    except RtpError:
        return None
    return packet.marker


def sniff_frame_id(payload: bytes) -> Optional[int]:
    """Frame ID from the RTP extension, when present and recognisable."""
    try:
        packet = RtpPacket.decode(payload)
    except RtpError:
        return None
    return packet.frame_id
