"""The in-vehicle CPE: hardware model, tun interface, modems (§5)."""

from .box import CpeBox, CpuSubsystem
from .modem import CellularModem, EP06_E, ModemModel, RM500Q_GL, default_modem_bank
from .tun import DEFAULT_TUN_MTU, TunInterface

__all__ = [
    "CpeBox",
    "CpuSubsystem",
    "CellularModem",
    "EP06_E",
    "ModemModel",
    "RM500Q_GL",
    "default_modem_bank",
    "DEFAULT_TUN_MTU",
    "TunInterface",
]
