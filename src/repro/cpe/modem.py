"""Cellular modem model (§5.1).

The CPE carries four modules — 2x Quectel RM500Q-GL (5G) and 2x EP06-E
(LTE) — each on a different carrier.  A :class:`CellularModem` pairs a
hardware descriptor with a drive trace so the tunnel-client can read the
per-second RSRP/SINR the way the measurement study did (from the module
driver, §2.2) and so the CPE can enumerate its interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..emulation.cellular import CellularTrace, generate_cellular_trace

__all__ = [
    "RM500Q_GL",
    "EP06_E",
    "CellularModem",
    "default_modem_bank",
]


@dataclass(frozen=True)
class ModemModel:
    """Static hardware description of one cellular module."""

    model: str
    technology: str
    tx_antennas: int
    rx_antennas: int


#: The exact modules in the CPE's cellular networking subsystem (§5.1).
RM500Q_GL = ModemModel("Quectel RM500Q-GL", "5G", 2, 4)
EP06_E = ModemModel("Quectel EP06-E", "LTE", 1, 2)


class CellularModem:
    """One cellular interface: hardware model + carrier + live RF state."""

    def __init__(self, index: int, model: ModemModel, carrier: int, trace: Optional[CellularTrace] = None):
        self.index = index
        self.model = model
        self.carrier = carrier
        self.trace = trace
        self.interface = "wwan%d" % index

    @property
    def technology(self) -> str:
        return self.model.technology

    @property
    def name(self) -> str:
        return "%s-carrier%d" % (self.technology, self.carrier)

    def attach_trace(self, trace: CellularTrace) -> None:
        if trace.tech != self.technology:
            raise ValueError(
                "trace technology %s does not match modem %s" % (trace.tech, self.technology)
            )
        self.trace = trace

    def _require_trace(self) -> CellularTrace:
        if self.trace is None:
            raise RuntimeError("modem %s has no trace attached" % self.name)
        return self.trace

    def _sample(self, series: np.ndarray, t: float) -> float:
        times = self._require_trace().times
        idx = int(np.searchsorted(times, t % self.trace.duration, side="right")) - 1
        return float(series[max(idx, 0)])

    def rsrp(self, t: float) -> float:
        """RSRP (dBm) reported by the module driver at time t."""
        return self._sample(self._require_trace().rsrp_dbm, t)

    def sinr(self, t: float) -> float:
        """SINR (dB) reported by the module driver at time t."""
        return self._sample(self._require_trace().sinr_db, t)

    def in_outage(self, t: float) -> bool:
        trace = self._require_trace()
        idx = int(np.searchsorted(trace.times, t % trace.duration, side="right")) - 1
        return bool(trace.outage_mask[max(idx, 0)])


def default_modem_bank(duration: float = 60.0, seed: int = 0, speed_mps: float = 14.0) -> List[CellularModem]:
    """The CPE's 2x5G + 2xLTE bank with freshly synthesised traces."""
    specs = [(RM500Q_GL, 0), (RM500Q_GL, 1), (EP06_E, 1), (EP06_E, 2)]
    modems = []
    for i, (model, carrier) in enumerate(specs):
        trace = generate_cellular_trace(
            tech=model.technology, carrier=carrier, duration=duration, speed_mps=speed_mps,
            seed=seed + i * 101,
        )
        modems.append(CellularModem(i, model, carrier, trace))
    return modems
