"""Virtual tun interface model (§3.2, Appx. E).

The CPE exposes a tun device to the in-vehicle LAN: IP packets written by
applications are captured into the tunnel-client in user space; packets
coming back from the tunnel are injected toward the LAN.  The tun MTU is
set to 1440 (device MTU 1500 minus the 60-byte worst-case tunnel header)
so full-sized user packets avoid split-and-reassemble inside the tunnel;
genuinely oversized packets are IP-fragmented here, and the fragments then
traverse the tunnel as independent IP packets, exactly as the appendix
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..netstack.ip import FragmentReassembler, IpError, Ipv4Packet, fragment

__all__ = [
    "DEFAULT_TUN_MTU",
    "TunStats",
    "TunInterface",
]

#: Appx. E: 1500-byte device MTU minus 60 bytes of tunnel headers.
DEFAULT_TUN_MTU = 1440


@dataclass
class TunStats:
    captured: int = 0
    injected: int = 0
    fragmented: int = 0
    fragments_out: int = 0
    reassembled: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


class TunInterface:
    """One side's tun device: capture toward the tunnel, inject from it."""

    def __init__(
        self,
        name: str = "tun0",
        mtu: int = DEFAULT_TUN_MTU,
        to_tunnel: Optional[Callable[[bytes], None]] = None,
        to_lan: Optional[Callable[[Ipv4Packet], None]] = None,
    ):
        if mtu < 68:
            raise ValueError("IPv4 minimum MTU is 68")
        self.name = name
        self.mtu = mtu
        self.to_tunnel = to_tunnel
        self.to_lan = to_lan
        self.stats = TunStats()
        self._reassembler = FragmentReassembler()

    def write_from_lan(self, ip_bytes: bytes, now: float = 0.0) -> List[bytes]:
        """An application wrote an IP packet; capture it into the tunnel.

        Oversized packets are fragmented to the tun MTU first.  Returns the
        raw packets handed to the tunnel (also delivered via ``to_tunnel``).
        """
        try:
            packet = Ipv4Packet.decode(ip_bytes)
        except IpError:
            self.stats.errors += 1
            return []
        self.stats.captured += 1
        pieces = fragment(packet, self.mtu)
        if len(pieces) > 1:
            self.stats.fragmented += 1
            self.stats.fragments_out += len(pieces)
        out = [p.encode() for p in pieces]
        if self.to_tunnel is not None:
            for raw in out:
                self.to_tunnel(raw)
        return out

    def write_from_tunnel(self, ip_bytes: bytes, now: float = 0.0) -> Optional[Ipv4Packet]:
        """The tunnel delivered an IP packet; inject it toward the LAN.

        Fragments are reassembled before delivery; returns the delivered
        packet (None while waiting for more fragments).
        """
        try:
            packet = Ipv4Packet.decode(ip_bytes)
        except IpError:
            self.stats.errors += 1
            return None
        whole = self._reassembler.push(packet, now)
        if whole is None:
            return None
        if whole is not packet:
            self.stats.reassembled += 1
        self.stats.injected += 1
        if self.to_lan is not None:
            self.to_lan(whole)
        return whole
