"""The CellFusion CPE box (§5): the in-vehicle gateway.

Composes the four hardware subsystems of §5.1 — CPU (RK3399, whose NEON
SIMD the coding path exploits), the 2x5G + 2xLTE cellular bank, the
interface/power subsystem, and the WiFi/LAN side — with the software that
runs on them: the tun interface, the CPE-side SNAT, and the
tunnel-client bring-up flow against the controller (authenticate → fetch
config → probe candidate PoPs → connect to the minimum-delay one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cloud.controller import Controller, TunnelConfig
from ..cloud.nat import NatError, SnatTable
from ..cloud.pop import PopNode
from ..netstack.ip import IpError, Ipv4Packet, PROTO_UDP, UDP_HEADER, UDP_HEADER_SIZE
from .modem import CellularModem, default_modem_bank
from .tun import TunInterface

__all__ = [
    "PEAK_POWER_W",
    "STANDBY_POWER_W",
    "CpeStats",
    "CpeBox",
]

#: §5.1 power envelope.
PEAK_POWER_W = 50.0
STANDBY_POWER_W = 25.0


@dataclass
class CpuSubsystem:
    """RK3399: dual Cortex-A72 + quad Cortex-A53, NEON-capable."""

    model: str = "Rockchip RK3399"
    big_cores: int = 2
    little_cores: int = 4
    simd: bool = True


@dataclass
class CpeStats:
    lan_packets: int = 0
    tunnel_packets: int = 0
    snat_rewrites: int = 0
    auth_failures: int = 0

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


class CpeBox:
    """One vehicle's CellFusion CPE."""

    def __init__(
        self,
        device_id: str,
        modems: Optional[List[CellularModem]] = None,
        to_tunnel: Optional[Callable[[bytes], None]] = None,
    ):
        self.device_id = device_id
        self.cpu = CpuSubsystem()
        self.modems = modems if modems is not None else default_modem_bank()
        self.tun = TunInterface(to_tunnel=self._capture)
        self._to_tunnel = to_tunnel
        self.token: Optional[str] = None
        self.config: Optional[TunnelConfig] = None
        self.connected_pop: Optional[str] = None
        self.vehicle_location: Tuple[float, float] = (0.0, 0.0)
        self._snat: Optional[SnatTable] = None
        self.stats = CpeStats()

    # -- hardware introspection ---------------------------------------------------

    @property
    def interface_names(self) -> List[str]:
        return [m.interface for m in self.modems]

    def modem_summary(self, t: float = 0.0) -> List[Dict]:
        """What a diagnostics page would show per cellular module."""
        out = []
        for m in self.modems:
            entry = {"interface": m.interface, "model": m.model.model, "carrier": m.carrier}
            if m.trace is not None:
                entry["rsrp_dbm"] = round(m.rsrp(t), 1)
                entry["sinr_db"] = round(m.sinr(t), 1)
            out.append(entry)
        return out

    # -- control-plane bring-up ------------------------------------------------------

    def provision(self, controller: Controller) -> None:
        """Factory provisioning: obtain the device token."""
        self.token = controller.register_device(self.device_id)

    def connect(self, controller: Controller, now: float = 0.0) -> PopNode:
        """The §6.1 bring-up: auth → config → probe candidates → pick min
        delay → register the session."""
        if self.token is None:
            raise RuntimeError("device not provisioned")
        if not controller.authenticate(self.device_id, self.token):
            self.stats.auth_failures += 1
            raise PermissionError("controller rejected device %s" % self.device_id)
        self.config = controller.get_config(self.device_id, self.token)
        self._snat = SnatTable(self.config.tun_address)
        candidates = controller.candidate_proxies(self.device_id, self.token)
        if not candidates:
            raise RuntimeError("no healthy proxies available")
        best = min(candidates, key=lambda p: p.access_delay(self.vehicle_location))
        controller.assign(self.device_id, best.pop_id)
        self.connected_pop = best.pop_id
        return best

    # -- data plane ----------------------------------------------------------------

    def _capture(self, ip_bytes: bytes) -> None:
        """tun capture: CPE-side SNAT then hand to the tunnel-client."""
        rewritten = self._snat_to_tun_address(ip_bytes)
        if rewritten is None:
            return
        self.stats.tunnel_packets += 1
        if self._to_tunnel is not None:
            self._to_tunnel(rewritten)

    def set_tunnel_sink(self, to_tunnel: Callable[[bytes], None]) -> None:
        self._to_tunnel = to_tunnel

    def send_lan_packet(self, ip_bytes: bytes, now: float = 0.0) -> None:
        """An in-vehicle application sent an IP packet toward the cloud."""
        self.stats.lan_packets += 1
        self.tun.write_from_lan(ip_bytes, now)

    def receive_tunnel_packet(self, ip_bytes: bytes, now: float = 0.0) -> Optional[Ipv4Packet]:
        """Return traffic from the tunnel: un-NAT and inject to the LAN."""
        restored = self._unsnat_from_tun_address(ip_bytes)
        if restored is None:
            return None
        return self.tun.write_from_tunnel(restored, now)

    def _snat_to_tun_address(self, ip_bytes: bytes) -> Optional[bytes]:
        """First NAT of §6.2: LAN source -> the allocated tun address."""
        if self._snat is None:
            return ip_bytes  # tunnel not configured yet: pass through
        try:
            packet = Ipv4Packet.decode(ip_bytes)
        except IpError:
            return None
        if packet.proto == PROTO_UDP and len(packet.payload) >= UDP_HEADER_SIZE:
            sport, dport, length, _c = UDP_HEADER.unpack_from(packet.payload)
            pub_ip, pub_port = self._snat.translate(PROTO_UDP, packet.src, sport)
            udp = UDP_HEADER.pack(pub_port, dport, length, 0) + packet.payload[UDP_HEADER_SIZE:]
            packet = Ipv4Packet(
                src=pub_ip, dst=packet.dst, proto=PROTO_UDP, payload=udp,
                identification=packet.identification, ttl=packet.ttl,
            )
        else:
            packet = Ipv4Packet(
                src=self._snat.public_ip, dst=packet.dst, proto=packet.proto,
                payload=packet.payload, identification=packet.identification, ttl=packet.ttl,
            )
        self.stats.snat_rewrites += 1
        return packet.encode()

    def _unsnat_from_tun_address(self, ip_bytes: bytes) -> Optional[bytes]:
        if self._snat is None:
            return ip_bytes
        try:
            packet = Ipv4Packet.decode(ip_bytes)
        except IpError:
            return None
        if packet.proto != PROTO_UDP or len(packet.payload) < UDP_HEADER_SIZE:
            return ip_bytes
        sport, dport, length, _c = UDP_HEADER.unpack_from(packet.payload)
        try:
            lan_ip, lan_port = self._snat.reverse(PROTO_UDP, dport)
        except NatError:
            # not one of ours (no SNAT mapping): deliver unmodified
            return ip_bytes
        udp = UDP_HEADER.pack(sport, lan_port, length, 0) + packet.payload[UDP_HEADER_SIZE:]
        return Ipv4Packet(
            src=packet.src, dst=lan_ip, proto=PROTO_UDP, payload=udp,
            identification=packet.identification, ttl=packet.ttl,
        ).encode()
