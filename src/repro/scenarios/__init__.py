"""Scenario zoo, invariant oracles, chaos campaigns, differential runs.

The robustness layer on top of the fault engine (ROADMAP item 5):

* :mod:`repro.scenarios.oracles` — named machine-checkable invariants
  evaluated from a :class:`~repro.faults.soak.SoakReport`;
* :mod:`repro.scenarios.zoo` — ten checked-in real-world scenarios,
  each a composed fault plan plus per-scenario expectations;
* :mod:`repro.scenarios.campaign` — hypothesis-driven random-plan
  campaigns that shrink failures to minimal replayable JSON;
* :mod:`repro.scenarios.diff` — the same adversity across all nine
  comparison transports, rendered as an HTML verdict matrix.

``repro chaos --help`` is the CLI surface.
"""

from .oracles import (
    ORACLE_NAMES,
    ORACLES,
    Expectations,
    Oracle,
    OracleVerdict,
    OracleViolation,
    assert_oracles,
    evaluate_oracles,
)
from .zoo import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    catalog_rows,
    get_scenario,
    run_scenario,
    scenario_names,
)
from .campaign import (
    CampaignOutcome,
    fault_plan_strategy,
    replay_artifact,
    run_campaign,
)
from .diff import DIFF_TRANSPORTS, DiffMatrix, run_diff

__all__ = [
    "ORACLE_NAMES",
    "ORACLES",
    "Expectations",
    "Oracle",
    "OracleVerdict",
    "OracleViolation",
    "assert_oracles",
    "evaluate_oracles",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "catalog_rows",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "CampaignOutcome",
    "fault_plan_strategy",
    "replay_artifact",
    "run_campaign",
    "DIFF_TRANSPORTS",
    "DiffMatrix",
    "run_diff",
]
