"""Hypothesis-driven chaos campaigns with failure shrinking.

The scenario zoo checks adversity we already imagined; a **campaign**
searches for adversity we did not.  :func:`fault_plan_strategy` is a
composable Hypothesis strategy over valid :class:`~repro.faults.plan.
FaultPlan`s; :func:`run_campaign` drives seeded soak runs under
generated plans, asserts the invariant oracles on every run, and — when
a plan breaks an oracle — lets Hypothesis **shrink** it to a minimal
failing plan, saved as a replayable JSON artifact:

.. code-block:: console

    $ repro chaos campaign --examples 25 --duration 4
    $ repro chaos run --plan chaos-shrunk-cellfusion.json   # replay it

Determinism: the soak seed is fixed per campaign; only the plan varies.
With ``derandomize=True`` (the CI default) Hypothesis derives its
generation sequence from the property itself, so a campaign either
passes everywhere or fails everywhere — no flaky CI.

Hypothesis is imported lazily so the rest of the scenario package works
without it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.plan import (
    DESTRUCTIVE_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FaultPlanBuilder,
)
from ..faults.soak import run_chaos_soak
from .oracles import (
    Expectations,
    Oracle,
    OracleVerdict,
    OracleViolation,
    evaluate_oracles,
)

__all__ = [
    "CampaignOutcome",
    "fault_plan_strategy",
    "run_campaign",
    "replay_artifact",
]


def _hypothesis():
    try:
        import hypothesis
    except ImportError:  # pragma: no cover - baked into the CI image
        raise RuntimeError(
            "chaos campaigns need the 'hypothesis' package (zoo and diff "
            "runs do not)")
    return hypothesis


@dataclass
class CampaignOutcome:
    """One campaign's result: pass/fail plus the shrunk counterexample."""

    seed: int
    transport: str
    duration: float
    #: Soak executions performed (generation + shrinking).
    executions: int
    failed: bool
    #: Distinct failing plans observed while shrinking.
    failing_plans_seen: int
    #: The minimal failing plan (fewest events, shortest, canonical-JSON
    #: tie-break) — Hypothesis re-executes the shrunk example last, and
    #: we additionally select the minimum over every failure observed.
    minimal_plan: Optional[FaultPlan] = None
    #: Oracle verdicts of the minimal failing run.
    minimal_verdicts: List[OracleVerdict] = field(default_factory=list)
    #: Where the replayable artifact was written, when it was.
    artifact_path: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "transport": self.transport,
            "duration": self.duration,
            "executions": self.executions,
            "failed": self.failed,
            "failing_plans_seen": self.failing_plans_seen,
            "minimal_events": (len(self.minimal_plan)
                               if self.minimal_plan is not None else 0),
            "minimal_verdicts": [v.as_dict() for v in self.minimal_verdicts],
            "artifact_path": self.artifact_path,
        }


def fault_plan_strategy(
    duration: float,
    path_count: int = 4,
    max_events: int = 6,
    kinds: Optional[Sequence[str]] = None,
    spare_path: bool = True,
):
    """A Hypothesis strategy over **valid** fault plans.

    Every generated plan satisfies ``FaultPlan.validate(path_count)``;
    all 10 fault kinds are reachable (restrict with ``kinds``).  With
    ``spare_path`` the highest path never receives a destructive fault,
    matching :func:`~repro.faults.plan.random_plan`'s delivery contract.
    Shrinking moves toward fewer, earlier, shorter, milder events.
    """
    hyp = _hypothesis()
    st = hyp.strategies
    chosen = tuple(kinds) if kinds else FAULT_KINDS
    unknown = set(chosen) - set(FAULT_KINDS)
    if unknown:
        raise ValueError("unknown fault kinds: %s" % ", ".join(sorted(unknown)))

    def finite(lo, hi):
        return st.floats(min_value=lo, max_value=hi,
                         allow_nan=False, allow_infinity=False)

    @st.composite
    def _plans(draw):
        n = draw(st.integers(min_value=0, max_value=max_events))
        b = FaultPlanBuilder()
        for _ in range(n):
            kind = draw(st.sampled_from(chosen))
            start = draw(finite(0.0, max(0.1, duration * 0.9)))
            if kind == "nat_rebind":
                b.nat_rebind(start)
                continue
            if kind == "pop_handover":
                b.pop_handover(start, outage=draw(finite(0.05, 0.4)))
                continue
            # clamp windows the way random_plan does, so the overlay
            # always drains within the soak's lift horizon
            span = min(draw(finite(0.05, 2.5)), max(0.2, duration - start))
            limit = path_count - 1 if (spare_path and path_count > 1
                                       and kind in DESTRUCTIVE_KINDS) else path_count
            pid = draw(st.integers(min_value=-1, max_value=limit - 1))
            if kind == "blackout":
                b.blackout(start, span, path_id=pid)
            elif kind == "brownout":
                b.brownout(start, span, severity=draw(finite(0.0, 1.0)),
                           path_id=pid)
            elif kind == "burst_loss":
                b.burst_loss(start, min(span, 0.8),
                             severity=draw(finite(0.0, 1.0)), path_id=pid)
            elif kind == "rtt_spike":
                b.rtt_spike(start, span, delay=draw(finite(0.0, 0.6)),
                            path_id=pid)
            elif kind == "bandwidth_cliff":
                b.bandwidth_cliff(start, span, scale=draw(finite(0.0, 1.0)),
                                  path_id=pid)
            elif kind == "reorder":
                b.reorder(start, span, jitter=draw(finite(0.0, 0.15)),
                          path_id=pid)
            elif kind == "duplicate":
                b.duplicate(start, span, prob=draw(finite(0.0, 1.0)),
                            path_id=pid)
            else:
                b.ack_blackout(start, min(span, 1.0), path_id=pid)
        return b.build()

    return _plans()


def _plan_sort_key(plan: FaultPlan) -> tuple:
    return (len(plan), plan.horizon, plan.to_json())


def write_artifact(path: str, plan: FaultPlan, meta: Dict[str, object]) -> None:
    """Write a replayable shrunk-plan artifact.

    The document is a superset of the plan-JSON schema — ``FaultPlan.
    from_json`` (and hence ``repro chaos run --plan``) loads it directly;
    the extra ``campaign`` object records how it was found.
    """
    doc = json.loads(plan.to_json())
    doc["campaign"] = meta
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def replay_artifact(
    path: str,
    seed: Optional[int] = None,
    duration: Optional[float] = None,
    transport: Optional[str] = None,
    path_count: int = 4,
    sanitize=True,
):
    """Replay a shrunk-plan artifact: rerun the soak, re-judge the oracles.

    Seed / duration / transport default to the values recorded in the
    artifact's ``campaign`` metadata (explicit arguments win), so a bare
    ``replay_artifact("chaos-shrunk.json")`` reproduces the failure.
    Returns ``(report, verdicts)``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    plan = FaultPlan.from_json(json.dumps(doc))
    meta = doc.get("campaign", {}) if isinstance(doc, dict) else {}
    seed = seed if seed is not None else int(meta.get("seed", 1))
    duration = duration if duration is not None else float(meta.get("duration", 4.0))
    transport = transport or meta.get("transport", "cellfusion")
    exp = Expectations(**meta["expectations"]) if "expectations" in meta \
        else Expectations()
    report = run_chaos_soak(seed, duration=duration, transport=transport,
                            path_count=path_count, plan=plan,
                            sanitize=sanitize)
    return report, evaluate_oracles(report, plan, exp)


def run_campaign(
    seed: int = 1,
    duration: float = 4.0,
    transport: str = "cellfusion",
    path_count: int = 4,
    max_examples: int = 25,
    max_events: int = 6,
    derandomize: bool = True,
    spare_path: bool = True,
    kinds: Optional[Sequence[str]] = None,
    expectations: Optional[Expectations] = None,
    extra_oracles: Sequence[Oracle] = (),
    soak: Optional[Callable[[FaultPlan], object]] = None,
    artifact_path: Optional[str] = None,
    sanitize=True,
) -> CampaignOutcome:
    """Run one hypothesis-driven chaos campaign.

    Generates up to ``max_examples`` fault plans, soaks each under the
    fixed ``seed``, and asserts every invariant oracle.  On failure,
    Hypothesis shrinks to a minimal failing plan, which is written to
    ``artifact_path`` (when given) as replayable JSON.

    ``soak`` injects a custom runner ``plan -> SoakReport`` — tests use
    it to plant violations without paying for real tunnel runs; the
    default runs :func:`~repro.faults.soak.run_chaos_soak`.
    """
    hyp = _hypothesis()
    exp = expectations or Expectations()
    runner = soak or (lambda p: run_chaos_soak(
        seed, duration=duration, transport=transport,
        path_count=path_count, plan=p, sanitize=sanitize))
    # locals mutated from the property closure (not module state)
    stats = {"executions": 0}
    failures: List[Tuple[FaultPlan, List[OracleVerdict]]] = []

    @hyp.given(plan=fault_plan_strategy(duration, path_count=path_count,
                                        max_events=max_events, kinds=kinds,
                                        spare_path=spare_path))
    @hyp.settings(
        max_examples=max_examples,
        deadline=None,
        derandomize=derandomize,
        database=None,
        phases=(hyp.Phase.generate, hyp.Phase.shrink),
        suppress_health_check=list(hyp.HealthCheck),
        print_blob=False,
    )
    def property_holds(plan: FaultPlan) -> None:
        plan.validate(path_count=path_count)
        stats["executions"] += 1
        report = runner(plan)
        verdicts = evaluate_oracles(report, plan, exp, extra_oracles)
        bad = [v for v in verdicts if not v.ok]
        if bad:
            failures.append((plan, verdicts))
            raise OracleViolation("; ".join(
                "%s: %s" % (v.oracle, v.detail) for v in bad))

    if not derandomize:
        property_holds = hyp.seed(seed)(property_holds)

    failed = False
    try:
        property_holds()
    except OracleViolation:
        failed = True

    minimal: Optional[FaultPlan] = None
    minimal_verdicts: List[OracleVerdict] = []
    written: Optional[str] = None
    if failed and failures:
        minimal, minimal_verdicts = min(failures,
                                        key=lambda fv: _plan_sort_key(fv[0]))
        if artifact_path:
            write_artifact(artifact_path, minimal, {
                "seed": seed,
                "transport": transport,
                "duration": duration,
                "path_count": path_count,
                "expectations": exp.as_dict(),
                "failed_oracles": [v.as_dict() for v in minimal_verdicts
                                   if not v.ok],
                "executions": stats["executions"],
            })
            written = artifact_path
    return CampaignOutcome(
        seed=seed,
        transport=transport,
        duration=duration,
        executions=stats["executions"],
        failed=failed,
        failing_plans_seen=len(failures),
        minimal_plan=minimal,
        minimal_verdicts=minimal_verdicts,
        artifact_path=written,
    )
