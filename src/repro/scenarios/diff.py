"""Differential transport verdicts: one adversity, every transport.

arXiv:1507.05174 and arXiv:1411.1841 motivate judging *every* delivery
scheme under the same degradation, not just the headline one under one
random plan.  :func:`run_diff` drives a single zoo scenario — same
traces, same seed, same :class:`~repro.faults.plan.FaultPlan` — across
the nine comparison transports and collects the per-transport oracle
verdicts into a :class:`DiffMatrix`, rendered as an HTML verdict matrix
by :func:`repro.analysis.report.write_diff_html_report`.

The matrix is diagnostic, not a gate: a baseline transport failing the
``delivery_floor`` oracle under a tunnel blackout is the *expected*
differential result (that is the paper's point); CI gates only assert
the zoo scenarios on the default transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .oracles import OracleVerdict
from .zoo import Scenario, ScenarioResult, get_scenario, run_scenario

__all__ = [
    "DIFF_TRANSPORTS",
    "DiffMatrix",
    "run_diff",
]

#: The nine comparison transports (paper baselines + CellFusion); the
#: xnc alias and ablation variants are excluded — ablations get their
#: own figures, and an alias would duplicate a column.
DIFF_TRANSPORTS = (
    "cellfusion",
    "mpquic",
    "mptcp",
    "bonding",
    "minRTT",
    "RE",
    "XLINK",
    "ECF",
    "pluribus",
)


@dataclass
class DiffMatrix:
    """Per-transport scenario results under identical adversity."""

    scenario: str
    seed: int
    duration: float
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def transports(self) -> Tuple[str, ...]:
        return tuple(r.transport for r in self.results)

    def verdict_grid(self) -> Dict[str, Dict[str, OracleVerdict]]:
        """``{transport: {oracle: verdict}}`` for matrix rendering."""
        return {r.transport: {v.oracle: v for v in r.verdicts}
                for r in self.results}

    def passed(self, transport: str) -> bool:
        for r in self.results:
            if r.transport == transport:
                return r.passed
        raise KeyError(transport)

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "duration": self.duration,
            "results": [r.as_dict() for r in self.results],
        }


def run_diff(
    scenario,
    seed: int = 1,
    duration: Optional[float] = None,
    transports: Sequence[str] = DIFF_TRANSPORTS,
    sanitize=True,
    smoke: bool = False,
) -> DiffMatrix:
    """Run one scenario across every transport and collect verdicts.

    Each transport sees byte-identical adversity: the scenario's plan is
    a pure function of (duration, path_count) and the traces are a pure
    function of (duration, seed), so the only varying factor is the
    transport itself — any verdict difference is attributable to it.
    """
    sc: Scenario = get_scenario(scenario) if isinstance(scenario, str) else scenario
    dur = duration if duration is not None else (
        sc.smoke_duration if smoke else sc.duration)
    results = [
        run_scenario(sc, seed=seed, duration=dur, transport=t,
                     sanitize=sanitize)
        for t in transports
    ]
    return DiffMatrix(scenario=sc.name, seed=seed, duration=dur,
                      results=results)
