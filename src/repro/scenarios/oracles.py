"""Invariant oracles: named, machine-checkable robustness predicates.

:func:`repro.faults.soak.SoakReport.assert_healthy` bundles a handful of
guarantees into one opaque assertion.  This module unbundles them into a
registry of **named oracles** — small pure predicates over a
:class:`~repro.faults.soak.SoakReport`, the :class:`~repro.faults.plan.
FaultPlan` that produced it, and a per-scenario :class:`Expectations`
record — so every scenario-zoo entry, chaos campaign, and differential
run reports *which* robustness property broke, not merely that one did:

================== =======================================================
oracle             property
================== =======================================================
``delivery_floor``    delivery ratio at or above the scenario's floor
``no_watchdog_wedge`` no terminal stall: the watchdog never had to fire
``health_liveness``   the health machine kept enough paths schedulable
``bounded_recovery``  fault overlay drained; probing stayed within budget
``decode_integrity``  sanitizer armed, engaged, and zero violations
``nat_consistency``   NAT flushes match the plan's middlebox events
================== =======================================================

Oracles never raise on their own — :func:`evaluate_oracles` returns one
:class:`OracleVerdict` per oracle and :func:`assert_oracles` turns any
failure into an :class:`OracleViolation` whose message names the oracle.
Every verdict is derived only from the report/plan/expectations triple,
so a verdict set is as deterministic as the soak that produced it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan

__all__ = [
    "Expectations",
    "Oracle",
    "OracleVerdict",
    "OracleViolation",
    "ORACLES",
    "ORACLE_NAMES",
    "evaluate_oracles",
    "assert_oracles",
]

#: Health states that keep a path schedulable (see docs/robustness.md).
_LIVE_HEALTH = ("active", "degraded")


class OracleViolation(AssertionError):
    """One or more named robustness oracles failed."""


@dataclass(frozen=True)
class Expectations:
    """Per-scenario invariant expectations the oracles evaluate against.

    Scenario-zoo entries tune these to the adversity they schedule: a
    rural single-path collapse legitimately delivers less than an urban
    canyon, but both must drain their fault state and keep the health
    machine live.
    """

    #: Minimum acceptable delivery ratio for the run.
    min_delivery: float = 0.2
    #: Whether a terminal watchdog stall is acceptable for the scenario.
    allow_terminal: bool = False
    #: Paths that must end the run in a schedulable health state.
    min_live_paths: int = 1
    #: Ceiling on probe packets (a probe storm is a liveness bug).
    max_probe_packets: int = 500
    #: Require at least one health-machine transition (storm scenarios).
    require_health_transitions: bool = False
    #: Require every scheduled NAT flush to have fired.
    require_nat_flush: bool = False

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's pass/fail outcome with a human-readable detail."""

    oracle: str
    ok: bool
    detail: str

    def as_dict(self) -> dict:
        return {"oracle": self.oracle, "ok": self.ok, "detail": self.detail}


@dataclass(frozen=True)
class Oracle:
    """A named robustness predicate.

    ``check`` returns ``None`` when the property held, else a violation
    detail string; :func:`evaluate_oracles` wraps it into a verdict.
    """

    name: str
    description: str
    check: Callable[[object, Optional[FaultPlan], Expectations], Optional[str]]

    def evaluate(self, report, plan: Optional[FaultPlan],
                 exp: Expectations) -> OracleVerdict:
        detail = self.check(report, plan, exp)
        if detail is None:
            return OracleVerdict(self.name, True, "ok")
        return OracleVerdict(self.name, False, detail)


# -- the predicates ---------------------------------------------------------

def _delivery_floor(report, plan, exp) -> Optional[str]:
    if report.packets_sent == 0:
        return "source emitted nothing - harness misconfigured"
    if report.delivery_ratio < exp.min_delivery:
        return ("delivery %.3f under the %.3f floor"
                % (report.delivery_ratio, exp.min_delivery))
    return None


def _no_watchdog_wedge(report, plan, exp) -> Optional[str]:
    if exp.allow_terminal:
        return None
    if report.terminal_error is not None:
        return "terminal error: %s" % report.terminal_error
    if report.watchdog_closes:
        return "%d watchdog close(s) during the run" % report.watchdog_closes
    return None


def _health_liveness(report, plan, exp) -> Optional[str]:
    live = sum(1 for h in report.final_health if h in _LIVE_HEALTH)
    if report.final_health and live < exp.min_live_paths:
        return ("only %d of %d paths ended schedulable (need >= %d): [%s]"
                % (live, len(report.final_health), exp.min_live_paths,
                   ", ".join(report.final_health)))
    if exp.require_health_transitions and report.health_transitions == 0:
        return "scenario demands health-machine activity but saw none"
    return None


def _bounded_recovery(report, plan, exp) -> Optional[str]:
    if not report.overlay_drained:
        return "fault overlay still active after the horizon"
    if report.faults_lifted > report.faults_applied:
        return ("lifted %d fault windows but only %d were applied"
                % (report.faults_lifted, report.faults_applied))
    if plan is not None:
        windowed = sum(1 for e in plan if e.duration > 0.0)
        if report.faults_applied and report.faults_lifted < windowed:
            return ("%d of %d windowed faults never lifted"
                    % (windowed - report.faults_lifted, windowed))
    if report.probe_packets > exp.max_probe_packets:
        return ("probe storm: %d probes over the %d budget"
                % (report.probe_packets, exp.max_probe_packets))
    return None


def _decode_integrity(report, plan, exp) -> Optional[str]:
    violations = getattr(report, "sanitizer_violations", 0)
    if violations:
        return "%d sanitizer violation(s) during the run" % violations
    if getattr(report, "sanitizer_armed", False) and \
            getattr(report, "sanitizer_checks", 0) == 0:
        return "sanitizer was armed but never engaged (harness wiring bug)"
    return None


def _nat_consistency(report, plan, exp) -> Optional[str]:
    if plan is None:
        return None
    scheduled = sum(1 for e in plan if e.kind in ("nat_rebind", "pop_handover"))
    if report.nat_flushes > scheduled:
        return ("%d NAT flushes but only %d middlebox events scheduled"
                % (report.nat_flushes, scheduled))
    if exp.require_nat_flush and scheduled and report.nat_flushes < scheduled:
        return ("only %d of %d scheduled NAT flushes fired"
                % (report.nat_flushes, scheduled))
    return None


ORACLES: Tuple[Oracle, ...] = (
    Oracle("delivery_floor",
           "the tunnel delivered at least the scenario's floor",
           _delivery_floor),
    Oracle("no_watchdog_wedge",
           "no terminal stall: the stream watchdog never had to fire",
           _no_watchdog_wedge),
    Oracle("health_liveness",
           "the path-health machine kept enough paths schedulable",
           _health_liveness),
    Oracle("bounded_recovery",
           "fault overlay drained and probing stayed within budget",
           _bounded_recovery),
    Oracle("decode_integrity",
           "runtime sanitizer armed, engaged, and violation-free",
           _decode_integrity),
    Oracle("nat_consistency",
           "NAT flushes match the plan's scheduled middlebox events",
           _nat_consistency),
)

ORACLE_NAMES: Tuple[str, ...] = tuple(o.name for o in ORACLES)


def evaluate_oracles(
    report,
    plan: Optional[FaultPlan],
    expectations: Optional[Expectations] = None,
    extra_oracles: Sequence[Oracle] = (),
) -> List[OracleVerdict]:
    """Evaluate every registered oracle (plus ``extra_oracles``) once.

    Returns one verdict per oracle, registry order first; nothing is
    raised — see :func:`assert_oracles` for the raising form.
    """
    exp = expectations or Expectations()
    oracles = tuple(ORACLES) + tuple(extra_oracles)
    return [o.evaluate(report, plan, exp) for o in oracles]


def assert_oracles(
    report,
    plan: Optional[FaultPlan],
    expectations: Optional[Expectations] = None,
    extra_oracles: Sequence[Oracle] = (),
) -> List[OracleVerdict]:
    """Evaluate all oracles and raise :class:`OracleViolation` on failure.

    Returns the full verdict list when everything held.
    """
    verdicts = evaluate_oracles(report, plan, expectations, extra_oracles)
    bad = [v for v in verdicts if not v.ok]
    if bad:
        raise OracleViolation("; ".join(
            "%s: %s" % (v.oracle, v.detail) for v in bad))
    return verdicts
