"""The scenario zoo: named real-world adversity, checked in as data.

ROADMAP item 5 asks for "handles as many scenarios as you can imagine"
as an *enumerable, regression-gated suite*.  This module is that
enumeration: ten named scenarios, each pairing a composed
:class:`~repro.faults.plan.FaultPlan` (built from the run duration so
smoke and full runs share one shape), a trace profile (duration, path
count, transport), and per-scenario :class:`~repro.scenarios.oracles.
Expectations` the invariant oracles evaluate.

Every scenario is deterministic end to end: :func:`run_scenario` draws
the same traces and the same plan for the same seed, and the returned
:class:`ScenarioResult` carries the soak's outcome digest — CI reruns
each scenario and demands byte-identical digests.

The catalog (name → faults → invariants → expected QoE shape) is
rendered by :func:`catalog_rows` and documented in docs/robustness.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..faults.plan import FaultPlan, FaultPlanBuilder
from ..faults.soak import SoakReport, run_chaos_soak
from .oracles import Expectations, OracleVerdict, evaluate_oracles

__all__ = [
    "Scenario",
    "ScenarioResult",
    "SCENARIOS",
    "scenario_names",
    "get_scenario",
    "catalog_rows",
    "run_scenario",
]


@dataclass(frozen=True)
class Scenario:
    """One named, checked-in real-world scenario."""

    name: str
    title: str
    #: What on the road this models (one sentence).
    description: str
    #: ``(duration, path_count) -> FaultPlan`` — event times scale with
    #: the run so smoke (short) and full runs exercise the same shape.
    build_plan: Callable[[float, int], FaultPlan]
    #: Invariant expectations the oracle layer evaluates against.
    expectations: Expectations
    #: Expected QoE shape under this adversity (catalog documentation).
    qoe_shape: str
    #: Full-fidelity run length; ``--smoke`` runs use ``smoke_duration``.
    duration: float = 6.0
    smoke_duration: float = 2.5
    path_count: int = 4
    transport: str = "cellfusion"
    #: Scenario needs telemetry armed (event-level oracle extras).
    needs_telemetry: bool = False


@dataclass
class ScenarioResult:
    """One scenario run: the soak outcome plus its oracle verdicts."""

    scenario: str
    seed: int
    transport: str
    duration: float
    report: SoakReport
    verdicts: List[OracleVerdict]
    #: Scenario-specific extras (e.g. migration events, telemetry fault
    #: counts for the PoP-drain scenario); JSON-able, not digested.
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def digest(self) -> str:
        """The soak's outcome digest (rerun must reproduce it)."""
        return self.report.digest

    def failures(self) -> List[OracleVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "transport": self.transport,
            "duration": self.duration,
            "passed": self.passed,
            "digest": self.digest,
            "delivery_ratio": self.report.delivery_ratio,
            "verdicts": [v.as_dict() for v in self.verdicts],
            "extras": self.extras,
        }


# -- plan builders ----------------------------------------------------------
#
# Each builder receives (duration, path_count) and schedules faults at
# *fractions* of the run, so a 2.5 s smoke run and a 6 s full run share
# one adversity shape.  d(f) below is shorthand for duration * f.

def _tunnel_transit(duration: float, paths: int) -> FaultPlan:
    # every carrier goes dark at once mid-run (the tunnel mouth), then
    # all return together at the exit
    dark = min(1.2, duration * 0.25)
    return (FaultPlanBuilder()
            .blackout(duration * 0.4, dark, path_id=-1)
            .build())


def _urban_canyon(duration: float, paths: int) -> FaultPlan:
    # alternating per-carrier shadowing: brownouts and RTT spikes sweep
    # across the paths as buildings occlude one carrier after another
    b = FaultPlanBuilder()
    slot = duration * 0.7 / max(1, paths)
    for pid in range(paths):
        start = duration * 0.15 + pid * slot
        b.brownout(start, slot * 0.9, severity=0.45, path_id=pid)
        b.rtt_spike(start, slot * 0.6, delay=0.08, path_id=pid)
    return b.build()


def _handover_storm(duration: float, paths: int) -> FaultPlan:
    # highway tower handovers: short uplink bursts per path plus two
    # CGNAT rebinds as carriers re-anchor the flows
    b = FaultPlanBuilder()
    for pid in range(max(1, paths - 1)):
        start = duration * (0.2 + 0.15 * pid)
        b.burst_loss(start, min(0.4, duration * 0.08), path_id=pid)
        b.rtt_spike(start, min(0.8, duration * 0.15), delay=0.06, path_id=pid)
    b.nat_rebind(duration * 0.35)
    b.nat_rebind(duration * 0.7)
    return b.build()


def _carrier_outage(duration: float, paths: int) -> FaultPlan:
    # one carrier's (two SIMs') regional outage for most of the run; the
    # surviving carrier carries the stream
    dead = max(1, paths // 2)
    b = FaultPlanBuilder()
    for pid in range(dead):
        b.blackout(duration * 0.2, duration * 0.6, path_id=pid)
    return b.build()


def _brownout_cascade(duration: float, paths: int) -> FaultPlan:
    # a loss wave rolling across carriers with overlapping windows, so
    # the overlay's composition algebra is genuinely exercised
    b = FaultPlanBuilder()
    span = duration * 0.35
    for pid in range(max(1, paths - 1)):
        start = duration * (0.15 + 0.12 * pid)
        b.brownout(start, span, severity=0.6, path_id=pid)
    b.brownout(duration * 0.3, duration * 0.3, severity=0.25, path_id=-1)
    return b.build()


def _nat_churn(duration: float, paths: int) -> FaultPlan:
    # CGNAT timeout churn: repeated rebinds plus a downlink ACK blackout
    # (the return path through the middlebox dies first)
    b = FaultPlanBuilder()
    for i in range(3):
        b.nat_rebind(duration * (0.2 + 0.25 * i))
    b.ack_blackout(duration * 0.45, min(0.6, duration * 0.12), path_id=0)
    return b.build()


def _pop_drain_migration(duration: float, paths: int) -> FaultPlan:
    # controller drains the serving PoP and migrates the tunnel: one
    # make-before-break switchover outage plus the NAT flush it implies
    return (FaultPlanBuilder()
            .pop_handover(duration * 0.5, outage=min(0.3, duration * 0.08))
            .build())


def _rural_single_path(duration: float, paths: int) -> FaultPlan:
    # deep rural collapse: all but the last path go dark, the survivor
    # is throttled hard - the tunnel must ride one thin pipe
    b = FaultPlanBuilder()
    for pid in range(max(1, paths - 1)):
        b.blackout(duration * 0.25, duration * 0.55, path_id=pid)
    b.bandwidth_cliff(duration * 0.25, duration * 0.55, scale=0.35,
                      path_id=paths - 1)
    return b.build()


def _bandwidth_cliff(duration: float, paths: int) -> FaultPlan:
    # every path's capacity collapses to 15 % (congested cell edge):
    # queues build, delay inherits, nothing actually drops
    return (FaultPlanBuilder()
            .bandwidth_cliff(duration * 0.3, duration * 0.4, scale=0.15,
                             path_id=-1)
            .build())


def _reorder_storm(duration: float, paths: int) -> FaultPlan:
    # heavy cross-path jitter plus duplication: the decoder and the
    # range lifecycle must tolerate wild arrival orders
    b = FaultPlanBuilder()
    b.reorder(duration * 0.2, duration * 0.6, jitter=0.06, path_id=-1)
    b.duplicate(duration * 0.3, duration * 0.4, prob=0.3, path_id=0)
    b.duplicate(duration * 0.35, duration * 0.3, prob=0.3, path_id=1)
    return b.build()


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="tunnel_transit",
        title="Tunnel transit",
        description="All carriers go dark at the tunnel mouth and return "
                    "together at the exit.",
        build_plan=_tunnel_transit,
        expectations=Expectations(min_delivery=0.5,
                                  require_nat_flush=False),
        qoe_shape="hard stall inside the tunnel, fast recovery at exit",
    ),
    Scenario(
        name="urban_canyon",
        title="Urban canyon",
        description="Buildings occlude one carrier after another: rolling "
                    "brownouts and RTT spikes sweep across the paths.",
        build_plan=_urban_canyon,
        expectations=Expectations(min_delivery=0.6),
        qoe_shape="elevated tail delay, no stall (coding absorbs the loss)",
    ),
    Scenario(
        name="handover_storm",
        title="Highway handover storm",
        description="Tower handovers at speed: per-path uplink bursts, RTT "
                    "spikes, and repeated CGNAT rebinds.",
        build_plan=_handover_storm,
        expectations=Expectations(min_delivery=0.6, require_nat_flush=True),
        qoe_shape="brief per-path dips, steady aggregate FPS",
    ),
    Scenario(
        name="carrier_outage",
        title="Carrier outage",
        description="One carrier's regional outage takes half the SIMs down "
                    "for most of the run; the survivor carries the stream.",
        build_plan=_carrier_outage,
        expectations=Expectations(min_delivery=0.5,
                                  require_health_transitions=True),
        qoe_shape="bitrate-limited but stall-free on surviving capacity",
    ),
    Scenario(
        name="brownout_cascade",
        title="Brownout cascade",
        description="A loss wave rolls across carriers with overlapping "
                    "windows, compounding on the shared all-path brownout.",
        build_plan=_brownout_cascade,
        expectations=Expectations(min_delivery=0.4),
        qoe_shape="degraded SSIM through the wave, recovery after",
    ),
    Scenario(
        name="nat_churn",
        title="NAT churn",
        description="CGNAT timeout churn: repeated rebinds plus a downlink "
                    "ACK blackout through the middlebox.",
        build_plan=_nat_churn,
        expectations=Expectations(min_delivery=0.6, require_nat_flush=True),
        qoe_shape="transient ACK starvation, no end-to-end stall",
    ),
    Scenario(
        name="pop_drain_migration",
        title="PoP drain + migration",
        description="The controller drains the serving PoP mid-stream and "
                    "migrates the tunnel to a closer one (make-before-break "
                    "switchover via cloud/migration.py).",
        build_plan=_pop_drain_migration,
        expectations=Expectations(min_delivery=0.6, require_nat_flush=True),
        qoe_shape="one sub-second dip at switchover, then better access delay",
        needs_telemetry=True,
    ),
    Scenario(
        name="rural_single_path",
        title="Rural single-path collapse",
        description="Deep rural coverage: all but one path dark, the "
                    "survivor throttled to a thin pipe.",
        build_plan=_rural_single_path,
        expectations=Expectations(min_delivery=0.25,
                                  require_health_transitions=True),
        qoe_shape="rate-limited video on one thin path, no wedge",
    ),
    Scenario(
        name="bandwidth_cliff",
        title="Bandwidth cliff",
        description="Every path's capacity collapses to 15 % at the "
                    "congested cell edge; queues build and delay inherits.",
        build_plan=_bandwidth_cliff,
        expectations=Expectations(min_delivery=0.5),
        qoe_shape="delay balloon through the cliff, delivery mostly intact",
    ),
    Scenario(
        name="reorder_storm",
        title="Reorder storm",
        description="Heavy cross-path jitter plus duplication: wild arrival "
                    "orders against the decoder and range lifecycle.",
        build_plan=_reorder_storm,
        expectations=Expectations(min_delivery=0.6),
        qoe_shape="jittery packet delay CDF, duplicates discarded cleanly",
    ),
)

#: Name -> Scenario lookup (built once at import; never mutated).
_BY_NAME: Dict[str, Scenario] = {s.name: s for s in SCENARIOS}


def scenario_names() -> Tuple[str, ...]:
    return tuple(s.name for s in SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError("unknown scenario %r (choose from %s)"
                       % (name, ", ".join(scenario_names())))


def catalog_rows() -> List[List[str]]:
    """The docs/CLI catalog table: name, faults, invariants, QoE shape."""
    rows = []
    for s in SCENARIOS:
        plan = s.build_plan(s.duration, s.path_count)
        kinds = sorted({e.kind for e in plan})
        exp = s.expectations
        invariants = ["delivery>=%.2f" % exp.min_delivery]
        if exp.require_nat_flush:
            invariants.append("nat-flush")
        if exp.require_health_transitions:
            invariants.append("health-activity")
        if not exp.allow_terminal:
            invariants.append("no-wedge")
        rows.append([s.name, "+".join(kinds), " ".join(invariants),
                     s.qoe_shape])
    return rows


# -- the runner -------------------------------------------------------------

def _migration_extras(seed: int) -> Dict[str, object]:
    """Deterministic control-plane side of the PoP-drain scenario.

    Two-PoP layout 400 km apart; the vehicle starts on PoP A, drives a
    straight route toward PoP B, and :class:`~repro.cloud.migration.
    MigrationManager` executes exactly one make-before-break migration
    once the 100 km improvement holds for 2 s.  Afterwards PoP A is
    drained and fails its heartbeat; the device must *not* need a
    failover, because it already migrated.
    """
    from ..cloud.controller import Controller
    from ..cloud.migration import MigrationManager, drive_with_migration
    from ..cloud.pop import default_pop_grid

    pops = default_pop_grid(1, ("region-A", "region-B"))
    controller = Controller()
    for pop in pops:
        controller.register_pop(pop)
        controller.heartbeat(pop.pop_id, 0, 0.0)
    device_id = "scenario-veh-%d" % seed
    token = controller.register_device(device_id)
    origin_pop, far_pop = pops[0], pops[-1]
    choice = controller.place(device_id, token, origin_pop.location)
    origin = choice.pop_id if choice else None
    # straight-line drive toward the far PoP, one sample per second;
    # improvement=0.0005 (~100 km closer) holds from ~x=250 km, so the
    # 2 s hysteresis fires exactly once, mid-route
    steps = 16
    x0, y0 = origin_pop.location
    x1, y1 = far_pop.location
    route = [(x0 + (x1 - x0) * i / (steps - 1),
              y0 + (y1 - y0) * i / (steps - 1)) for i in range(steps)]
    manager = MigrationManager(controller, device_id, token,
                               improvement=0.0005, hold=2.0)
    events = drive_with_migration(controller, device_id, token, route,
                                  manager=manager)
    switches_after_migration = controller.failovers
    # drain the origin: administratively, then via a missed heartbeat
    drained: List[str] = []
    if origin is not None:
        controller.drain(origin)
        for tick in range(1, 4):
            now = float(steps + 10 * tick)
            for pop in pops:
                if pop.pop_id != origin:
                    controller.heartbeat(pop.pop_id, pop.active_sessions, now)
            drained.extend(controller.check_health(now))
    # liveness: the already-migrated device survives the drain without
    # another reassignment
    final = controller.failover(device_id, token, now=float(steps + 40))
    return {
        "migrations": len(events),
        "migrated_to": events[-1].to_pop if events else None,
        "origin_pop": origin,
        "drained_pops": sorted(set(drained)),
        "final_pop": final.pop_id if final is not None else None,
        "extra_failovers": controller.failovers - switches_after_migration,
    }


def _telemetry_fault_counts(report: SoakReport) -> Dict[str, int]:
    """Fault/health event counts off the soak's telemetry trace."""
    tel = report.telemetry
    if tel is None or not getattr(tel, "enabled", False):
        return {}
    counts: Dict[str, int] = {}
    for ev in tel.trace.events("fault"):
        key = "fault.%s.%s" % ((ev.attrs or {}).get("fault", "?"),
                               (ev.attrs or {}).get("phase", "?"))
        counts[key] = counts.get(key, 0) + 1
    counts["path_health"] = len(tel.trace.events("path_health"))
    return counts


def run_scenario(
    scenario,
    seed: int = 1,
    duration: Optional[float] = None,
    transport: Optional[str] = None,
    sanitize=True,
    smoke: bool = False,
) -> ScenarioResult:
    """Run one zoo scenario end to end and evaluate its oracles.

    ``scenario`` is a :class:`Scenario` or a registry name.  ``smoke``
    selects the scenario's short duration (CI stage 8); an explicit
    ``duration`` overrides both.  The result's digest is the soak
    digest: the same call must reproduce it byte for byte.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    dur = duration if duration is not None else (
        scenario.smoke_duration if smoke else scenario.duration)
    tname = transport or scenario.transport
    plan = scenario.build_plan(dur, scenario.path_count)
    plan.validate(path_count=scenario.path_count)
    report = run_chaos_soak(
        seed,
        duration=dur,
        transport=tname,
        path_count=scenario.path_count,
        plan=plan,
        telemetry=scenario.needs_telemetry,
        sanitize=sanitize,
    )
    verdicts = evaluate_oracles(report, plan, scenario.expectations)
    extras: Dict[str, object] = {}
    if scenario.name == "pop_drain_migration":
        extras.update(_migration_extras(seed))
        extras["telemetry"] = _telemetry_fault_counts(report)
    return ScenarioResult(
        scenario=scenario.name,
        seed=seed,
        transport=tname,
        duration=dur,
        report=report,
        verdicts=verdicts,
        extras=extras,
    )
