"""Simulated QUIC substrate: varints, RTT, ACKs, packets, congestion control."""

from .ack import AckRangeTracker
from .connection import (
    ConnectionIdManager,
    HandshakeError,
    QuicConnection,
    TransportParameters,
    establish_tunnel_connection,
)
from .packet import AckFrame, PingFrame, QuicPacket, TUNNEL_OVERHEAD, TUN_MTU
from .rtt import RttEstimator
from .varint import decode_varint, encode_varint, varint_size
from .wire import ParsedPacket, WireError, parse_packet, serialize_packet

__all__ = [
    "AckRangeTracker",
    "ConnectionIdManager",
    "HandshakeError",
    "QuicConnection",
    "TransportParameters",
    "establish_tunnel_connection",
    "AckFrame",
    "PingFrame",
    "QuicPacket",
    "TUNNEL_OVERHEAD",
    "TUN_MTU",
    "RttEstimator",
    "decode_varint",
    "encode_varint",
    "varint_size",
    "ParsedPacket",
    "WireError",
    "parse_packet",
    "serialize_packet",
]
