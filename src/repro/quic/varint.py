"""QUIC variable-length integers (RFC 9000 §16).

The two most significant bits of the first byte select the encoding
length: 00 -> 1 byte, 01 -> 2, 10 -> 4, 11 -> 8.  Values up to 2^62 - 1.
"""

from __future__ import annotations

__all__ = [
    "VarintError",
    "encode_varint",
    "decode_varint",
    "varint_size",
]

VARINT_MAX = 2 ** 62 - 1


class VarintError(Exception):
    """Value out of range or truncated buffer."""


def encode_varint(value: int) -> bytes:
    """Encode ``value`` in the shortest QUIC varint form."""
    if not 0 <= value <= VARINT_MAX:
        raise VarintError("varint out of range: %r" % value)
    if value < 0x40:
        return bytes([value])
    if value < 0x4000:
        return bytes([0x40 | (value >> 8), value & 0xFF])
    if value < 0x40000000:
        return bytes(
            [0x80 | (value >> 24), (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF]
        )
    out = bytearray(8)
    for i in range(7, -1, -1):
        out[i] = value & 0xFF
        value >>= 8
    out[0] |= 0xC0
    return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, bytes consumed)."""
    if offset >= len(data):
        raise VarintError("empty buffer")
    first = data[offset]
    length = 1 << (first >> 6)
    if offset + length > len(data):
        raise VarintError("truncated varint")
    value = first & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, length


def varint_size(value: int) -> int:
    """Bytes the varint encoding of ``value`` occupies."""
    if not 0 <= value <= VARINT_MAX:
        raise VarintError("varint out of range: %r" % value)
    if value < 0x40:
        return 1
    if value < 0x4000:
        return 2
    if value < 0x40000000:
        return 4
    return 8
