"""QUIC packet and frame model for the simulator.

Packets are typed Python objects with faithful *sizes* rather than real
ciphertext: the evaluation depends on bytes-on-the-wire, timing, and loss,
not on actual encryption.  Header overheads follow the paper's accounting
(Appx. E: IP + UDP + QUIC + XNC headers total at most 60 bytes).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..core.frames import XncNcFrame

__all__ = [
    "TUNNEL_OVERHEAD",
    "AckFrame",
    "PingFrame",
    "QuicPacket",
]

#: Wire overheads in bytes.
IP_HEADER_SIZE = 20
UDP_HEADER_SIZE = 8
#: Short-header QUIC: flags(1) + DCID(8) + packet number(3) + AEAD tag(16).
QUIC_HEADER_SIZE = 28
#: Total tunnel overhead excluding the XNC_Header (which frames carry).
TUNNEL_OVERHEAD = IP_HEADER_SIZE + UDP_HEADER_SIZE + QUIC_HEADER_SIZE
#: Device MTU and the tun MTU after the Appx. E adjustment (1500 - 60).
DEVICE_MTU = 1500
TUN_MTU = 1440

_packet_counter = itertools.count(1)


@dataclass(frozen=True)
class AckFrame:
    """An ACK for one path's packet-number space.

    ``ranges`` is a tuple of inclusive (low, high) packet-number ranges,
    highest first, mirroring RFC 9000's largest-acknowledged-first layout.
    """

    path_id: int
    largest: int
    ack_delay: float
    ranges: Tuple[Tuple[int, int], ...]

    @property
    def wire_size(self) -> int:
        # type + largest + delay + count + first range + (gap, len) pairs
        return 8 + 4 * max(0, len(self.ranges) - 1) * 2

    def acked_numbers(self) -> List[int]:
        out: List[int] = []
        for low, high in self.ranges:
            out.extend(range(low, high + 1))
        return out


@dataclass(frozen=True)
class PingFrame:
    """Keep-alive / RTT probe frame."""

    wire_size: int = 1


Frame = Union[AckFrame, XncNcFrame, PingFrame]


@dataclass
class QuicPacket:
    """A short-header QUIC packet travelling on one path."""

    path_id: int
    packet_number: int
    frames: List[Frame] = field(default_factory=list)
    sent_time: float = 0.0
    connection_id: int = 0
    uid: int = field(default_factory=lambda: next(_packet_counter))

    @property
    def wire_size(self) -> int:
        """Total bytes on the wire including IP/UDP/QUIC headers."""
        return TUNNEL_OVERHEAD + sum(f.wire_size for f in self.frames)

    @property
    def is_ack_eliciting(self) -> bool:
        return any(not isinstance(f, AckFrame) for f in self.frames)

    def ack_frames(self) -> List[AckFrame]:
        return [f for f in self.frames if isinstance(f, AckFrame)]

    def xnc_frames(self) -> List[XncNcFrame]:
        return [f for f in self.frames if isinstance(f, XncNcFrame)]
