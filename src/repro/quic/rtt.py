"""Per-path RTT estimation (RFC 9002 §5).

Maintains latest/min/smoothed RTT and RTT variance with the standard
EWMA update, honouring the peer's reported ACK delay for non-minimal
samples.  One estimator per path; XNC's QoE-aware loss threshold and the
PTO both read from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "INITIAL_RTT",
    "RttEstimator",
]

#: RFC 9002 recommended initial RTT before any sample exists.
INITIAL_RTT = 0.333


@dataclass
class RttEstimator:
    """RFC 9002-style RTT statistics for a single network path."""

    initial_rtt: float = INITIAL_RTT
    latest_rtt: float = field(init=False, default=0.0)
    min_rtt: float = field(init=False, default=float("inf"))
    smoothed_rtt: float = field(init=False, default=0.0)
    rtt_var: float = field(init=False, default=0.0)
    samples: int = field(init=False, default=0)
    # memoised default-argument pto(); invalidated on every update().  The
    # loss detector and path-liveness checks call pto() once per candidate
    # packet, far more often than new samples arrive.
    _pto_cache: float = field(init=False, default=-1.0, repr=False)

    def __post_init__(self):
        if self.initial_rtt <= 0:
            raise ValueError("initial_rtt must be positive")
        self.smoothed_rtt = self.initial_rtt
        self.rtt_var = self.initial_rtt / 2

    @property
    def has_samples(self) -> bool:
        return self.samples > 0

    def update(self, rtt_sample: float, ack_delay: float = 0.0) -> None:
        """Fold one RTT sample in (RFC 9002 §5.3)."""
        if rtt_sample <= 0:
            return
        self._pto_cache = -1.0
        self.samples += 1
        self.latest_rtt = rtt_sample
        self.min_rtt = min(self.min_rtt, rtt_sample)
        # only subtract ack_delay when it doesn't take us below min_rtt
        adjusted = rtt_sample
        if adjusted >= self.min_rtt + ack_delay:
            adjusted -= ack_delay
        if self.samples == 1:
            self.smoothed_rtt = adjusted
            self.rtt_var = adjusted / 2
            return
        self.rtt_var = 0.75 * self.rtt_var + 0.25 * abs(self.smoothed_rtt - adjusted)
        self.smoothed_rtt = 0.875 * self.smoothed_rtt + 0.125 * adjusted

    def pto(self, max_ack_delay: float = 0.025, granularity: float = 0.001) -> float:
        """Probe timeout interval (RFC 9002 §6.2)."""
        if max_ack_delay == 0.025 and granularity == 0.001:
            cached = self._pto_cache
            if cached >= 0.0:
                return cached
            cached = self.smoothed_rtt + max(4 * self.rtt_var, granularity) + max_ack_delay
            self._pto_cache = cached
            return cached
        return self.smoothed_rtt + max(4 * self.rtt_var, granularity) + max_ack_delay

    def as_tuple(self) -> tuple:
        """(smoothed_rtt, rtt_var) — the pair the loss detector consumes."""
        return (self.smoothed_rtt, self.rtt_var)
