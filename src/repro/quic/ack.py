"""Receiver-side ACK tracking per path packet-number space.

Each path of a multipath QUIC connection has its own packet-number space
(per the IETF multipath draft the paper builds on), so the server keeps
one :class:`AckRangeTracker` per path and periodically emits
:class:`AckFrame`s on the reverse direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .packet import AckFrame

__all__ = [
    "MAX_ACK_RANGES",
    "AckRangeTracker",
]

#: Cap on ranges carried per ACK frame (RFC 9000 implementations bound this).
MAX_ACK_RANGES = 32


class AckRangeTracker:
    """Collects received packet numbers into maximal inclusive ranges."""

    def __init__(self, path_id: int):
        self.path_id = path_id
        # sorted, disjoint, non-adjacent inclusive ranges
        self._ranges: List[List[int]] = []
        self.largest: int = -1
        self.largest_recv_time: float = 0.0
        self._dirty = False

    @property
    def has_unacked(self) -> bool:
        """True when new packet numbers arrived since the last ACK emit."""
        return self._dirty

    def range_count(self) -> int:
        return len(self._ranges)

    def on_received(self, packet_number: int, now: float) -> bool:
        """Record one packet number; returns False for duplicates."""
        if packet_number < 0:
            raise ValueError("packet numbers are non-negative")
        if packet_number > self.largest:
            self.largest = packet_number
            self.largest_recv_time = now
        # locate insertion point among ranges
        lo, hi = 0, len(self._ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ranges[mid][1] < packet_number:
                lo = mid + 1
            else:
                hi = mid
        idx = lo
        if idx < len(self._ranges) and self._ranges[idx][0] <= packet_number <= self._ranges[idx][1]:
            return False
        merged_prev = idx > 0 and self._ranges[idx - 1][1] == packet_number - 1
        merged_next = idx < len(self._ranges) and self._ranges[idx][0] == packet_number + 1
        if merged_prev and merged_next:
            self._ranges[idx - 1][1] = self._ranges[idx][1]
            del self._ranges[idx]
        elif merged_prev:
            self._ranges[idx - 1][1] = packet_number
        elif merged_next:
            self._ranges[idx][0] = packet_number
        else:
            self._ranges.insert(idx, [packet_number, packet_number])
        self._dirty = True
        return True

    def is_received(self, packet_number: int) -> bool:
        for low, high in self._ranges:
            if low <= packet_number <= high:
                return True
            if low > packet_number:
                return False
        return False

    def build_ack(self, now: float, force: bool = False) -> Optional[AckFrame]:
        """Emit an ACK frame covering the newest ranges, highest first."""
        if not self._ranges:
            return None
        if not self._dirty and not force:
            return None
        newest_first = [tuple(r) for r in reversed(self._ranges)][:MAX_ACK_RANGES]
        self._dirty = False
        ack_delay = max(0.0, now - self.largest_recv_time)
        return AckFrame(
            path_id=self.path_id,
            largest=self.largest,
            ack_delay=ack_delay,
            ranges=tuple(newest_first),
        )

    def forget_below(self, packet_number: int) -> None:
        """Drop state for old packet numbers (keeps the tracker bounded)."""
        kept = []
        for low, high in self._ranges:
            if high < packet_number:
                continue
            kept.append([max(low, packet_number), high])
        self._ranges = kept
