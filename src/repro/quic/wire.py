"""Byte-level QUIC packet serialisation (RFC 9000 short header).

The simulator normally passes typed :class:`QuicPacket` objects between
endpoints (only sizes matter for the evaluation), but the wire format is
part of the system: this module serialises and parses real bytes so the
formats are pinned by tests and an implementation in another language
could interoperate.

Short-header layout::

    0x4X | DCID (8) | packet number (3) | frames... | AEAD tag (16)

Frames:

* ``0x01`` PING
* ``0x02`` ACK — largest (varint), ack_delay in µs (varint),
  range_count (varint), first_range (varint), then (gap, len) varint
  pairs per RFC 9000 §19.3;
* ``0x30/0x31`` DATAGRAM (RFC 9221);
* ``0x32`` XNC_NC (CellFusion; see ``repro.core.frames``).

Encryption is out of scope — the 16-byte tag is zeros — but sizes match
a real AEAD-protected packet, which is what the emulation consumes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..core.frames import FRAME_XNC_NC, FrameError, XncNcFrame
from ..hotpath import hot_path
from .packet import AckFrame, PingFrame, QuicPacket
from .varint import decode_varint, encode_varint

__all__ = [
    "WireError",
    "serialize_packet",
    "ParsedPacket",
    "parse_packet",
]

FRAME_PING = 0x01
FRAME_ACK = 0x02

HEADER_FLAGS = 0x42  # short header, 3-byte packet number
DCID_LEN = 8
PN_LEN = 3
AEAD_TAG_LEN = 16
#: ACK delay exponent of 3 (RFC 9000 default): delay unit is 8 µs.
ACK_DELAY_UNIT = 8e-6


class WireError(Exception):
    """Malformed packet bytes."""


#: Flags byte + u64 connection ID, packed/unpacked in one struct call.
_PKT_HEADER = struct.Struct("!BQ")

#: PingFrame is frozen and fieldless-in-practice; parsing reuses one
#: instance instead of allocating per PING on the hot path.
_PING = PingFrame()


def _encode_ack(ack: AckFrame) -> bytes:
    if not ack.ranges:
        raise WireError("ACK frame needs at least one range")
    out = bytearray([FRAME_ACK])
    # we don't carry path on the wire explicitly; the multipath draft
    # scopes ACKs by the path the packet arrives on — but to keep parsing
    # self-contained we prepend the path id as a varint (an extension
    # field a real deployment would negotiate)
    out += encode_varint(ack.path_id)
    out += encode_varint(ack.largest)
    out += encode_varint(int(max(ack.ack_delay, 0.0) / ACK_DELAY_UNIT))
    ranges = list(ack.ranges)  # highest-first (low, high) pairs
    out += encode_varint(len(ranges) - 1)
    first_low, first_high = ranges[0]
    if first_high != ack.largest:
        raise WireError("first ACK range must end at largest")
    out += encode_varint(first_high - first_low)
    prev_low = first_low
    for low, high in ranges[1:]:
        gap = prev_low - high - 2
        if gap < 0:
            raise WireError("ACK ranges must be descending and disjoint")
        out += encode_varint(gap)
        out += encode_varint(high - low)
        prev_low = low
    return bytes(out)


def _decode_ack(data: bytes, offset: int) -> Tuple[AckFrame, int]:
    start = offset
    offset += 1  # frame type
    path_id, n = decode_varint(data, offset)
    offset += n
    largest, n = decode_varint(data, offset)
    offset += n
    delay_units, n = decode_varint(data, offset)
    offset += n
    extra_ranges, n = decode_varint(data, offset)
    offset += n
    first_len, n = decode_varint(data, offset)
    offset += n
    ranges = [(largest - first_len, largest)]
    prev_low = largest - first_len
    for _ in range(extra_ranges):
        gap, n = decode_varint(data, offset)
        offset += n
        length, n = decode_varint(data, offset)
        offset += n
        high = prev_low - gap - 2
        low = high - length
        if low < 0:
            raise WireError("ACK range underflow")
        ranges.append((low, high))  # lint: hot-ok(the (low, high) pair IS the parse result; nothing to hoist or reuse)
        prev_low = low
    ack = AckFrame(
        path_id=path_id,
        largest=largest,
        ack_delay=delay_units * ACK_DELAY_UNIT,
        ranges=tuple(ranges),
    )
    return ack, offset - start


@hot_path
def serialize_packet(packet: QuicPacket) -> bytes:
    """Serialise a short-header packet to bytes."""
    if packet.packet_number < 0:
        pn = 0  # ACK-only packets use pn 0 in the unprotected space
    else:
        pn = packet.packet_number & 0xFFFFFF
    out = bytearray(_PKT_HEADER.pack(HEADER_FLAGS,
                                     packet.connection_id & 0xFFFFFFFFFFFFFFFF))
    out += pn.to_bytes(PN_LEN, "big")
    for frame in packet.frames:
        if isinstance(frame, AckFrame):
            out += _encode_ack(frame)
        elif isinstance(frame, XncNcFrame):
            out += frame.encode()
        elif isinstance(frame, PingFrame):
            out.append(FRAME_PING)
        else:
            raise WireError("unserialisable frame %r" % (frame,))
    out += bytes(AEAD_TAG_LEN)
    return bytes(out)


@dataclass
class ParsedPacket:
    """Result of :func:`parse_packet`."""

    connection_id: int
    packet_number: int
    frames: List[Union[AckFrame, XncNcFrame, PingFrame]]

    def to_quic_packet(self, path_id: int = 0) -> QuicPacket:
        return QuicPacket(
            path_id=path_id,
            packet_number=self.packet_number,
            frames=list(self.frames),
            connection_id=self.connection_id,
        )


@hot_path
def parse_packet(data: bytes) -> ParsedPacket:
    """Parse bytes produced by :func:`serialize_packet`."""
    min_len = 1 + DCID_LEN + PN_LEN + AEAD_TAG_LEN
    if len(data) < min_len:
        raise WireError("packet too short")
    if data[0] & 0xC0 != 0x40:
        raise WireError("not a short-header packet")
    _flags, cid = _PKT_HEADER.unpack_from(data, 0)
    pn = int.from_bytes(data[1 + DCID_LEN : 1 + DCID_LEN + PN_LEN], "big")
    offset = 1 + DCID_LEN + PN_LEN
    end = len(data) - AEAD_TAG_LEN
    frames: List[Union[AckFrame, XncNcFrame, PingFrame]] = []
    try:
        while offset < end:
            ftype = data[offset]
            if ftype == FRAME_PING:
                frames.append(_PING)
                offset += 1
            elif ftype == FRAME_ACK:
                ack, consumed = _decode_ack(data, offset)
                frames.append(ack)
                offset += consumed
            elif ftype == FRAME_XNC_NC:
                frame, consumed = XncNcFrame.decode_from(data, offset, end)
                frames.append(frame)
                offset += consumed
            else:
                raise WireError("unknown frame type 0x%02x" % ftype)
    except FrameError as exc:
        # one handler for the whole frame walk: any FrameError aborts the
        # parse, so hoisting the try out of the loop changes nothing
        raise WireError(str(exc))
    return ParsedPacket(connection_id=cid, packet_number=pn, frames=frames)
