"""QUIC connection establishment and parameter negotiation.

The tunnel endpoints (client on the CPE, server in the proxy) assume an
established multipath QUIC connection.  This module models how that
connection comes to exist — the parts of RFC 9000 / RFC 9221 / the
multipath draft that CellFusion's bring-up depends on:

* **transport parameters** — both sides advertise support for DATAGRAM
  frames (``max_datagram_frame_size``), the multipath extension
  (``enable_multipath``, ``initial_max_paths``) and — CellFusion's
  private extension — the XNC coefficient-PRNG family, so the sender and
  receiver provably agree on the ``g_s(i)`` stream (§4.3.2);
* **connection IDs** — the server issues one CID per path (per the
  multipath draft) so the proxy's CID→tenant mapping (§6.2) has stable
  keys;
* a one-RTT handshake over the emulated path, after which both sides are
  ESTABLISHED and paths can be added up to the negotiated maximum;
* an idle timeout that closes abandoned connections.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from ..emulation.events import EventLoop
from ..obs import NULL_TELEMETRY
from ..sanitizer import sanitizer_or_default

__all__ = [
    "XNC_PRNG_MINSTD",
    "HandshakeError",
    "TransportParameters",
    "ConnectionIdManager",
    "QuicConnection",
    "establish_tunnel_connection",
]

#: XNC's coefficient-generator family tag (both ends must match).
XNC_PRNG_MINSTD = "minstd-gf256"

#: Minimum idle-timer re-arm interval (RFC 9002's kGranularity, 1 ms).
IDLE_TIMER_GRANULARITY = 0.001

_cid_counter = itertools.count(0x1000)


class HandshakeError(Exception):
    """Negotiation failed (incompatible parameters)."""


@dataclass(frozen=True)
class TransportParameters:
    """The negotiable subset of transport parameters CellFusion needs."""

    max_datagram_frame_size: int = 1500
    enable_multipath: bool = True
    initial_max_paths: int = 4
    idle_timeout: float = 30.0
    xnc_prng: str = XNC_PRNG_MINSTD

    def negotiate(self, peer: "TransportParameters") -> "TransportParameters":
        """Combine local and peer parameters into the effective set.

        Datagram size and path count take the minimum; multipath requires
        both sides; mismatched PRNG families abort the handshake because
        coded packets would be undecodable.
        """
        if self.max_datagram_frame_size == 0 or peer.max_datagram_frame_size == 0:
            raise HandshakeError("peer does not support QUIC-Datagram (RFC 9221)")
        if self.xnc_prng != peer.xnc_prng:
            raise HandshakeError(
                "XNC PRNG mismatch: %s vs %s" % (self.xnc_prng, peer.xnc_prng)
            )
        return TransportParameters(
            max_datagram_frame_size=min(self.max_datagram_frame_size, peer.max_datagram_frame_size),
            enable_multipath=self.enable_multipath and peer.enable_multipath,
            initial_max_paths=min(self.initial_max_paths, peer.initial_max_paths),
            idle_timeout=min(self.idle_timeout, peer.idle_timeout),
            xnc_prng=self.xnc_prng,
        )


@dataclass
class ConnectionId:
    """One issued connection ID with its sequence number and path binding."""

    value: int
    sequence: int
    path_id: Optional[int] = None
    retired: bool = False


class ConnectionIdManager:
    """Issues and retires CIDs (RFC 9000 §5.1, one per path for MP)."""

    def __init__(self):
        self._cids: Dict[int, ConnectionId] = {}
        self._next_sequence = 0

    def issue(self, path_id: Optional[int] = None) -> ConnectionId:
        cid = ConnectionId(value=next(_cid_counter), sequence=self._next_sequence, path_id=path_id)
        self._next_sequence += 1
        self._cids[cid.value] = cid
        return cid

    def retire(self, value: int) -> None:
        cid = self._cids.get(value)
        if cid is not None:
            cid.retired = True

    def active(self) -> List[ConnectionId]:
        return [c for c in self._cids.values() if not c.retired]

    def for_path(self, path_id: int) -> Optional[ConnectionId]:
        for c in self._cids.values():
            if c.path_id == path_id and not c.retired:
                return c
        return None


class QuicConnection:
    """Connection state machine: handshake, paths, idle timeout."""

    IDLE, HANDSHAKING, ESTABLISHED, CLOSED = "idle", "handshaking", "established", "closed"

    #: Legal lifecycle edges (the server skips HANDSHAKING: it goes
    #: ESTABLISHED on the client hello; either side may close from any
    #: live state, and close() is idempotent).
    ALLOWED_TRANSITIONS = frozenset([
        (IDLE, HANDSHAKING),
        (IDLE, ESTABLISHED),
        (IDLE, CLOSED),
        (HANDSHAKING, ESTABLISHED),
        (HANDSHAKING, CLOSED),
        (ESTABLISHED, CLOSED),
        (CLOSED, CLOSED),
    ])

    def __init__(
        self,
        loop: EventLoop,
        is_client: bool,
        local_params: Optional[TransportParameters] = None,
        on_established: Optional[Callable[["QuicConnection"], None]] = None,
        sanitizer=None,
        telemetry=None,
    ):
        self.loop = loop
        self.is_client = is_client
        self.local_params = local_params or TransportParameters()
        self.negotiated: Optional[TransportParameters] = None
        self.on_established = on_established
        self.state = self.IDLE
        self.sanitizer = sanitizer_or_default(sanitizer, label="QuicConnection")
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._hs_span = 0
        self.cids = ConnectionIdManager()
        self.paths: List[int] = []
        self.last_activity = loop.now
        self._idle_handle = None
        self.peer: Optional["QuicConnection"] = None

    def _set_state(self, new: str) -> None:
        if self.sanitizer.enabled:
            self.sanitizer.check_state_transition(self.state, new,
                                                  self.ALLOWED_TRANSITIONS)
        self.state = new

    # -- handshake --------------------------------------------------------

    def connect(self, server: "QuicConnection", rtt: float = 0.050) -> None:
        """Client-side: run the 1-RTT handshake against ``server``."""
        if not self.is_client:
            raise HandshakeError("connect() is client-side")
        if self.state not in (self.IDLE,):
            raise HandshakeError("connection already %s" % self.state)
        self._set_state(self.HANDSHAKING)
        tel = self.telemetry
        if tel.enabled:
            sp = tel.spans
            if sp.enabled:
                self._hs_span = sp.open("handshake", self.loop.now, rtt=rtt)
        self.peer = server
        self.loop.call_later(rtt / 2, server._on_client_hello, self, rtt)

    def _on_client_hello(self, client: "QuicConnection", rtt: float) -> None:
        if self.is_client:
            raise HandshakeError("server role required")
        try:
            negotiated = self.local_params.negotiate(client.local_params)
        except HandshakeError:
            self._set_state(self.CLOSED)
            self.loop.call_later(rtt / 2, client._on_handshake_failed)
            raise
        self.negotiated = negotiated
        self.peer = client
        self._set_state(self.ESTABLISHED)
        self._finish_establish()
        self.loop.call_later(rtt / 2, client._on_server_hello, negotiated)

    def _on_server_hello(self, negotiated: TransportParameters) -> None:
        self.negotiated = negotiated
        self._set_state(self.ESTABLISHED)
        if self._hs_span:
            self.telemetry.spans.close(self._hs_span, self.loop.now,
                                       outcome="established",
                                       paths=negotiated.initial_max_paths)
        self._finish_establish()

    def _on_handshake_failed(self) -> None:
        self._set_state(self.CLOSED)
        if self._hs_span:
            self.telemetry.spans.close(self._hs_span, self.loop.now,
                                       outcome="failed")

    def _finish_establish(self) -> None:
        self.last_activity = self.loop.now
        # path 0 always exists post-handshake, with its own CID
        self.add_path()
        self._arm_idle_timer()
        if self.on_established is not None:
            self.on_established(self)

    # -- paths ----------------------------------------------------------------

    @property
    def max_paths(self) -> int:
        if self.negotiated is None:
            return 1
        return self.negotiated.initial_max_paths if self.negotiated.enable_multipath else 1

    def add_path(self) -> int:
        """Open one more path (up to the negotiated maximum)."""
        if self.state != self.ESTABLISHED:
            raise HandshakeError("connection not established")
        if len(self.paths) >= self.max_paths:
            raise HandshakeError("negotiated path limit (%d) reached" % self.max_paths)
        path_id = len(self.paths)
        self.paths.append(path_id)
        self.cids.issue(path_id)
        return path_id

    def cid_for_path(self, path_id: int) -> int:
        cid = self.cids.for_path(path_id)
        if cid is None:
            raise HandshakeError("no CID for path %d" % path_id)
        return cid.value

    # -- liveness ----------------------------------------------------------------

    def touch(self) -> None:
        """Record activity (any packet sent or received)."""
        self.last_activity = self.loop.now

    def _arm_idle_timer(self) -> None:
        if self.negotiated is None:
            return
        if self._idle_handle is not None:
            self._idle_handle.cancel()
        self._idle_handle = self.loop.call_later(self.negotiated.idle_timeout, self._idle_check)

    def _idle_check(self) -> None:
        if self.sanitizer.enabled:
            # catches the re-arm-at-identical-timestamp spin that the
            # granularity floor below exists to prevent
            self.sanitizer.check_timer_progress("idle-timer", self.loop.now)
        if self.state != self.ESTABLISHED or self.negotiated is None:
            return
        if self.loop.now - self.last_activity >= self.negotiated.idle_timeout:
            self.close()
            return
        remaining = self.negotiated.idle_timeout - (self.loop.now - self.last_activity)
        # floor the re-arm at the timer granularity: a sub-ulp ``remaining``
        # (idle_timeout - elapsed rounding to ~1e-16) would re-fire at the
        # same float timestamp forever and wedge the event loop
        self._idle_handle = self.loop.call_later(
            max(remaining, IDLE_TIMER_GRANULARITY), self._idle_check
        )

    def close(self) -> None:
        self._set_state(self.CLOSED)
        if self._idle_handle is not None:
            self._idle_handle.cancel()
            self._idle_handle = None


def establish_tunnel_connection(
    loop: EventLoop,
    rtt: float = 0.050,
    client_params: Optional[TransportParameters] = None,
    server_params: Optional[TransportParameters] = None,
    telemetry=None,
) -> tuple:
    """Convenience: build both ends, handshake, run the loop to completion.

    Returns (client_conn, server_conn), both ESTABLISHED with path 0 open.
    """
    client = QuicConnection(loop, is_client=True, local_params=client_params,
                            telemetry=telemetry)
    server = QuicConnection(loop, is_client=False, local_params=server_params,
                            telemetry=telemetry)
    client.connect(server, rtt=rtt)
    loop.run_until(loop.now + rtt * 2)
    if client.state != QuicConnection.ESTABLISHED:
        raise HandshakeError("handshake did not complete")
    return client, server
