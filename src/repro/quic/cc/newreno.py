"""NewReno congestion control (RFC 9002 §7) for the reliable baselines.

Slow start doubles per RTT (cwnd += acked bytes), congestion avoidance
grows one MSS per window, and a loss halves the window once per recovery
epoch.  Loss-based control is exactly why MPTCP/MPQUIC collapse on bursty
cellular links — keeping it faithful matters for the comparison figures.
"""

from __future__ import annotations

from .base import CongestionController, INITIAL_WINDOW, MIN_WINDOW

__all__ = ["NewRenoController"]


class NewRenoController(CongestionController):
    """RFC 9002-style NewReno with recovery epochs."""

    LOSS_REDUCTION_FACTOR = 0.5

    def __init__(self, mss: int = 1400):
        super().__init__(mss)
        self.ssthresh = float("inf")
        self._recovery_start = -1.0
        self._last_send_time = 0.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def _sent(self, size: int, now: float) -> None:
        self._last_send_time = now

    def _acked(self, size: int, rtt: float, now: float) -> None:
        if self.in_slow_start:
            self.cwnd += size
            return
        self.cwnd += self.mss * size // max(self.cwnd, 1)

    def _lost(self, size: int, now: float) -> None:
        # one window reduction per recovery epoch
        if now <= self._recovery_start:
            return
        self._recovery_start = now
        self.cwnd = max(MIN_WINDOW, int(self.cwnd * self.LOSS_REDUCTION_FACTOR))
        self.ssthresh = self.cwnd
