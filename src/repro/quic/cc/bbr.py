"""BBR congestion control (simplified, after Cardwell et al. [50]).

XNC uses BBR "due to its resilience to packet losses and its ability to
quickly grab available bandwidth" (§4.2).  This implementation keeps the
properties the evaluation depends on:

* model-based window: cwnd = cwnd_gain x max_bandwidth x min_rtt, so random
  loss does *not* shrink the window (unlike NewReno);
* STARTUP's 2/ln2 gain finds the link rate in a few RTTs;
* DRAIN empties the startup queue; PROBE_BW cycles pacing gains to track
  capacity changes; PROBE_RTT periodically re-measures the floor RTT.

Delivery rate is sampled from cumulative-delivered deltas over a short
window — a simplification of BBR's per-packet rate sampler that behaves
identically at the simulator's granularity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from .base import CongestionController, INITIAL_WINDOW, MIN_WINDOW

__all__ = [
    "STARTUP_GAIN",
    "BbrController",
]

#: BBR constants from the paper/reference implementation.
STARTUP_GAIN = 2.885  # 2/ln(2)
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
MIN_RTT_WINDOW = 10.0
PROBE_RTT_DURATION = 0.200
PROBE_RTT_CWND_PACKETS = 4
BW_FILTER_ROUNDS = 10
STARTUP_FULL_BW_THRESHOLD = 1.25
STARTUP_FULL_BW_ROUNDS = 3


@dataclass
class _BwSample:
    time: float
    delivered: int


class BbrController(CongestionController):
    """Simplified BBR over the common controller interface."""

    STARTUP, DRAIN, PROBE_BW, PROBE_RTT = "STARTUP", "DRAIN", "PROBE_BW", "PROBE_RTT"

    def __init__(self, mss: int = 1400):
        super().__init__(mss)
        self.state = self.STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN
        # bandwidth filter: (round_index, bw) samples, max over last rounds
        self._bw_samples: Deque[Tuple[int, float]] = deque()
        self.max_bandwidth = 0.0  # bytes/sec
        # delivery-rate sampling
        self._delivered_history: Deque[_BwSample] = deque()
        # min RTT filter
        self.min_rtt = float("inf")
        self._min_rtt_stamp = 0.0
        # round accounting (a round is one smoothed RTT of wall time)
        self._round = 0
        self._round_start = 0.0
        self._latest_rtt = 0.1
        # startup exit detection
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        # PROBE_BW cycling
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        # PROBE_RTT
        self._probe_rtt_done_stamp: Optional[float] = None
        self._saved_cwnd = INITIAL_WINDOW

    # -- helpers ---------------------------------------------------------

    def _bdp(self) -> float:
        if self.max_bandwidth <= 0 or self.min_rtt == float("inf"):
            return float(INITIAL_WINDOW)
        return self.max_bandwidth * self.min_rtt

    def _update_round(self, now: float) -> None:
        if now - self._round_start >= self._latest_rtt:
            self._round += 1
            self._round_start = now

    def _sample_bandwidth(self, now: float) -> None:
        self._delivered_history.append(_BwSample(now, self.delivered_bytes))
        window = max(self._latest_rtt, 0.05)
        while (
            len(self._delivered_history) > 2 and self._delivered_history[0].time < now - window
        ):
            self._delivered_history.popleft()
        first = self._delivered_history[0]
        span = now - first.time
        if span <= 0:
            return
        bw = (self.delivered_bytes - first.delivered) / span
        # windowed max over the last BW_FILTER_ROUNDS rounds, aggregated to
        # one (round, max) entry per round so the filter stays O(rounds).
        # max_bandwidth is maintained incrementally: per-round entries only
        # ever grow, so the filter max can change only when a new sample
        # exceeds it or an eviction removes the entry that held it.
        samples = self._bw_samples
        if samples and samples[-1][0] == self._round:
            if bw > samples[-1][1]:
                samples[-1] = (self._round, bw)
        else:
            samples.append((self._round, bw))
        cutoff = self._round - BW_FILTER_ROUNDS
        evicted_max = False
        while samples and samples[0][0] < cutoff:
            if samples[0][1] >= self.max_bandwidth:
                evicted_max = True
            samples.popleft()
        if evicted_max:
            mb = 0.0
            for _, b in samples:
                if b > mb:
                    mb = b
            self.max_bandwidth = mb
        elif bw > self.max_bandwidth:
            self.max_bandwidth = bw

    def _check_startup_done(self) -> None:
        if self.state != self.STARTUP:
            return
        if self.max_bandwidth >= self._full_bw * STARTUP_FULL_BW_THRESHOLD:
            self._full_bw = self.max_bandwidth
            self._full_bw_rounds = 0
            return
        self._full_bw_rounds += 1
        if self._full_bw_rounds >= STARTUP_FULL_BW_ROUNDS:
            self.state = self.DRAIN
            self.pacing_gain = DRAIN_GAIN
            self.cwnd_gain = STARTUP_GAIN

    def _maybe_enter_probe_bw(self, now: float) -> None:
        if self.state == self.DRAIN and self.bytes_in_flight <= self._bdp():
            self.state = self.PROBE_BW
            self.pacing_gain = 1.0
            self.cwnd_gain = 2.0
            self._cycle_index = 2
            self._cycle_stamp = now

    def _advance_probe_bw_cycle(self, now: float) -> None:
        if self.state != self.PROBE_BW:
            return
        interval = self.min_rtt if self.min_rtt != float("inf") else self._latest_rtt
        if now - self._cycle_stamp >= interval:
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
            self._cycle_stamp = now
            self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _maybe_probe_rtt(self, now: float) -> None:
        if self.state == self.PROBE_RTT:
            if self._probe_rtt_done_stamp is not None and now >= self._probe_rtt_done_stamp:
                self._min_rtt_stamp = now
                self.state = self.PROBE_BW
                self.pacing_gain = 1.0
                self.cwnd_gain = 2.0
                self.cwnd = max(self.cwnd, self._saved_cwnd)
            return
        if self.state == self.PROBE_BW and now - self._min_rtt_stamp > MIN_RTT_WINDOW:
            self.state = self.PROBE_RTT
            self._saved_cwnd = self.cwnd
            self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION

    def _set_cwnd(self) -> None:
        if self.state == self.PROBE_RTT:
            self.cwnd = PROBE_RTT_CWND_PACKETS * self.mss
            return
        target = self.cwnd_gain * self._bdp()
        self.cwnd = max(MIN_WINDOW, int(target))

    # -- controller hooks --------------------------------------------------

    def _acked(self, size: int, rtt: float, now: float) -> None:
        self._latest_rtt = rtt
        if rtt < self.min_rtt or now - self._min_rtt_stamp > MIN_RTT_WINDOW:
            self.min_rtt = min(rtt, self.min_rtt if now - self._min_rtt_stamp <= MIN_RTT_WINDOW else rtt)
            self._min_rtt_stamp = now
        self._update_round(now)
        self._sample_bandwidth(now)
        self._check_startup_done()
        self._maybe_enter_probe_bw(now)
        self._advance_probe_bw_cycle(now)
        self._maybe_probe_rtt(now)
        self._set_cwnd()

    def _lost(self, size: int, now: float) -> None:
        # BBR is rate-based: loss does not collapse the model window.  The
        # reference implementation bounds inflight on severe loss; we keep
        # the floor only.
        self.cwnd = max(MIN_WINDOW, self.cwnd)

    @property
    def pacing_rate(self) -> Optional[float]:
        if self.max_bandwidth <= 0:
            return None
        return self.pacing_gain * self.max_bandwidth
