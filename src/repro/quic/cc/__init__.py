"""Congestion controllers: BBR (XNC's choice) and baselines."""

from .base import CongestionController, DEFAULT_MSS, INITIAL_WINDOW, MIN_WINDOW
from .bbr import BbrController
from .cubic import CubicController
from .newreno import NewRenoController

__all__ = [
    "CongestionController",
    "DEFAULT_MSS",
    "INITIAL_WINDOW",
    "MIN_WINDOW",
    "BbrController",
    "CubicController",
    "NewRenoController",
]
