"""CUBIC congestion control (RFC 8312-style), for baseline variety.

Production QUIC stacks default to CUBIC more often than NewReno; having
it lets experiments separate "reliable in-order transport" effects from
"NewReno's conservatism".  The implementation follows RFC 8312's
essentials:

* window growth follows W(t) = C·(t − K)³ + W_max after a loss event,
  with K = cbrt(W_max·β/C) so the curve plateaus at the previous maximum
  before probing beyond it;
* TCP-friendly region: never slower than an emulated Reno flow;
* fast convergence: consecutive reductions shrink the remembered W_max;
* standard slow start until the first loss event.

Like NewReno (and unlike BBR), a loss event multiplies the window by β
= 0.7 — so on bursty cellular links CUBIC also collapses, just less
drastically than NewReno's 0.5.
"""

from __future__ import annotations

import math
from typing import Optional

from .base import CongestionController, INITIAL_WINDOW, MIN_WINDOW

__all__ = [
    "CUBIC_BETA",
    "CubicController",
]

#: RFC 8312 constants.
CUBIC_C = 0.4          # scaling constant (window units: MSS, time: s)
CUBIC_BETA = 0.7       # multiplicative decrease factor
FAST_CONVERGENCE = True


class CubicController(CongestionController):
    """RFC 8312 CUBIC over the common controller interface."""

    def __init__(self, mss: int = 1400):
        super().__init__(mss)
        self.ssthresh = float("inf")
        self._w_max = 0.0          # window at last reduction, in MSS
        self._k = 0.0              # time to reach w_max on the cubic curve
        self._epoch_start: Optional[float] = None
        self._recovery_start = -1.0
        # Reno-emulation state for the TCP-friendly region
        self._w_est = 0.0
        self._acked_in_epoch = 0.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def _cwnd_mss(self) -> float:
        return self.cwnd / self.mss

    def _acked(self, size: int, rtt: float, now: float) -> None:
        if self.in_slow_start:
            self.cwnd += size
            return
        if self._epoch_start is None:
            # first congestion-avoidance ack of this epoch
            self._epoch_start = now
            self._acked_in_epoch = 0.0
            cwnd_mss = self._cwnd_mss()
            if cwnd_mss < self._w_max:
                self._k = ((self._w_max - cwnd_mss) / CUBIC_C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self._w_max = cwnd_mss
            self._w_est = cwnd_mss
        t = now - self._epoch_start
        # cubic target one RTT ahead
        target = CUBIC_C * (t + rtt - self._k) ** 3 + self._w_max
        # TCP-friendly estimate: Reno grows ~1 MSS per RTT, approximated
        # per-ack as acked/cwnd with the 3(1-β)/(1+β) factor
        self._acked_in_epoch += size / self.mss
        reno_gain = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
        self._w_est += reno_gain * (size / max(self.cwnd, 1))
        cwnd_mss = self._cwnd_mss()
        grow_to = max(target, self._w_est)
        if grow_to > cwnd_mss:
            # approach the target over roughly one window of acks
            increment = (grow_to - cwnd_mss) / max(cwnd_mss, 1.0) * (size / self.mss)
            self.cwnd = int(self.cwnd + increment * self.mss)
        self.cwnd = max(MIN_WINDOW, self.cwnd)

    def _lost(self, size: int, now: float) -> None:
        if now <= self._recovery_start:
            return  # one reduction per recovery epoch
        self._recovery_start = now
        cwnd_mss = self._cwnd_mss()
        if FAST_CONVERGENCE and cwnd_mss < self._w_max:
            self._w_max = cwnd_mss * (1.0 + CUBIC_BETA) / 2.0
        else:
            self._w_max = cwnd_mss
        self.cwnd = max(MIN_WINDOW, int(self.cwnd * CUBIC_BETA))
        self.ssthresh = self.cwnd
        self._epoch_start = None
