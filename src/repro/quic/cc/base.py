"""Congestion-controller interface shared by BBR and the baselines.

Controllers track bytes in flight themselves: the endpoint reports every
send, ACK, and loss, and reads ``cwnd`` / ``can_send`` / ``available_window``
back.  Windows are in bytes; ``available_packets`` converts to the packet
budget the one-shot recovery planner consumes (§4.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DEFAULT_MSS",
    "INITIAL_WINDOW",
    "MIN_WINDOW",
    "CongestionController",
]

#: Conventional QUIC defaults.
DEFAULT_MSS = 1400
INITIAL_WINDOW = 10 * DEFAULT_MSS
MIN_WINDOW = 2 * DEFAULT_MSS


class CongestionController:
    """Base class: in-flight accounting plus the controller hooks."""

    def __init__(self, mss: int = DEFAULT_MSS):
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.bytes_in_flight = 0
        self.cwnd = INITIAL_WINDOW
        self.delivered_bytes = 0
        self.lost_bytes = 0

    # -- endpoint-facing API -------------------------------------------------

    def can_send(self, size: int) -> bool:
        """True when ``size`` more bytes fit in the window."""
        return self.bytes_in_flight + size <= self.cwnd

    def available_window(self) -> int:
        """Spare window in bytes."""
        return max(0, self.cwnd - self.bytes_in_flight)

    def available_packets(self) -> int:
        """Spare window in MSS-sized packets (recovery budget units)."""
        return self.available_window() // self.mss

    def on_sent(self, size: int, now: float) -> None:
        self.bytes_in_flight += size
        self._sent(size, now)

    def on_ack(self, size: int, rtt: float, now: float) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        self.delivered_bytes += size
        self._acked(size, rtt, now)

    def on_loss(self, size: int, now: float) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        self.lost_bytes += size
        self._lost(size, now)

    def on_expired(self, size: int) -> None:
        """Forget bytes that will never be acked nor declared lost again
        (XNC recovery packets are fire-and-forget)."""
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)

    # -- controller hooks ----------------------------------------------------

    def _sent(self, size: int, now: float) -> None:
        """Subclass hook on transmission."""

    def _acked(self, size: int, rtt: float, now: float) -> None:
        """Subclass hook on acknowledgement."""

    def _lost(self, size: int, now: float) -> None:
        """Subclass hook on loss."""

    @property
    def pacing_rate(self) -> Optional[float]:
        """Bytes/second pacing hint, or None for window-limited senders."""
        return None
