"""repro — a faithful Python reproduction of CellFusion (SIGCOMM 2023).

CellFusion streams real-time video from vehicles to the cloud by fusing
multiple cellular links into one overlay tunnel; its transport, **XNC**,
combines unreliable multipath QUIC with random linear network coding
applied only to loss recovery.

Quick start::

    from repro import run_stream

    result = run_stream("cellfusion", duration=20.0, seed=1)
    print(result.qoe.as_row())          # fps / stall ratio / SSIM
    print(result.redundancy_ratio)      # < 0.10 in the paper

Package layout:

* :mod:`repro.core` — XNC itself: GF(256), Q-RLNC codec, XNC frames,
  QoE-aware loss detection, encode ranges, one-shot recovery, endpoints.
* :mod:`repro.quic` — the QUIC substrate (varints, ACKs, RTT, BBR/NewReno).
* :mod:`repro.multipath` — path state and schedulers (minRTT, RE, ECF,
  XLINK, bonding).
* :mod:`repro.baselines` — the comparison transports of §8.
* :mod:`repro.emulation` — the trace-driven 4-path emulator and the
  synthetic cellular drive-trace generator.
* :mod:`repro.video` — video workload and QoE analysis.
* :mod:`repro.cpe` / :mod:`repro.cloud` — the system around the transport:
  in-vehicle CPE (tun, tunnel-client, modems) and the cloud-native
  back-end (proxies, SNAT, controller).
* :mod:`repro.experiments` — one-call harnesses per paper figure.
"""

from .core import (
    QoeLossPolicy,
    RangePolicy,
    RecoveryPolicy,
    RlncDecoder,
    RlncEncoder,
    XncConfig,
    XncTunnelClient,
    XncTunnelServer,
)
from .emulation import (
    EventLoop,
    LinkTrace,
    MultipathEmulator,
    generate_cellular_trace,
    generate_fleet_traces,
)
from .experiments import StreamRunResult, run_single_link_stream, run_stream
from .video import QoeReport, VideoConfig, analyze_qoe

__version__ = "1.0.0"

__all__ = [
    "QoeLossPolicy",
    "RangePolicy",
    "RecoveryPolicy",
    "RlncDecoder",
    "RlncEncoder",
    "XncConfig",
    "XncTunnelClient",
    "XncTunnelServer",
    "EventLoop",
    "LinkTrace",
    "MultipathEmulator",
    "generate_cellular_trace",
    "generate_fleet_traces",
    "StreamRunResult",
    "run_single_link_stream",
    "run_stream",
    "QoeReport",
    "VideoConfig",
    "analyze_qoe",
    "__version__",
]
