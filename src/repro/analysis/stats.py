"""Statistics helpers: percentiles, CDFs, per-second aggregation.

Thin, well-tested wrappers used by every benchmark so the numbers quoted
in EXPERIMENTS.md all come from one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "percentile",
    "tail_percentiles",
    "cdf",
    "delays_from_telemetry",
    "reduction_pct",
    "SeriesSummary",
    "per_second_bins",
    "loss_rate_per_second",
]


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0..100) with linear interpolation."""
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty sample")
    return float(np.percentile(arr, p))


def tail_percentiles(values: Sequence[float]) -> Dict[str, float]:
    """The paper's standard tail report: P50/P95/P99/P99.9."""
    return {
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "p99.9": percentile(values, 99.9),
    }


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative probability)."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def delays_from_telemetry(path: str) -> List[float]:
    """Per-packet capture-to-decode delays from a telemetry JSONL export.

    Pairs each ``app_in`` event with the first ``decoded`` event of the
    same app packet id (range-scoped decode events are expanded over
    their span), giving the Fig. 10a quantity straight from the trace —
    feed the result to :func:`tail_percentiles` or :func:`cdf`.
    """
    from ..obs import read_jsonl

    t_in: Dict[int, float] = {}
    t_out: Dict[int, float] = {}
    for rec in read_jsonl(path):
        if rec.get("type") != "event":
            continue
        kind = rec.get("kind")
        if kind == "app_in":
            t_in[rec["packet_id"]] = rec["t"]
        elif kind == "decoded":
            for pid in range(rec["packet_id"],
                             rec["packet_id"] + rec.get("count", 1)):
                t_out.setdefault(pid, rec["t"])
    return sorted(t_out[p] - t_in[p] for p in t_out if p in t_in)


def reduction_pct(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0


@dataclass
class SeriesSummary:
    """mean/std/min/max of one metric across repeated runs."""

    mean: float
    std: float
    min: float
    max: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "SeriesSummary":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("empty sample")
        return cls(float(arr.mean()), float(arr.std()), float(arr.min()), float(arr.max()), arr.size)

    def __str__(self) -> str:
        return "%.3f ± %.3f [%.3f, %.3f] (n=%d)" % (self.mean, self.std, self.min, self.max, self.n)


def _second_edges(t: np.ndarray, duration: Optional[float]) -> np.ndarray:
    """1 Hz bin edges covering ``[0, duration)`` and every sample in ``t``.

    Two edge cases both produce well-formed timelines instead of numpy
    errors or silently wrong buckets:

    * a zero-length run (``duration <= 0`` with no samples) yields a
      single edge, which callers turn into empty arrays;
    * ``np.histogram`` closes only its *last* bin on the right, so a
      sample landing exactly on the final edge (e.g. an event stamped
      precisely at ``duration``) would inflate the previous second — the
      edges are extended past the last sample so it gets its own bucket.
    """
    if duration is None:
        duration = float(t.max()) + 1.0 if t.size else 0.0
    end = float(np.ceil(max(duration, 0.0)))
    if t.size:
        end = max(end, float(np.floor(t.max())) + 1.0)
    return np.arange(0.0, end + 1.0)


def per_second_bins(
    times: Sequence[float], values: Optional[Sequence[float]] = None, duration: Optional[float] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate event times into 1 Hz bins.

    With ``values`` None, returns counts per second; otherwise the mean of
    ``values`` per second (NaN for empty seconds).  Zero-length runs give
    empty (but well-formed) arrays; samples exactly on the run-end
    boundary extend the timeline by one second rather than inflating the
    final bucket (see :func:`_second_edges`).
    """
    t = np.asarray(list(times), dtype=np.float64)
    edges = _second_edges(t, duration)
    if edges.size < 2:
        return edges[:0], edges[:0]
    counts, _ = np.histogram(t, bins=edges)
    if values is None:
        return edges[:-1], counts.astype(np.float64)
    v = np.asarray(list(values), dtype=np.float64)
    sums, _ = np.histogram(t, bins=edges, weights=v)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return edges[:-1], means


def loss_rate_per_second(
    sent_times: Sequence[float], recv_ids: set, sent_ids: Sequence[int], duration: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-second loss rate from (send time, id) pairs and a received-id set.

    Mirrors the §2.2 methodology: loss = 1 - received/sent within the
    second of transmission.  Shares :func:`_second_edges` with
    :func:`per_second_bins`: zero-length runs yield empty arrays, and a
    packet sent exactly at ``duration`` lands in its own second.
    """
    t = np.asarray(list(sent_times), dtype=np.float64)
    ids = list(sent_ids)
    if t.size != len(ids):
        raise ValueError("sent_times/sent_ids length mismatch")
    edges = _second_edges(t, duration)
    if edges.size < 2:
        return edges[:0], edges[:0]
    sent_counts, _ = np.histogram(t, bins=edges)
    got = np.asarray([1.0 if i in recv_ids else 0.0 for i in ids])
    got_counts, _ = np.histogram(t, bins=edges, weights=got)
    with np.errstate(invalid="ignore", divide="ignore"):
        rate = np.where(sent_counts > 0, 1.0 - got_counts / np.maximum(sent_counts, 1), np.nan)
    return edges[:-1], rate
