"""Statistics and reporting used by the figure benchmarks."""

from .plots import ascii_bars, ascii_cdf, ascii_series, frame_strip
from .report import format_percentiles, format_qoe_rows, format_table
from .stats import (
    SeriesSummary,
    cdf,
    loss_rate_per_second,
    per_second_bins,
    percentile,
    reduction_pct,
    tail_percentiles,
)

__all__ = [
    "ascii_bars",
    "ascii_cdf",
    "ascii_series",
    "frame_strip",
    "format_percentiles",
    "format_qoe_rows",
    "format_table",
    "SeriesSummary",
    "cdf",
    "loss_rate_per_second",
    "per_second_bins",
    "percentile",
    "reduction_pct",
    "tail_percentiles",
]
