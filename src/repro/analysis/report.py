"""Plain-text table rendering for benchmark output.

Every figure-reproduction benchmark prints its results through these
helpers so EXPERIMENTS.md rows can be regenerated verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "format_table",
    "format_qoe_rows",
    "format_percentiles",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_qoe_rows(results: Dict[str, "object"]) -> str:
    """Standard QoE table: one row per transport."""
    headers = ["transport", "avg FPS", "stall %", "SSIM", "redundancy %"]
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                "%.2f" % r.qoe.avg_fps,
                "%.2f" % (r.qoe.stall_ratio * 100),
                "%.3f" % r.qoe.ssim,
                "%.2f" % (r.redundancy_ratio * 100),
            ]
        )
    return format_table(headers, rows)


def format_percentiles(name: str, pct: Dict[str, float], unit: str = "ms") -> str:
    parts = ", ".join("%s=%.1f%s" % (k, v, unit) for k, v in pct.items())
    return "%s: %s" % (name, parts)
