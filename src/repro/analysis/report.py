"""Run reporting: ASCII tables and the self-contained HTML report.

Two layers share this module:

* the plain-text table helpers every figure-reproduction benchmark
  prints through, so EXPERIMENTS.md rows can be regenerated verbatim;
* the **zero-dependency HTML report** behind ``repro report`` — one
  file, no external assets or scripts, rendering inline-SVG delay CDFs,
  per-path timelines with fault overlays, the span-tree delay
  decomposition, and a causal span waterfall for the worst frames (see
  docs/telemetry.md for the "why was this frame late?" walkthrough).

Everything is deterministic: the same seeded run renders byte-identical
HTML (no wall clock, no randomness, stable float formatting).
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "format_table",
    "format_qoe_rows",
    "format_percentiles",
    "render_cdf_svg",
    "render_hist_cdf_svg",
    "render_series_svg",
    "render_timeline_svg",
    "render_waterfall_svg",
    "render_html_report",
    "write_html_report",
    "render_fleet_html_report",
    "write_fleet_html_report",
    "render_diff_html_report",
    "write_diff_html_report",
]

#: Stage palette (lifecycle order, matches repro.obs.aggregate.STAGES).
STAGE_COLORS = {
    "packetise": "#8da0cb",
    "queue": "#fc8d62",
    "recovery": "#e78ac3",
    "flight": "#66c2a5",
}

#: Per-path line palette (cycled by path id).
PATH_COLORS = ("#4e79a7", "#f28e2b", "#59a14f", "#b07aa1", "#e15759", "#76b7b2")

#: Fault-window overlay fill.
FAULT_FILL = "#d62728"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_qoe_rows(results: Dict[str, "object"]) -> str:
    """Standard QoE table: one row per transport."""
    headers = ["transport", "avg FPS", "stall %", "SSIM", "redundancy %"]
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                "%.2f" % r.qoe.avg_fps,
                "%.2f" % (r.qoe.stall_ratio * 100),
                "%.3f" % r.qoe.ssim,
                "%.2f" % (r.redundancy_ratio * 100),
            ]
        )
    return format_table(headers, rows)


def format_percentiles(name: str, pct: Dict[str, float], unit: str = "ms") -> str:
    parts = ", ".join("%s=%.1f%s" % (k, v, unit) for k, v in pct.items())
    return "%s: %s" % (name, parts)


# -- SVG primitives ---------------------------------------------------------
#
# All coordinates are formatted with %.2f so renders are byte-stable and
# diffs stay readable; every chart is a standalone <svg> element with its
# own coordinate box (no CSS dependencies beyond the inline stylesheet).

def _fmt(x: float) -> str:
    return ("%.2f" % x).rstrip("0").rstrip(".")


def _svg_open(width: int, height: int) -> str:
    return ('<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" '
            'viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">'
            % (width, height, width, height))


def _axis_label(x: float, y: float, text: str, anchor: str = "middle") -> str:
    return ('<text x="%s" y="%s" text-anchor="%s" fill="#555">%s</text>'
            % (_fmt(x), _fmt(y), anchor, escape(text)))


def render_cdf_svg(
    series: Dict[str, Sequence[float]],
    width: int = 460,
    height: int = 240,
    x_label: str = "delay (s)",
) -> str:
    """Empirical CDFs of one or more samples as an inline SVG.

    The x axis is linear from 0 to the global p99.9 (clipping the extreme
    tail keeps the body readable); each series is a step-free polyline
    with a legend entry.  Empty input renders a placeholder box.
    """
    pad_l, pad_r, pad_t, pad_b = 46, 12, 10, 32
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    named = [(name, sorted(float(v) for v in vals))
             for name, vals in series.items() if len(vals)]
    parts = [_svg_open(width, height)]
    parts.append('<rect x="%d" y="%d" width="%d" height="%d" fill="#fafafa" '
                 'stroke="#ccc"/>' % (pad_l, pad_t, plot_w, plot_h))
    if not named:
        parts.append(_axis_label(width / 2, height / 2, "(no samples)"))
        parts.append("</svg>")
        return "".join(parts)
    all_sorted = sorted(v for _, vals in named for v in vals)
    x_max = all_sorted[min(len(all_sorted) - 1,
                           int(0.999 * (len(all_sorted) - 1)))]
    if x_max <= 0:
        x_max = 1.0

    def sx(v: float) -> float:
        return pad_l + min(1.0, v / x_max) * plot_w

    def sy(p: float) -> float:
        return pad_t + (1.0 - p) * plot_h

    for frac in (0.0, 0.5, 0.95, 0.99, 1.0):
        y = sy(frac)
        parts.append('<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="#ddd"/>'
                     % (pad_l, _fmt(y), pad_l + plot_w, _fmt(y)))
        parts.append(_axis_label(pad_l - 4, y + 4, "%.2f" % frac, "end"))
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = pad_l + frac * plot_w
        parts.append(_axis_label(x, height - pad_b + 14, _fmt(frac * x_max)))
    parts.append(_axis_label(pad_l + plot_w / 2, height - 4, x_label))
    for i, (name, vals) in enumerate(named):
        color = PATH_COLORS[i % len(PATH_COLORS)]
        n = len(vals)
        pts = []
        step = max(1, n // 256)  # cap polyline size; endpoints always kept
        for j in range(0, n, step):
            pts.append("%s,%s" % (_fmt(sx(vals[j])), _fmt(sy((j + 1) / n))))
        pts.append("%s,%s" % (_fmt(sx(vals[-1])), _fmt(sy(1.0))))
        parts.append('<polyline points="%s" fill="none" stroke="%s" '
                     'stroke-width="1.5"/>' % (" ".join(pts), color))
        ly = pad_t + 14 + 14 * i
        parts.append('<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="%s" '
                     'stroke-width="2"/>' % (pad_l + 8, _fmt(ly - 4),
                                             pad_l + 28, _fmt(ly - 4), color))
        parts.append(_axis_label(pad_l + 32, ly, name, "start"))
    parts.append("</svg>")
    return "".join(parts)


def render_hist_cdf_svg(
    hists: Dict[str, "object"],
    width: int = 460,
    height: int = 240,
    x_label: str = "delay (s)",
) -> str:
    """CDFs straight from bucketed histograms (no sample expansion).

    Fleet-scale aggregates carry millions of observations as sparse
    bucket tables; this renders their CDFs from
    :meth:`~repro.obs.metrics.Histogram.iter_cdf` points directly, so
    the chart cost is O(buckets), not O(samples).  Layout matches
    :func:`render_cdf_svg`.
    """
    pad_l, pad_r, pad_t, pad_b = 46, 12, 10, 32
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    named = [(name, list(h.iter_cdf())) for name, h in hists.items()
             if h is not None and h.count]
    parts = [_svg_open(width, height)]
    parts.append('<rect x="%d" y="%d" width="%d" height="%d" fill="#fafafa" '
                 'stroke="#ccc"/>' % (pad_l, pad_t, plot_w, plot_h))
    if not named:
        parts.append(_axis_label(width / 2, height / 2, "(no samples)"))
        parts.append("</svg>")
        return "".join(parts)
    # clip the extreme tail like render_cdf_svg: x axis to the global ~p99.9
    x_max = 0.0
    for _, pts in named:
        for v, frac in pts:
            if frac <= 0.999:
                x_max = max(x_max, v)
    if x_max <= 0:
        x_max = max(v for _, pts in named for v, _ in pts) or 1.0

    def sx(v: float) -> float:
        return pad_l + min(1.0, v / x_max) * plot_w

    def sy(p: float) -> float:
        return pad_t + (1.0 - p) * plot_h

    for frac in (0.0, 0.5, 0.95, 0.99, 1.0):
        y = sy(frac)
        parts.append('<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="#ddd"/>'
                     % (pad_l, _fmt(y), pad_l + plot_w, _fmt(y)))
        parts.append(_axis_label(pad_l - 4, y + 4, "%.2f" % frac, "end"))
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = pad_l + frac * plot_w
        parts.append(_axis_label(x, height - pad_b + 14, _fmt(frac * x_max)))
    parts.append(_axis_label(pad_l + plot_w / 2, height - 4, x_label))
    for i, (name, pts) in enumerate(named):
        color = PATH_COLORS[i % len(PATH_COLORS)]
        poly = ["%s,%s" % (_fmt(sx(0.0)), _fmt(sy(0.0)))]
        poly.extend("%s,%s" % (_fmt(sx(v)), _fmt(sy(frac)))
                    for v, frac in pts)
        parts.append('<polyline points="%s" fill="none" stroke="%s" '
                     'stroke-width="1.5"/>' % (" ".join(poly), color))
        ly = pad_t + 14 + 14 * i
        parts.append('<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="%s" '
                     'stroke-width="2"/>' % (pad_l + 8, _fmt(ly - 4),
                                             pad_l + 28, _fmt(ly - 4), color))
        parts.append(_axis_label(pad_l + 32, ly, name, "start"))
    parts.append("</svg>")
    return "".join(parts)


def render_series_svg(
    points: Sequence[Tuple[float, float]],
    width: int = 680,
    height: int = 180,
    y_label: str = "",
    x_label: str = "control time (s)",
    color: str = "#4e79a7",
) -> str:
    """One ``(x, y)`` series as a simple filled step chart."""
    pad_l, pad_r, pad_t, pad_b = 52, 10, 8, 30
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    parts = [_svg_open(width, height)]
    parts.append('<rect x="%d" y="%d" width="%d" height="%d" fill="#fafafa" '
                 'stroke="#ccc"/>' % (pad_l, pad_t, plot_w, plot_h))
    pts = [(float(x), float(y)) for x, y in points]
    if not pts:
        parts.append(_axis_label(width / 2, height / 2, "(no samples)"))
        parts.append("</svg>")
        return "".join(parts)
    x0, x1 = pts[0][0], pts[-1][0]
    if x1 <= x0:
        x1 = x0 + 1.0
    y_max = max(y for _, y in pts) or 1.0

    def sx(x: float) -> float:
        return pad_l + (x - x0) / (x1 - x0) * plot_w

    def sy(y: float) -> float:
        return pad_t + (1.0 - y / y_max) * plot_h

    for frac in (0.0, 0.5, 1.0):
        y = pad_t + (1.0 - frac) * plot_h
        parts.append(_axis_label(pad_l - 4, y + 4, _fmt(frac * y_max), "end"))
        x = pad_l + frac * plot_w
        parts.append(_axis_label(x, height - pad_b + 14,
                                 _fmt(x0 + frac * (x1 - x0))))
    parts.append(_axis_label(pad_l + plot_w / 2, height - 4,
                             y_label or x_label))
    poly = ["%s,%s" % (_fmt(sx(x0)), _fmt(sy(0.0)))]
    prev_y = None
    for x, y in pts:
        if prev_y is not None:
            poly.append("%s,%s" % (_fmt(sx(x)), _fmt(sy(prev_y))))
        poly.append("%s,%s" % (_fmt(sx(x)), _fmt(sy(y))))
        prev_y = y
    poly.append("%s,%s" % (_fmt(sx(x1)), _fmt(sy(0.0))))
    parts.append('<polygon points="%s" fill="%s" fill-opacity="0.25" '
                 'stroke="%s" stroke-width="1.5"/>'
                 % (" ".join(poly), color, color))
    parts.append("</svg>")
    return "".join(parts)


def _fault_rects(fault_windows, t0: float, t1: float, sx, pad_t: int,
                 plot_h: int) -> List[str]:
    """Translucent overlay rectangles for fault windows inside [t0, t1]."""
    out = []
    for start, end, kind in fault_windows:
        if end <= t0 or start >= t1:
            continue
        a, b = max(start, t0), min(end, t1)
        w = max(sx(b) - sx(a), 1.0)
        out.append('<rect x="%s" y="%d" width="%s" height="%d" fill="%s" '
                   'fill-opacity="0.15"><title>%s</title></rect>'
                   % (_fmt(sx(a)), pad_t, _fmt(w), plot_h, FAULT_FILL,
                      escape("%s %.2f-%.2fs" % (kind, start, end))))
    return out


def render_timeline_svg(
    timelines: Dict[int, Sequence[object]],
    field: str = "srtt",
    scale: float = 1000.0,
    y_label: str = "srtt (ms)",
    fault_windows: Sequence[Tuple[float, float, str]] = (),
    width: int = 680,
    height: int = 200,
) -> str:
    """Per-path timelines of one :class:`PathSample` field as an SVG.

    ``fault_windows`` (``(start, end, kind)`` triples, e.g. from the
    run's fault spans) are shaded under the lines so "the RTT spike *is*
    the injected blackout" reads directly off the chart.
    """
    pad_l, pad_r, pad_t, pad_b = 52, 10, 8, 30
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    parts = [_svg_open(width, height)]
    parts.append('<rect x="%d" y="%d" width="%d" height="%d" fill="#fafafa" '
                 'stroke="#ccc"/>' % (pad_l, pad_t, plot_w, plot_h))
    series = {pid: s for pid, s in timelines.items() if len(s)}
    if not series:
        parts.append(_axis_label(width / 2, height / 2, "(no samples)"))
        parts.append("</svg>")
        return "".join(parts)
    t0 = min(s[0].t for s in series.values())
    t1 = max(s[-1].t for s in series.values())
    if t1 <= t0:
        t1 = t0 + 1.0
    vals = [getattr(p, field) * scale
            for s in series.values() for p in s
            if getattr(p, field) is not None]
    v_max = max(vals) if vals else 1.0
    if v_max <= 0:
        v_max = 1.0

    def sx(t: float) -> float:
        return pad_l + (t - t0) / (t1 - t0) * plot_w

    def sy(v: float) -> float:
        return pad_t + (1.0 - min(1.0, v / v_max)) * plot_h

    parts.extend(_fault_rects(fault_windows, t0, t1, sx, pad_t, plot_h))
    for frac in (0.0, 0.5, 1.0):
        y = pad_t + (1.0 - frac) * plot_h
        parts.append(_axis_label(pad_l - 4, y + 4, _fmt(frac * v_max), "end"))
        x = pad_l + frac * plot_w
        parts.append(_axis_label(x, height - pad_b + 14,
                                 _fmt(t0 + frac * (t1 - t0)) + "s"))
    parts.append(_axis_label(pad_l + plot_w / 2, height - 4, y_label))
    for pid in sorted(series):
        samples = series[pid]
        color = PATH_COLORS[pid % len(PATH_COLORS)]
        n = len(samples)
        step = max(1, n // 512)
        pts = []
        for j in range(0, n, step):
            p = samples[j]
            v = getattr(p, field)
            if v is None:
                continue
            pts.append("%s,%s" % (_fmt(sx(p.t)), _fmt(sy(v * scale))))
        if pts:
            parts.append('<polyline points="%s" fill="none" stroke="%s" '
                         'stroke-width="1.2"/>' % (" ".join(pts), color))
            parts.append('<text x="%d" y="%s" fill="%s">path %d</text>'
                         % (pad_l + plot_w - 48,
                            _fmt(pad_t + 12 + 13 * (pid % len(PATH_COLORS))),
                            color, pid))
    parts.append("</svg>")
    return "".join(parts)


def render_waterfall_svg(
    spans,
    frame_entry: dict,
    max_packets: int = 10,
    width: int = 680,
) -> str:
    """Causal span waterfall for one decomposed frame.

    Rows: the frame span, then its slowest ``max_packets`` packet spans
    (slowest first), each with the wire transmissions that carried it
    overlaid as darker ticks.  The worst packet — the one that completed
    the frame — gets its critical-path stage split colored per
    :data:`STAGE_COLORS`; hovering any bar shows exact times.
    """
    frame_sid = spans.lookup("frame", frame_entry["frame_id"])
    frame = spans.get(frame_sid) if frame_sid else None
    if frame is None or frame.end is None:
        return "<p>(frame %s has no span)</p>" % escape(str(frame_entry["frame_id"]))
    pkts = [p for p in spans.children(frame.span_id) if p.end is not None]
    pkts.sort(key=lambda p: (-(p.end - p.start), p.span_id))
    pkts = pkts[:max_packets]
    tx_by_cause: Dict[int, List] = {}
    for t in spans.spans("tx"):
        cause = (t.attrs or {}).get("cause", 0)
        if cause:
            tx_by_cause.setdefault(cause, []).append(t)
    t0, t1 = frame.start, frame.end
    for p in pkts:
        for t in tx_by_cause.get(p.span_id, ()):
            if t.end is not None and t.end > t1:
                t1 = t.end
    if t1 <= t0:
        t1 = t0 + 1e-3
    pad_l, pad_r, row_h = 88, 10, 18
    plot_w = width - pad_l - pad_r
    rows = 1 + len(pkts)
    height = rows * row_h + 34

    def sx(t: float) -> float:
        return pad_l + (t - t0) / (t1 - t0) * plot_w

    def bar(y: float, a: float, b: float, color: str, title: str,
            h: float = 10.0) -> str:
        w = max(sx(b) - sx(a), 1.0)
        return ('<rect x="%s" y="%s" width="%s" height="%s" fill="%s" rx="2">'
                '<title>%s</title></rect>'
                % (_fmt(sx(a)), _fmt(y), _fmt(w), _fmt(h), color, escape(title)))

    parts = [_svg_open(width, height)]
    y = 4.0
    parts.append(_axis_label(pad_l - 6, y + 9, "frame %s" % frame_entry["frame_id"], "end"))
    parts.append(bar(y, frame.start, frame.end, "#888",
                     "frame %s: %.1f ms" % (frame_entry["frame_id"],
                                            (frame.end - frame.start) * 1000)))
    worst_key = frame_entry.get("worst_packet")
    for p in pkts:
        y += row_h
        pid = (p.attrs or {}).get("packet", p.span_id)
        parts.append(_axis_label(pad_l - 6, y + 9, "pkt %s" % pid, "end"))
        txs = sorted(tx_by_cause.get(p.span_id, ()),
                     key=lambda t: (t.start, t.span_id))
        if pid == worst_key and "flight" in frame_entry:
            # stage split along the critical path (sums to the frame total)
            edges = [frame.start,
                     p.start,
                     txs[0].start if txs else p.start,
                     txs[-1].start if txs else p.start,
                     p.end]
            for (a, b), stage in zip(zip(edges, edges[1:]),
                                     ("packetise", "queue", "recovery", "flight")):
                if b > a:
                    parts.append(bar(y, a, b, STAGE_COLORS[stage],
                                     "%s: %.1f ms" % (stage, (b - a) * 1000)))
        else:
            parts.append(bar(y, p.start, p.end, "#b8c4d9",
                             "pkt %s: %.1f ms" % (pid, (p.end - p.start) * 1000)))
        for t in txs:
            end = t.end if t.end is not None else t.start
            parts.append(bar(y + 2, t.start, end, "#44597a",
                             "tx path %s pn %s" % ((t.attrs or {}).get("path", "?"),
                                                   (t.attrs or {}).get("pn", "?")),
                             h=6.0))
    y += row_h + 14
    parts.append(_axis_label(pad_l, y, "%ss" % _fmt(t0), "start"))
    parts.append(_axis_label(pad_l + plot_w, y, "%ss" % _fmt(t1), "end"))
    parts.append("</svg>")
    return "".join(parts)


# -- HTML assembly ----------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 24px;
       color: #222; max-width: 980px; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px;
     border-bottom: 1px solid #ddd; padding-bottom: 4px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile { background: #f5f7fa; border: 1px solid #dde3ea; border-radius: 6px;
        padding: 8px 14px; min-width: 90px; }
.tile .v { font-size: 18px; font-weight: 600; }
.tile .k { font-size: 11px; color: #667; text-transform: uppercase; }
table.data { border-collapse: collapse; font-size: 13px; }
table.data th, table.data td { border: 1px solid #ccd; padding: 3px 10px;
                               text-align: right; }
table.data th { background: #eef1f5; }
.legend span { display: inline-block; margin-right: 14px; font-size: 12px; }
.legend i { display: inline-block; width: 12px; height: 12px;
            border-radius: 2px; vertical-align: -2px; margin-right: 4px; }
figure { margin: 10px 0; }
figcaption { font-size: 12px; color: #667; }
"""


def _tile(key: str, value: str) -> str:
    return ('<div class="tile"><div class="v">%s</div><div class="k">%s</div>'
            '</div>' % (escape(value), escape(key)))


def _fault_windows_from_spans(sp) -> List[Tuple[float, float, str]]:
    out = []
    for f in sp.spans("fault"):
        end = f.end if f.end is not None else f.start
        out.append((f.start, end, (f.attrs or {}).get("fault", "fault")))
    out.sort()
    return out


def render_html_report(result, title: str = "CellFusion run report",
                       worst_k: int = 3) -> str:
    """One :class:`StreamRunResult` as a self-contained HTML page.

    Sections degrade gracefully with what the run recorded: QoE tiles
    always render; delay CDFs need packet delays; timelines need
    telemetry sampling; the decomposition table and span waterfalls need
    span tracing (``spans=True``).  The output embeds no scripts and
    fetches nothing — a single file is the whole artifact.
    """
    from ..obs.aggregate import STAGES, decompose_spans, worst_frames

    tel = getattr(result, "telemetry", None)
    sp = tel.spans if (tel is not None and tel.enabled) else None
    if sp is not None and not sp.enabled:
        sp = None

    html: List[str] = []
    html.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    html.append("<title>%s</title><style>%s</style></head><body>"
                % (escape(title), _CSS))
    html.append("<h1>%s</h1>" % escape(title))

    q = result.qoe
    html.append('<div class="tiles">')
    html.append(_tile("transport", result.transport))
    html.append(_tile("duration", "%.1f s" % result.duration))
    html.append(_tile("frames", str(result.frames_sent)))
    html.append(_tile("avg fps", "%.2f" % q.avg_fps))
    html.append(_tile("stall", "%.2f%%" % (q.stall_ratio * 100)))
    html.append(_tile("ssim", "%.3f" % q.ssim))
    html.append(_tile("delivery", "%.2f%%" % (result.delivery_ratio * 100)))
    html.append(_tile("redundancy", "%.2f%%" % (result.redundancy_ratio * 100)))
    if result.fault_summary:
        html.append(_tile("faults", "%d applied" % result.fault_summary["applied"]))
    if result.terminal_error:
        html.append(_tile("terminal", result.terminal_error))
    html.append("</div>")

    dec = decompose_spans(sp) if sp is not None else []
    series: Dict[str, Sequence[float]] = {}
    if result.packet_delays:
        series["packet delay"] = result.censored_packet_delays()
    frame_totals = [e["total"] for e in dec if e.get("complete")]
    if frame_totals:
        series["frame delay"] = frame_totals
    html.append("<h2>Delay CDFs</h2>")
    html.append("<figure>%s<figcaption>Empirical CDFs; packet delays are "
                "censored at 1 s for never-delivered packets.</figcaption>"
                "</figure>" % render_cdf_svg(series))

    fault_windows = _fault_windows_from_spans(sp) if sp is not None else []
    timelines = tel.timelines if tel is not None and tel.enabled else {}
    if timelines:
        html.append("<h2>Per-path timelines</h2>")
        html.append("<figure>%s</figure>" % render_timeline_svg(
            timelines, "srtt", 1000.0, "srtt (ms)", fault_windows))
        html.append("<figure>%s</figure>" % render_timeline_svg(
            timelines, "cwnd", 1.0, "cwnd (bytes)", fault_windows))
        if fault_windows:
            html.append('<p class="legend"><span><i style="background:%s;'
                        'opacity:.3"></i>injected fault window</span></p>'
                        % FAULT_FILL)

    if dec:
        complete = [e for e in dec if e.get("complete") and "flight" in e]
        html.append("<h2>Frame delay decomposition</h2>")
        if complete:
            n = len(complete)
            rows = []
            for stage in STAGES:
                vals = sorted(e[stage] for e in complete)
                rows.append("<tr><td style='text-align:left'>"
                            "<i style='display:inline-block;width:10px;"
                            "height:10px;background:%s'></i> %s</td>"
                            "<td>%.1f</td><td>%.1f</td><td>%.1f</td></tr>"
                            % (STAGE_COLORS[stage], stage,
                               sum(vals) / n * 1000,
                               vals[n // 2] * 1000,
                               vals[min(n - 1, int(0.99 * (n - 1)))] * 1000))
            html.append('<table class="data"><tr><th>stage</th><th>mean ms'
                        '</th><th>p50 ms</th><th>p99 ms</th></tr>%s</table>'
                        % "".join(rows))
            incomplete = len(dec) - len(complete)
            with_retx = sum(1 for e in complete if e.get("retx"))
            html.append("<p>%d frames decomposed (%d incomplete at end of "
                        "run); %d needed retransmission or recovery.</p>"
                        % (len(dec), incomplete, with_retx))
        html.append("<h2>Worst frames (span waterfall)</h2>")
        for entry in worst_frames(dec, k=worst_k):
            html.append("<h3 style='font-size:13px'>frame %s — %.1f ms total "
                        "(packetise %.1f / queue %.1f / recovery %.1f / "
                        "flight %.1f), %d packets, %d retx</h3>"
                        % (entry["frame_id"], entry["total"] * 1000,
                           entry["packetise"] * 1000, entry["queue"] * 1000,
                           entry["recovery"] * 1000, entry["flight"] * 1000,
                           entry["packets"], entry["retx"]))
            html.append("<figure>%s</figure>" % render_waterfall_svg(sp, entry))
        html.append('<p class="legend">%s</p>' % "".join(
            '<span><i style="background:%s"></i>%s</span>'
            % (STAGE_COLORS[s], s) for s in STAGES))
    elif sp is None:
        html.append("<p>(span tracing was off — run with spans enabled for "
                    "delay decomposition and waterfalls)</p>")

    html.append("</body></html>")
    return "".join(html)


def write_html_report(path: str, result, title: str = "CellFusion run report",
                      worst_k: int = 3) -> int:
    """Render and write the HTML report; returns the byte count."""
    doc = render_html_report(result, title=title, worst_k=worst_k)
    data = doc.encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def render_fleet_html_report(report, title: str = "CellFusion fleet report") -> str:
    """A :class:`~repro.fleet.report.FleetReport` as one HTML page.

    Same zero-dependency contract as :func:`render_html_report`: inline
    SVG only, deterministic output (the page embeds the report's content
    digest, so two pages differ iff the runs differ).  Sections: fleet
    tiles, delay CDFs straight from the merged histograms, per-vehicle
    QoE CDFs, the fleet concurrency timeline, per-PoP peaks, and the
    control-plane accounting (autoscaler / SNAT / controller).
    """
    agg = report.fleet_aggregate()
    qoe = report.qoe_summary()
    ctl = report.control
    cfg = report.config

    html: List[str] = []
    html.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    html.append("<title>%s</title><style>%s</style></head><body>"
                % (escape(title), _CSS))
    html.append("<h1>%s</h1>" % escape(title))

    html.append('<div class="tiles">')
    html.append(_tile("vehicles", str(len(report.vehicles))))
    html.append(_tile("mode", str(cfg.get("mode", "?"))))
    html.append(_tile("transport", str(cfg.get("transport", "?"))))
    html.append(_tile("mean fps", "%.2f" % qoe["avg_fps"]))
    html.append(_tile("mean stall", "%.2f%%" % (qoe["stall_ratio"] * 100)))
    html.append(_tile("mean ssim", "%.3f" % qoe["ssim"]))
    html.append(_tile("delivery", "%.2f%%" % (agg.delivery_ratio * 100)))
    html.append(_tile("peak conc.", str(ctl["concurrency"]["peak_total"])))
    html.append(_tile("failovers", str(ctl["controller"]["failovers"])))
    if ctl["controller"]["unplaced"]:
        html.append(_tile("unplaced", str(ctl["controller"]["unplaced"])))
    html.append("</div>")

    html.append("<h2>Fleet delay CDFs</h2>")
    hists = {name: agg.metrics._histograms.get(name)
             for name in ("delay.packet", "delay.e2e")}
    html.append("<figure>%s<figcaption>Merged across all %d vehicles from "
                "lossless histogram buckets; e2e adds each vehicle's "
                "PoP access delay; never-delivered packets are censored "
                "at 1 s.</figcaption></figure>"
                % (render_hist_cdf_svg(hists), len(report.vehicles)))

    html.append("<h2>Per-vehicle QoE</h2>")
    html.append("<figure>%s</figure>" % render_cdf_svg(
        {"avg fps": [v["qoe"]["avg_fps"] for v in report.vehicles]},
        x_label="per-vehicle average fps"))
    html.append("<figure>%s</figure>" % render_cdf_svg(
        {"ssim": [v["qoe"]["ssim"] for v in report.vehicles]},
        x_label="per-vehicle SSIM"))

    samples = ctl["concurrency"]["samples"]
    html.append("<h2>Fleet concurrency</h2>")
    html.append("<figure>%s<figcaption>Connected vehicles per control "
                "tick (joins staggered over %.0f s, %.0f s sessions)."
                "</figcaption></figure>"
                % (render_series_svg([(s["t"], s["total"]) for s in samples],
                                     y_label="connected vehicles"),
                   cfg.get("join_window", 0.0), cfg.get("session_time", 0.0)))

    peaks = sorted(ctl["concurrency"]["per_pop_peak"].items(),
                   key=lambda kv: (-kv[1], kv[0]))
    if peaks:
        html.append("<h2>Per-PoP peak concurrency</h2>")
        shown = peaks[:12]
        rows = "".join("<tr><td style='text-align:left'>%s</td><td>%d</td>"
                       "</tr>" % (escape(pid), n) for pid, n in shown)
        html.append('<table class="data"><tr><th>pop</th><th>peak sessions'
                    '</th></tr>%s</table>' % rows)
        if len(peaks) > len(shown):
            html.append("<p>(%d more PoPs held sessions)</p>"
                        % (len(peaks) - len(shown)))

    html.append("<h2>Control plane</h2>")
    asc, snat = ctl["autoscaler"], ctl["snat"]
    rows = [
        ("autoscaler scale-ups", asc["ups"]),
        ("autoscaler scale-downs", asc["downs"]),
        ("containers final / peak", "%d / %d" % (asc["final_containers"],
                                                 asc["peak_containers"])),
        ("SNAT ports (pool)", snat["port_count"]),
        ("SNAT peak live", snat["peak_live"]),
        ("SNAT idle evictions", snat["evictions"]),
        ("SNAT denials", snat["denials"]),
        ("health failures", ctl["controller"]["health_failures"]),
        ("failovers", ctl["controller"]["failovers"]),
    ]
    if ctl["controller"]["outage_pops"]:
        rows.append(("outage", "%d PoP(s) at t=%.0fs"
                     % (len(ctl["controller"]["outage_pops"]),
                        ctl["controller"]["outage_time"])))
    html.append('<table class="data">%s</table>' % "".join(
        "<tr><td style='text-align:left'>%s</td><td>%s</td></tr>"
        % (escape(str(k)), escape(str(v))) for k, v in rows))

    html.append("<p style='color:#667;font-size:11px'>fleet seed %s — "
                "digest <code>%s</code></p>"
                % (cfg.get("seed", "?"), report.digest))
    html.append("</body></html>")
    return "".join(html)


def write_fleet_html_report(path: str, report,
                            title: str = "CellFusion fleet report") -> int:
    """Render and write the fleet HTML report; returns the byte count."""
    doc = render_fleet_html_report(report, title=title)
    data = doc.encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


_VERDICT_PASS = "#2e7d32"
_VERDICT_FAIL = "#c62828"


def render_diff_html_report(matrix, title: Optional[str] = None) -> str:
    """A :class:`~repro.scenarios.diff.DiffMatrix` as one HTML page.

    The centrepiece is the **verdict matrix** — transports as rows, the
    named invariant oracles as columns, each cell a pass/fail mark whose
    hover title carries the oracle's detail string — followed by the
    per-transport delivery table and overlaid packet-delay CDFs (the
    soak keeps raw delay samples, so no rerun is needed).  Same
    zero-dependency, byte-deterministic contract as the other reports.
    """
    from ..scenarios.oracles import ORACLE_NAMES

    title = title or ("CellFusion differential verdicts — %s" % matrix.scenario)
    grid = matrix.verdict_grid()
    passed = sum(1 for r in matrix.results if r.passed)

    html: List[str] = []
    html.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    html.append("<title>%s</title><style>%s</style></head><body>"
                % (escape(title), _CSS))
    html.append("<h1>%s</h1>" % escape(title))

    html.append('<div class="tiles">')
    html.append(_tile("scenario", matrix.scenario))
    html.append(_tile("seed", str(matrix.seed)))
    html.append(_tile("duration", "%.1f s" % matrix.duration))
    html.append(_tile("transports", str(len(matrix.results))))
    html.append(_tile("all oracles pass", "%d / %d" % (passed, len(matrix.results))))
    html.append("</div>")

    html.append("<h2>Verdict matrix</h2>")
    header = "".join("<th>%s</th>" % escape(name) for name in ORACLE_NAMES)
    rows = []
    for r in matrix.results:
        cells = []
        for name in ORACLE_NAMES:
            v = grid[r.transport].get(name)
            if v is None:
                cells.append("<td>&mdash;</td>")
                continue
            mark, color = ("&#10003;", _VERDICT_PASS) if v.ok \
                else ("&#10007;", _VERDICT_FAIL)
            cells.append('<td style="color:%s" title="%s">%s</td>'
                         % (color, escape(v.detail), mark))
        rows.append("<tr><td style='text-align:left'>%s</td>%s</tr>"
                    % (escape(r.transport), "".join(cells)))
    html.append('<table class="data"><tr><th>transport</th>%s</tr>%s</table>'
                % (header, "".join(rows)))
    html.append("<p style='font-size:12px;color:#667'>Hover a failing cell "
                "for the oracle's detail. Baseline failures under zoo "
                "adversity are diagnostic, not regressions.</p>")

    html.append("<h2>Delivery under identical adversity</h2>")
    drows = "".join(
        "<tr><td style='text-align:left'>%s</td><td>%.2f%%</td><td>%d</td>"
        "<td>%d</td><td>%s</td></tr>"
        % (escape(r.transport), r.report.delivery_ratio * 100,
           r.report.packets_sent, r.report.packets_received,
           escape(r.report.terminal_error or "-"))
        for r in matrix.results)
    html.append('<table class="data"><tr><th>transport</th><th>delivery</th>'
                '<th>sent</th><th>received</th><th>terminal</th></tr>%s'
                '</table>' % drows)

    series = {r.transport: r.report.packet_delays
              for r in matrix.results if r.report.packet_delays}
    html.append("<h2>Packet-delay CDFs</h2>")
    html.append("<figure>%s<figcaption>Delivered-packet delays per "
                "transport under the same traces, seed, and fault plan."
                "</figcaption></figure>" % render_cdf_svg(series))

    html.append("<p style='color:#667;font-size:11px'>scenario seed %d"
                "</p>" % matrix.seed)
    html.append("</body></html>")
    return "".join(html)


def write_diff_html_report(path: str, matrix, title: Optional[str] = None) -> int:
    """Render and write the differential report; returns the byte count."""
    doc = render_diff_html_report(matrix, title=title)
    data = doc.encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)
