"""Terminal plots: CDFs, time series, bar charts for the figure outputs.

The paper's figures are gnuplot artifacts; these render the same data as
plain text so benchmark output and the CLI can show *shapes* (CDF
crossovers, per-second loss spikes, QoE bars) without a display server.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ascii_series",
    "ascii_cdf",
    "ascii_bars",
    "frame_strip",
]

DEFAULT_WIDTH = 64
DEFAULT_HEIGHT = 12
_MARKS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    return min(steps - 1, max(0, int((value - lo) / (hi - lo) * (steps - 1))))


def ascii_series(
    values: Sequence[float],
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    label: str = "",
) -> str:
    """One time series as a strip chart (used for Fig. 3's RF panels)."""
    v = np.asarray(list(values), dtype=float)
    if v.size == 0:
        return "%s (no data)" % label
    if v.size > width:
        v = np.array([chunk.mean() for chunk in np.array_split(v, width)])
    lo, hi = float(v.min()), float(v.max())
    grid = [[" "] * len(v) for _ in range(height)]
    for x, value in enumerate(v):
        y = _scale(value, lo, hi, height)
        grid[height - 1 - y][x] = "#"
    lines = [("%s  [%.2f .. %.2f]" % (label, lo, hi)).rstrip()]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * len(v))
    return "\n".join(lines)


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    x_label: str = "value",
    log_x: bool = False,
) -> str:
    """Overlaid empirical CDFs (the Fig. 10(a)/13(a) style plot).

    Each named series gets its own mark; the x-axis optionally log-scales
    (packet delays span decades).
    """
    cleaned = {k: np.sort(np.asarray(list(v), dtype=float)) for k, v in series.items() if len(v)}
    if not cleaned:
        return "(no data)"
    all_values = np.concatenate(list(cleaned.values()))
    positive = all_values[all_values > 0]
    if log_x and positive.size:
        lo, hi = float(np.log10(positive.min())), float(np.log10(positive.max()))
    else:
        log_x = False
        lo, hi = float(all_values.min()), float(all_values.max())
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, vals) in enumerate(cleaned.items()):
        mark = _MARKS[idx % len(_MARKS)]
        probs = np.arange(1, vals.size + 1) / vals.size
        for value, p in zip(vals, probs):
            xv = np.log10(value) if log_x and value > 0 else value
            x = _scale(float(xv), lo, hi, width)
            y = _scale(float(p), 0.0, 1.0, height)
            grid[height - 1 - y][x] = mark
    lines = ["CDF (y: 0..1, x: %s%s)" % (x_label, ", log scale" if log_x else "")]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join("%s=%s" % (_MARKS[i % len(_MARKS)], k) for i, k in enumerate(cleaned))
    lines.append(legend)
    return "\n".join(lines)


def ascii_bars(
    values: Dict[str, float],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bars (the Fig. 9/11/12 QoE panels)."""
    if not values:
        return "(no data)"
    longest = max(len(k) for k in values)
    top = max(values.values()) or 1.0
    lines = [title] if title else []
    for name, v in values.items():
        bar = "#" * max(0, int(v / top * width))
        lines.append("%-*s | %-*s %.3f%s" % (longest, name, width, bar, v, unit))
    return "\n".join(lines)


def frame_strip(statuses: Sequence[str], width: int = 66) -> str:
    """The Fig. 8 film strip: '.' normal, 'b' blocky, 'X' lost."""
    glyph = {"normal": ".", "corrupt": "b", "missing": "X"}
    s = "".join(glyph.get(x, "?") for x in statuses)
    if len(s) <= width:
        return s
    return s[:width] + "…"
