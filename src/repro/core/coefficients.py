"""Shared pseudo-random coefficient generation for Q-RLNC.

Per §4.3.2, the sender and receiver initialise two identical PRNGs at
connection negotiation so that an encoded packet only needs to carry a
32-bit ``randomSeed`` instead of the full coefficient vector.  The sequence
derived from seed ``s`` is ``{g_s(1), g_s(2), ...}`` with every value drawn
uniformly from GF(2^8) \\ {0}.

Appendix A additionally folds the first coefficient to 1: with every
``a_i`` i.i.d. uniform on GF(256)\\{0}, the combination ``sum a_i p_i`` has
the same distribution as ``a_0 (p_0 + sum b_i p_i)`` with ``b_i`` uniform on
GF(256)\\{0} — so XNC encodes ``p = p_k + sum_{i>=1} g_s(i) p_{k+i}`` and
saves one packet-sized multiply per coded packet.  ``coefficient_vector``
implements exactly that convention: index 0 is always 1.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "CoefficientGenerator",
    "coefficient_vector",
    "coefficient_bytes",
]

#: Multiplier/modulus of a Lehmer (MINSTD) generator.  Any PRNG works as
#: long as both ends agree; MINSTD is trivially portable across languages,
#: matching the paper's portability goal for the C implementation.
_MINSTD_A = 48271
_MINSTD_M = 2147483647


class CoefficientGenerator:
    """Deterministic stream of GF(256)\\{0} coefficients for one seed.

    Both tunnel endpoints construct this from the negotiated connection
    parameters; equality of output streams is what lets the 12-byte
    XNC_Header replace an explicit coefficient vector.
    """

    def __init__(self, seed: int):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        # avoid the MINSTD fixed point at state 0
        self._state = (seed % _MINSTD_M) or 1
        self.seed = seed

    def next_coefficient(self) -> int:
        """Next coefficient, uniform over 1..255."""
        # Lehmer step, then map to 1..255.  Using the high bits keeps the
        # distribution close to uniform (bias < 2^-23, irrelevant for rank
        # statistics at these sizes).
        self._state = (self._state * _MINSTD_A) % _MINSTD_M
        return (self._state >> 8) % 255 + 1


def coefficient_vector(seed: int, count: int) -> list[int]:
    """Coefficients for a coded packet over ``count`` original packets.

    Returns ``[1, g_s(1), ..., g_s(count-1)]`` — the Appendix A form where
    the leading coefficient is folded to 1.  For ``count == 1`` the seed is
    ignored (the packet is an uncoded original, §4.3.2).
    """
    return list(coefficient_bytes(seed, count))


@lru_cache(maxsize=4096)
def coefficient_bytes(seed: int, count: int) -> bytes:
    """:func:`coefficient_vector` as immutable bytes, memoised.

    The encoder derives a vector per coded packet and the decoder re-derives
    the identical one from the wire header, so each ``(seed, count)`` pair is
    computed at least twice per recovery — caching halves that, and the bytes
    form feeds ``numpy.frombuffer``/GF byte kernels with no conversion.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if count == 1:
        return b"\x01"
    gen = CoefficientGenerator(seed)
    return bytes([1] + [gen.next_coefficient() for _ in range(count - 1)])
