"""Encoding-range construction and expiry over the retransmission queue.

§4.4.2: lost packets are partitioned into contiguous ranges, each coded
independently.  Walking the queue in packet-ID order, a border is inserted
after the most-recently-added packet when any of three conditions holds:

* the current range already contains at least ``r`` packets,
* the current range spans at least ``t`` seconds (send-timestamp span), or
* a video frame border is detected (optional — user traffic may be
  encrypted, so frame marks are best-effort).

Contiguity is also a hard border: a range must cover consecutive packet
IDs so that it fits the (count, seed, startID) header.  For a 30 Mbps
session the deployed system uses r = 10 and t = 60 ms.

§4.4.3: packets are only tracked for ``t_expire`` (700 ms deployed); a
range whose *last* packet has expired is dropped entirely — recovering
stale video wastes bandwidth that newer frames need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

__all__ = [
    "DEFAULT_MAX_RANGE_PACKETS",
    "DEFAULT_MAX_RANGE_SPAN",
    "DEFAULT_EXPIRY",
    "LostPacket",
    "EncodeRange",
    "RangePolicy",
    "build_ranges",
    "drop_expired",
    "RetransmissionQueue",
]

#: Deployed parameter values for a 30 Mbps session (§4.4.2, §4.4.3).
DEFAULT_MAX_RANGE_PACKETS = 10
DEFAULT_MAX_RANGE_SPAN = 0.060
DEFAULT_EXPIRY = 0.700


@dataclass(frozen=True)
class LostPacket:
    """A queue entry: packet ID, original send time, optional frame ID."""

    packet_id: int
    sent_time: float
    frame_id: Optional[int] = None


@dataclass(frozen=True)
class EncodeRange:
    """A contiguous span of lost packets to be recovered as one unit."""

    start_id: int
    count: int
    last_sent_time: float

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("range count must be >= 1")

    @property
    def end_id(self) -> int:
        """One past the last packet ID in the range."""
        return self.start_id + self.count

    def packet_ids(self) -> range:
        return range(self.start_id, self.end_id)

    def is_expired(self, now: float, t_expire: float = DEFAULT_EXPIRY) -> bool:
        """True when the last packet of the range has expired (§4.4.3)."""
        return now - self.last_sent_time > t_expire


@dataclass
class RangePolicy:
    """Border parameters of §4.4.2 plus the expiry horizon of §4.4.3."""

    max_packets: int = DEFAULT_MAX_RANGE_PACKETS
    max_span: float = DEFAULT_MAX_RANGE_SPAN
    use_frame_borders: bool = True
    t_expire: float = DEFAULT_EXPIRY

    def __post_init__(self):
        if self.max_packets < 1:
            raise ValueError("max_packets must be >= 1")
        if self.max_span <= 0:
            raise ValueError("max_span must be positive")
        if self.t_expire <= 0:
            raise ValueError("t_expire must be positive")


def build_ranges(lost: Sequence[LostPacket], policy: Optional[RangePolicy] = None) -> List[EncodeRange]:
    """Partition the retransmission queue into encode ranges.

    ``lost`` need not be sorted; it is ordered by packet ID first.  Borders
    follow §4.4.2: contiguity, the r-packet cap, the t-second span cap, and
    (optionally) video frame boundaries.
    """
    if policy is None:
        policy = RangePolicy()
    if not lost:
        return []
    entries = sorted(lost, key=lambda p: p.packet_id)
    for a, b in zip(entries, entries[1:]):
        if a.packet_id == b.packet_id:
            raise ValueError("duplicate packet_id %d in loss queue" % a.packet_id)

    ranges: List[EncodeRange] = []
    start = entries[0]
    first_time = start.sent_time
    last = start
    count = 1

    def close() -> None:
        ranges.append(EncodeRange(start.packet_id, count, last.sent_time))

    for entry in entries[1:]:
        contiguous = entry.packet_id == last.packet_id + 1
        too_many = count >= policy.max_packets
        span = max(entry.sent_time, first_time) - min(entry.sent_time, first_time)
        too_long = span >= policy.max_span
        frame_border = (
            policy.use_frame_borders
            and entry.frame_id is not None
            and last.frame_id is not None
            and entry.frame_id != last.frame_id
        )
        if contiguous and not too_many and not too_long and not frame_border:
            last = entry
            count += 1
            continue
        close()
        start = entry
        first_time = entry.sent_time
        last = entry
        count = 1
    close()
    return ranges


def drop_expired(
    ranges: Iterable[EncodeRange], now: float, t_expire: float = DEFAULT_EXPIRY
) -> tuple[List[EncodeRange], List[EncodeRange]]:
    """Split ranges into (live, expired) per the §4.4.3 rule."""
    live: List[EncodeRange] = []
    expired: List[EncodeRange] = []
    for rng in ranges:
        if rng.is_expired(now, t_expire):
            expired.append(rng)
        else:
            live.append(rng)
    return live, expired


class RetransmissionQueue:
    """The sender's queue of detected-lost packets awaiting recovery.

    Thin stateful wrapper over :func:`build_ranges` used by the XNC sender:
    losses are added as they are detected, ranges are drained atomically at
    recovery time, and anything past ``t_expire`` is aged out.

    ``sanitizer`` (see :mod:`repro.sanitizer`) cross-checks the §4.4.2
    border rules on every ranges() build and the §4.4.3 completeness of
    expire(); it defaults to the disabled singleton.
    """

    def __init__(self, policy: Optional[RangePolicy] = None, sanitizer=None):
        from ..sanitizer import NULL_SANITIZER

        self.policy = policy or RangePolicy()
        self.sanitizer = sanitizer if sanitizer is not None else NULL_SANITIZER
        self._lost: dict[int, LostPacket] = {}
        self.expired_packets = 0

    def __len__(self) -> int:
        return len(self._lost)

    def add(self, packet: LostPacket) -> bool:
        """Queue a lost packet; duplicates are ignored (returns False)."""
        if packet.packet_id in self._lost:
            return False
        self._lost[packet.packet_id] = packet
        return True

    def discard(self, packet_id: int) -> None:
        """Remove a packet (e.g. a late ACK arrived before recovery ran)."""
        self._lost.pop(packet_id, None)

    def contains(self, packet_id: int) -> bool:
        return packet_id in self._lost

    def expire(self, now: float) -> List[LostPacket]:
        """Drop and return every queued packet older than ``t_expire``."""
        stale = [p for p in self._lost.values() if now - p.sent_time > self.policy.t_expire]
        for p in stale:
            del self._lost[p.packet_id]
        self.expired_packets += len(stale)
        if self.sanitizer.enabled:
            self.sanitizer.check_queue_post_expire(
                self._lost.values(), now, self.policy.t_expire)
        return stale

    def ranges(self, now: Optional[float] = None) -> List[EncodeRange]:
        """Current encode ranges (after expiring stale entries if ``now``)."""
        if now is not None:
            self.expire(now)
        out = build_ranges(list(self._lost.values()), self.policy)
        if self.sanitizer.enabled:
            self.sanitizer.check_ranges(out, self.policy)
        return out

    def pop_range(self, rng: EncodeRange) -> List[LostPacket]:
        """Remove and return a range's packets (XNC forgets them, §4.5.2)."""
        out = []
        for pid in rng.packet_ids():
            pkt = self._lost.pop(pid, None)
            if pkt is not None:
                out.append(pkt)
        return out
