"""Q-RLNC encoder and decoder (§4.3).

XNC applies random linear network coding only to *retransmissions*: a coded
packet is a random linear combination of a contiguous range of original
packets ``p_k .. p_{k+n-1}``, identified on the wire by the triple
``(packetCount, randomSeed, startID)``.  First transmissions use
``packetCount == 1`` and are the original payload — the code is systematic,
so redundancy is near zero on loss-free links.

The encoder keeps a pool of registered original packets (the copy the QUIC
layer saves before first transmission, Fig. 7) and produces coded payloads
on demand.  The decoder performs *incremental* Gaussian elimination per
range: each arriving equation is reduced against the rows already held, and
as soon as the range reaches full rank every original packet is recovered
and handed up.  Originals that arrive late (reordered rather than lost) are
fed in as unit-vector equations, so they shrink the number of unknowns.

Framing note: the paper zero-pads packets to a common length and relies on
the tunnelled IP header to recover true lengths.  To stay payload-agnostic
this implementation prepends an explicit 16-bit length to each packet
before padding (``_frame``/``_unframe``); the wire format is otherwise as
described in §4.3.2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..hotpath import hot_path
from .coefficients import coefficient_bytes
from .gf256 import gf_addmul_scalar_buffer, gf_addmul_vec, gf_inv, gf_mul_vec

__all__ = [
    "RlncError",
    "UnknownPacketError",
    "frame_payload",
    "unframe_payload",
    "RlncEncoder",
    "DecodeStats",
    "RlncDecoder",
]

#: Bytes prepended to every packet to make padding reversible.
LENGTH_PREFIX_SIZE = 2
#: Upper bound on packets in one coded range; ranges are kept small by the
#: border rules of §4.4.2 (r = 10 in the deployed system), this is a sanity
#: cap only.
MAX_RANGE_PACKETS = 4096


class RlncError(Exception):
    """Base class for coding-layer errors."""


class UnknownPacketError(RlncError):
    """An encode referenced a packet ID absent from the pool."""


def _frame_bytes(payload: bytes, width: int) -> bytes:
    """Length-prefix and zero-pad ``payload`` to ``width`` bytes."""
    framed_len = len(payload) + LENGTH_PREFIX_SIZE
    if framed_len > width:
        raise ValueError("payload longer than frame width")
    if framed_len == width:
        return len(payload).to_bytes(2, "big") + payload
    return len(payload).to_bytes(2, "big") + payload + b"\x00" * (width - framed_len)


def _frame(payload: bytes, width: int) -> np.ndarray:
    """:func:`_frame_bytes` as a (read-only) uint8 array."""
    return np.frombuffer(_frame_bytes(payload, width), dtype=np.uint8)


def _unframe(row: np.ndarray) -> bytes:
    """Strip the length prefix and padding from a recovered row."""
    length = (int(row[0]) << 8) | int(row[1])
    if length + LENGTH_PREFIX_SIZE > row.shape[0]:
        raise RlncError("corrupt recovered packet: bad length prefix")
    return row[2:2 + length].tobytes()


def frame_payload(payload: bytes) -> bytes:
    """Public framing helper: length-prefix a payload (no padding).

    Used by non-coding transports (reliable tunnels, bonding) so their
    wire format matches XNC's original-packet frames byte for byte.
    """
    return len(payload).to_bytes(2, "big") + payload


def unframe_payload(data: bytes) -> bytes:
    """Inverse of :func:`frame_payload` (tolerates trailing padding)."""
    return _unframe_bytes(data)


def _unframe_bytes(data: bytes) -> bytes:
    """Pure-bytes :func:`_unframe` for the systematic (count == 1) path."""
    length = (data[0] << 8) | data[1]
    if length + LENGTH_PREFIX_SIZE > len(data):
        raise RlncError("corrupt recovered packet: bad length prefix")
    return bytes(data[2:2 + length])


@dataclass
class PooledPacket:
    """One original packet held for potential recovery encoding."""

    packet_id: int
    payload: bytes
    timestamp: float


class RlncEncoder:
    """Sender-side packet pool and coded-payload generator.

    ``simd=True`` uses the numpy-vectorised GF(2^8) kernels (the stand-in
    for the paper's ARM NEON path); ``simd=False`` runs the byte-at-a-time
    scalar kernels used as the Fig. 14 "without SIMD" baseline.  Both modes
    produce byte-identical output.
    """

    def __init__(self, simd: bool = True):
        self.simd = simd
        self._pool: Dict[int, PooledPacket] = {}

    def __len__(self) -> int:
        return len(self._pool)

    def register(self, packet_id: int, payload: bytes, timestamp: float = 0.0) -> None:
        """Save a copy of an original packet before its first transmission."""
        if packet_id < 0:
            raise ValueError("packet_id must be non-negative")
        self._pool[packet_id] = PooledPacket(packet_id, bytes(payload), timestamp)

    def contains(self, packet_id: int) -> bool:
        return packet_id in self._pool

    def release(self, packet_id: int) -> None:
        """Drop a packet from the pool (delivered, expired, or forgotten)."""
        self._pool.pop(packet_id, None)

    def release_range(self, start_id: int, count: int) -> None:
        for pid in range(start_id, start_id + count):
            self._pool.pop(pid, None)

    def pool_bytes(self) -> int:
        """Total payload bytes currently pooled (for memory accounting)."""
        return sum(len(p.payload) for p in self._pool.values())

    def _range_width(self, start_id: int, count: int) -> int:
        width = 0
        for pid in range(start_id, start_id + count):
            pkt = self._pool.get(pid)
            if pkt is None:
                raise UnknownPacketError("packet %d not in encoder pool" % pid)
            width = max(width, len(pkt.payload) + LENGTH_PREFIX_SIZE)
        return width

    @hot_path
    def encode(self, start_id: int, count: int, seed: int) -> bytes:
        """Produce the coded payload for header (count, seed, start_id).

        For ``count == 1`` this returns the framed original (no coding, the
        seed is ignored), matching the special case of §4.3.2.
        """
        if not 1 <= count <= MAX_RANGE_PACKETS:
            raise ValueError("count out of range")
        if count == 1:
            # systematic fast path: coeff vector is always [1], the framed
            # original needs no padding — skip the GF machinery entirely
            pkt = self._pool.get(start_id)
            if pkt is None:
                raise UnknownPacketError("packet %d not in encoder pool" % start_id)
            return len(pkt.payload).to_bytes(2, "big") + pkt.payload
        width = self._range_width(start_id, count)
        coeffs = coefficient_bytes(seed, count)
        if self.simd:
            acc = np.zeros(width, dtype=np.uint8)
            for i, coeff in enumerate(coeffs):
                row = _frame(self._pool[start_id + i].payload, width)
                gf_addmul_vec(acc, row, coeff)
            return acc.tobytes()
        acc_b = bytearray(width)
        for i, coeff in enumerate(coeffs):
            row_b = _frame(self._pool[start_id + i].payload, width).tobytes()
            gf_addmul_scalar_buffer(acc_b, row_b, coeff)
        return bytes(acc_b)

    def encode_batch(self, start_id: int, count: int, seeds: Iterable[int]) -> List[bytes]:
        """Encode one coded payload per seed over the same range."""
        return [self.encode(start_id, count, seed) for seed in seeds]


class _RangeDecoder:
    """Incremental Gaussian elimination over one contiguous range.

    Rows are kept in reduced row-echelon form: each stored row has a unique
    pivot column with coefficient 1 and zeros in that column everywhere
    else.  A new equation is reduced against stored rows; if anything
    survives it becomes a new pivot row and is eliminated from the others.
    Decoding succeeds when every column has a pivot.
    """

    def __init__(self, start_id: int, count: int):
        self.start_id = start_id
        self.count = count
        self.width = 0
        self._pivots: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self.equations_seen = 0
        self.dependent_discarded = 0

    @property
    def rank(self) -> int:
        return len(self._pivots)

    @property
    def complete(self) -> bool:
        return self.rank == self.count

    def _grow(self, width: int) -> None:
        if width <= self.width:
            return
        grown = {}
        for col, (vec, row) in self._pivots.items():
            new_row = np.zeros(width, dtype=np.uint8)
            new_row[: row.shape[0]] = row
            grown[col] = (vec, new_row)
        self._pivots = grown
        self.width = width

    def add_equation(self, coeffs: np.ndarray, payload: np.ndarray) -> bool:
        """Reduce one equation into the system; True if it added rank."""
        self.equations_seen += 1
        self._grow(payload.shape[0])
        vec = np.array(coeffs, dtype=np.uint8, copy=True)
        row = np.zeros(self.width, dtype=np.uint8)
        row[: payload.shape[0]] = payload
        # eliminate known pivots
        for col, (pvec, prow) in self._pivots.items():
            c = int(vec[col])
            if c:
                gf_addmul_vec(vec, pvec, c)
                gf_addmul_vec(row, prow, c)
        nz = np.nonzero(vec)[0]
        if nz.size == 0:
            self.dependent_discarded += 1
            return False
        pivot_col = int(nz[0])
        inv = gf_inv(int(vec[pivot_col]))
        vec = gf_mul_vec(vec, inv)
        row = gf_mul_vec(row, inv)
        # back-substitute into existing rows to stay in RREF
        for col, (pvec, prow) in self._pivots.items():
            c = int(pvec[pivot_col])
            if c:
                gf_addmul_vec(pvec, vec, c)
                gf_addmul_vec(prow, row, c)
        self._pivots[pivot_col] = (vec, row)
        return True

    def recovered(self) -> Dict[int, bytes]:
        """All original packets once complete (pivot rows are originals)."""
        if not self.complete:
            raise RlncError("range not yet decodable")
        out = {}
        for col, (_vec, row) in self._pivots.items():
            out[self.start_id + col] = _unframe(row)
        return out


@dataclass
class DecodeStats:
    """Counters exposed by the decoder for tests and benchmarks."""

    originals_received: int = 0
    coded_received: int = 0
    duplicates: int = 0
    dependent_discarded: int = 0
    ranges_opened: int = 0
    ranges_completed: int = 0
    packets_recovered: int = 0

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


class RlncDecoder:
    """Receiver-side decoder fed by XNC_NC frame payloads (Fig. 7).

    ``push`` accepts the wire triple plus payload and returns the list of
    ``(packet_id, payload)`` pairs newly available to hand up the stack —
    the original itself for uncoded packets, or every packet of a range the
    moment it reaches full rank.  Duplicate packet IDs are suppressed.
    """

    #: How many recent original payloads to retain for seeding ranges that
    #: open after their originals arrived (Pluribus-style proactive repair
    #: and reordered XNC recoveries both need this).
    RECENT_RETENTION = 4096

    def __init__(self, on_packet: Optional[Callable[[int, bytes], None]] = None,
                 sanitizer=None):
        from ..sanitizer import NULL_SANITIZER

        self._ranges: Dict[Tuple[int, int], _RangeDecoder] = {}
        self._delivered: Dict[int, bool] = {}
        self._recent: Dict[int, bytes] = {}
        self._recent_order: Deque[int] = deque()
        self._on_packet = on_packet
        self.sanitizer = sanitizer if sanitizer is not None else NULL_SANITIZER
        self.stats = DecodeStats()

    def is_delivered(self, packet_id: int) -> bool:
        return self._delivered.get(packet_id, False)

    def _deliver(self, packet_id: int, payload: bytes, out: List[Tuple[int, bytes]]) -> None:
        if self._delivered.get(packet_id, False):
            self.stats.duplicates += 1
            return
        self._delivered[packet_id] = True
        self._remember(packet_id, payload)
        out.append((packet_id, payload))
        if self._on_packet is not None:
            self._on_packet(packet_id, payload)

    def _remember(self, packet_id: int, payload: bytes) -> None:
        if packet_id in self._recent:
            return
        self._recent[packet_id] = payload
        self._recent_order.append(packet_id)
        while len(self._recent_order) > self.RECENT_RETENTION:
            old = self._recent_order.popleft()
            self._recent.pop(old, None)

    @hot_path
    def push(self, start_id: int, count: int, seed: int, payload: bytes) -> List[Tuple[int, bytes]]:
        """Ingest one XNC_NC payload; return newly decoded packets."""
        if not 1 <= count <= MAX_RANGE_PACKETS:
            raise ValueError("count out of range")
        out: List[Tuple[int, bytes]] = []
        if count == 1:
            self.stats.originals_received += 1
            original = _unframe_bytes(payload)
            self._deliver(start_id, original, out)
            self._cross_feed_original(start_id, original, out)
            return out

        self.stats.coded_received += 1
        key = (start_id, count)
        rng = self._ranges.get(key)
        if rng is None:
            rng = _RangeDecoder(start_id, count)
            self._ranges[key] = rng
            self.stats.ranges_opened += 1
            # seed with originals that arrived before this range opened;
            # add_equation copies its inputs, so one unit vector is
            # cleared and reused across the seeding loop
            vec = np.zeros(count, dtype=np.uint8)
            for pid in range(start_id, start_id + count):
                known = self._recent.get(pid)
                if known is None:
                    continue
                vec[pid - start_id] = 1
                rng.add_equation(vec, _frame(known, len(known) + LENGTH_PREFIX_SIZE))
                vec[pid - start_id] = 0

        coeffs = np.frombuffer(coefficient_bytes(seed, count), dtype=np.uint8)
        added = rng.add_equation(coeffs, np.frombuffer(payload, dtype=np.uint8))
        if not added:
            self.stats.dependent_discarded += 1
        if rng.complete:
            if self.sanitizer.enabled:
                self.sanitizer.check_decode_complete(rng)
            for pid, original in sorted(rng.recovered().items()):
                self._deliver(pid, original, out)
                self.stats.packets_recovered += 1
            self.stats.ranges_completed += 1
            del self._ranges[key]
        return out

    def _cross_feed_original(self, packet_id: int, payload: bytes, out: List[Tuple[int, bytes]]) -> None:
        """A late-arriving original reduces unknowns in any open range."""
        completed = []
        for key, rng in self._ranges.items():
            if rng.start_id <= packet_id < rng.start_id + rng.count:
                vec = np.zeros(rng.count, dtype=np.uint8)  # lint: hot-ok(reordered-original path, runs per open range not per packet; vector length varies per range)
                vec[packet_id - rng.start_id] = 1
                width = max(rng.width, len(payload) + LENGTH_PREFIX_SIZE)
                rng.add_equation(vec, _frame(payload, width))
                if rng.complete:
                    completed.append(key)
        for key in completed:
            rng = self._ranges.pop(key)
            if self.sanitizer.enabled:
                self.sanitizer.check_decode_complete(rng)
            for pid, original in sorted(rng.recovered().items()):
                self._deliver(pid, original, out)
                self.stats.packets_recovered += 1
            self.stats.ranges_completed += 1

    def expire_range(self, start_id: int, count: int) -> None:
        """Drop an open range whose packets passed ``t_expire`` (§4.4.3)."""
        self._ranges.pop((start_id, count), None)

    def open_ranges(self) -> List[Tuple[int, int]]:
        return sorted(self._ranges.keys())

    def range_rank(self, start_id: int, count: int) -> int:
        rng = self._ranges.get((start_id, count))
        return 0 if rng is None else rng.rank
