"""Galois field GF(2^8) arithmetic for Q-RLNC.

XNC performs all coding operations in GF(2^8) (the paper sets ``m = 8`` so
each symbol is one byte, chosen to enable SIMD acceleration on the CPE's ARM
cores, §4.3.1/§5.2).  This module provides:

* scalar operations (``gf_mul``, ``gf_div``, ``gf_inv``, ``gf_pow``) used by
  the pure-Python "no-SIMD" code path, and
* vectorised operations over whole byte arrays (``gf_mul_vec``,
  ``gf_addmul_vec``) built on numpy table lookups, standing in for the ARM
  NEON ``vmull_p8`` path of the paper.

The field is constructed from the AES polynomial ``x^8 + x^4 + x^3 + x + 1``
(0x11B) with generator 3.  Addition in GF(2^8) is XOR.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GF_POLY",
    "GF_GENERATOR",
    "GF_ORDER",
    "gf_add",
    "gf_mul",
    "gf_inv",
    "gf_div",
    "gf_pow",
    "gf_mul_vec",
    "gf_addmul_vec",
    "gf_mul_bytes",
    "gf_addmul_bytes",
    "gf_mul_scalar_buffer",
    "gf_addmul_scalar_buffer",
    "gf_matrix_rank",
    "gf_solve",
]

#: Irreducible polynomial for GF(2^8) (AES polynomial).
GF_POLY = 0x11B
#: Multiplicative generator of GF(2^8)* under GF_POLY.
GF_GENERATOR = 3
#: Field order.
GF_ORDER = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exp/log tables for GF(2^8) under GF_POLY with generator 3."""
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator (3): x*3 = x*2 + x
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= GF_POLY
        x = x2 ^ x
    # duplicate so exp[log[a] + log[b]] never needs a modulo
    exp[255:510] = exp[0:255]
    return exp, log


_EXP, _LOG = _build_tables()

#: Full 256x256 multiplication table.  64 KiB; lets the vectorised path do a
#: single fancy-index per multiply, which is the numpy analog of the NEON
#: polynomial-multiply intrinsic.
_MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
_nz = np.arange(1, 256)
_MUL_TABLE[1:, 1:] = _EXP[(_LOG[_nz][:, None] + _LOG[_nz][None, :])]

#: Multiplicative inverse table (index 0 is unused and kept at 0).
_INV_TABLE = np.zeros(256, dtype=np.uint8)
_INV_TABLE[1:] = _EXP[255 - _LOG[_nz]]


def gf_add(a: int, b: int) -> int:
    """Add two field elements (XOR)."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements (scalar path)."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a``; raises ZeroDivisionError for 0."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_INV_TABLE[a])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b``; raises ZeroDivisionError when ``b == 0``."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(_EXP[_LOG[a] - _LOG[b] + 255])


def gf_pow(a: int, n: int) -> int:
    """Raise ``a`` to the ``n``-th power."""
    if n == 0:
        return 1
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] * n) % 255])


#: Below this many bytes the ``bytes.translate`` path beats numpy fancy
#: indexing (fixed ufunc dispatch overhead dominates tiny arrays).
_SMALL_BUFFER_LIMIT = 256

#: Lazily-memoised 256-byte translation tables, one per coefficient — the
#: row ``_MUL_TABLE[coeff]`` exported once as bytes for ``bytes.translate``.
_TRANSLATE_TABLES: dict = {}  # lint: shard-safe(pure memo of _MUL_TABLE rows; at most 256 entries, byte-identical on every shard)


def _translate_table(coeff: int) -> bytes:
    table = _TRANSLATE_TABLES.get(coeff)
    if table is None:
        table = _TRANSLATE_TABLES[coeff] = _MUL_TABLE[coeff].tobytes()
    return table


def gf_mul_vec(data: np.ndarray, coeff: int) -> np.ndarray:
    """Multiply every byte of ``data`` by ``coeff`` (vectorised path)."""
    if coeff == 0:
        return np.zeros_like(data)
    if coeff == 1:
        return data.copy()
    if data.ndim == 1 and data.size < _SMALL_BUFFER_LIMIT:
        product = data.tobytes().translate(_translate_table(coeff))
        return np.frombuffer(bytearray(product), dtype=np.uint8)
    return _MUL_TABLE[coeff][data]


def gf_addmul_vec(acc: np.ndarray, data: np.ndarray, coeff: int) -> None:
    """In-place ``acc ^= coeff * data`` over byte arrays (vectorised path).

    This is the inner loop of RLNC encoding: one table lookup plus one XOR
    per source packet, mirroring the NEON implementation in §5.2.
    """
    if coeff == 0:
        return
    if coeff == 1:
        np.bitwise_xor(acc, data, out=acc)
        return
    if acc.ndim == 1 and acc.size < _SMALL_BUFFER_LIMIT:
        n = acc.size
        product = data.tobytes().translate(_translate_table(coeff))
        mixed = int.from_bytes(acc.tobytes(), "little") ^ int.from_bytes(product, "little")
        acc[...] = np.frombuffer(mixed.to_bytes(n, "little"), dtype=np.uint8)
        return
    np.bitwise_xor(acc, _MUL_TABLE[coeff][data], out=acc)


def gf_mul_bytes(data: bytes, coeff: int) -> bytes:
    """``coeff * data`` over a byte string (small-buffer fast path).

    One C-level ``bytes.translate`` against the cached multiplication row;
    the preferred kernel for coefficient vectors and short payloads.
    """
    if coeff == 0:
        return bytes(len(data))
    if coeff == 1:
        return bytes(data)
    return data.translate(_translate_table(coeff))


def gf_addmul_bytes(acc: bytes, data: bytes, coeff: int) -> bytes:
    """Return ``acc ^ coeff * data`` over byte strings of equal length."""
    if len(acc) != len(data):
        raise ValueError("acc/data length mismatch")
    if coeff == 0:
        return bytes(acc)
    if coeff == 1:
        product = data
    else:
        product = data.translate(_translate_table(coeff))
    mixed = int.from_bytes(acc, "little") ^ int.from_bytes(product, "little")
    return mixed.to_bytes(len(acc), "little")


def gf_mul_scalar_buffer(data: bytes, coeff: int) -> bytes:
    """Multiply a byte buffer by ``coeff`` one symbol at a time.

    Deliberately scalar: this is the "without SIMD" code path used by the
    Fig. 14 CPU-cost benchmark.
    """
    if coeff == 0:
        return bytes(len(data))
    if coeff == 1:
        return bytes(data)
    row = _MUL_TABLE[coeff]
    return bytes(int(row[b]) for b in data)


def gf_addmul_scalar_buffer(acc: bytearray, data: bytes, coeff: int) -> None:
    """In-place scalar ``acc ^= coeff * data`` (the "without SIMD" path)."""
    if coeff == 0:
        return
    if coeff == 1:
        for i, b in enumerate(data):
            acc[i] ^= b
        return
    row = _MUL_TABLE[coeff]
    for i, b in enumerate(data):
        acc[i] ^= int(row[b])


def gf_matrix_rank(matrix: np.ndarray) -> int:
    """Rank of a matrix over GF(2^8) via Gaussian elimination.

    Used by tests and the Theorem 4.1 Monte-Carlo benchmark to check how
    often random coefficient matrices are full-rank.
    """
    m = np.array(matrix, dtype=np.uint8, copy=True)
    rows, cols = m.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if m[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        inv = gf_inv(int(m[rank, col]))
        m[rank] = gf_mul_vec(m[rank], inv)
        for r in range(rows):
            if r != rank and m[r, col]:
                gf_addmul_vec(m[r], m[rank], int(m[r, col]))
        rank += 1
        if rank == rows:
            break
    return rank


def gf_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(2^8).

    ``matrix`` is (k, n) with k >= n and must have rank n; ``rhs`` is a
    (k, L) byte array (one row per equation).  Returns the (n, L) solution.
    Raises ValueError when the system is not full rank.
    """
    a = np.array(matrix, dtype=np.uint8, copy=True)
    b = np.array(rhs, dtype=np.uint8, copy=True)
    rows, cols = a.shape
    if b.shape[0] != rows:
        raise ValueError("matrix/rhs row mismatch")
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if a[r, col]:
                pivot = r
                break
        if pivot is None:
            raise ValueError("singular system: no pivot for column %d" % col)
        a[[rank, pivot]] = a[[pivot, rank]]
        b[[rank, pivot]] = b[[pivot, rank]]
        inv = gf_inv(int(a[rank, col]))
        a[rank] = gf_mul_vec(a[rank], inv)
        b[rank] = gf_mul_vec(b[rank], inv)
        for r in range(rows):
            if r != rank and a[r, col]:
                c = int(a[r, col])
                gf_addmul_vec(a[r], a[rank], c)
                gf_addmul_vec(b[r], b[rank], c)
        rank += 1
    return b[:cols]
