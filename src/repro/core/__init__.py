"""XNC: the paper's network-coded multipath transport (§4)."""

from .coefficients import CoefficientGenerator, coefficient_vector
from .endpoint import XncConfig, XncTunnelClient, XncTunnelServer
from .frames import FRAME_XNC_NC, XncHeader, XncNcFrame
from .loss_detection import LossDetector, QoeLossPolicy, SentPacketRecord, pto_interval
from .ranges import (
    EncodeRange,
    LostPacket,
    RangePolicy,
    RetransmissionQueue,
    build_ranges,
    drop_expired,
)
from .recovery import (
    PathBudget,
    RecoveryPlan,
    RecoveryPolicy,
    coded_packet_count,
    decode_probability_bound,
    plan_recovery,
)
from .rlnc import RlncDecoder, RlncEncoder, frame_payload, unframe_payload

__all__ = [
    "CoefficientGenerator",
    "coefficient_vector",
    "XncConfig",
    "XncTunnelClient",
    "XncTunnelServer",
    "FRAME_XNC_NC",
    "XncHeader",
    "XncNcFrame",
    "LossDetector",
    "QoeLossPolicy",
    "SentPacketRecord",
    "pto_interval",
    "EncodeRange",
    "LostPacket",
    "RangePolicy",
    "RetransmissionQueue",
    "build_ranges",
    "drop_expired",
    "PathBudget",
    "RecoveryPlan",
    "RecoveryPolicy",
    "coded_packet_count",
    "decode_probability_bound",
    "plan_recovery",
    "RlncDecoder",
    "RlncEncoder",
    "frame_payload",
    "unframe_payload",
]
