"""Opportunistic one-shot recovery (§4.5).

For a range of ``n`` detected-lost packets, XNC computes the coded-packet
count ``n'`` needed for near-certain decoding, checks whether the paths'
instantaneous spare congestion windows can carry it, and — if so — spreads
coded packets across *all* usable paths proportionally to each path's
available window, capped per path below ``rho * n'``.  The recovery is
one-shot: afterwards the sender forgets the range entirely; if the coded
packets are themselves lost the range simply expires (§4.4.3).

``n' = n + 3`` when ``n > 1`` (Theorem 4.1 puts the decode-failure
probability below ``1/(255^3 * 254)`` at ``k = 3``); ``n' = 1`` when
``n == 1`` because a single original needs no decoding — in that case one
copy is sent on every usable path to minimise delay.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = [
    "DEFAULT_EXTRA_PACKETS",
    "DEFAULT_RHO",
    "coded_packet_count",
    "decode_probability_bound",
    "PathBudget",
    "PathAllocation",
    "RecoveryPlan",
    "RecoveryPolicy",
    "plan_recovery",
    "recovery_seeds",
]

#: Paper's deployed extra-packet count (k in Theorem 4.1).
DEFAULT_EXTRA_PACKETS = 3
#: Paper's per-path spread factor bound: 1 < rho < 1.2.
DEFAULT_RHO = 1.1


def coded_packet_count(n: int, extra: int = DEFAULT_EXTRA_PACKETS) -> int:
    """The minimum coded packets n' for a range of n lost packets (§4.5.1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return 1
    return n + extra


def decode_probability_bound(k: int) -> float:
    """Theorem 4.1 lower bound on decode success with k extra packets."""
    if k < 0:
        raise ValueError("k must be >= 0")
    return 1.0 - 1.0 / (255.0 ** k * 254.0)


@dataclass
class PathBudget:
    """Instantaneous spare capacity of one path at recovery time."""

    path_id: int
    available_window: int
    usable: bool = True

    def __post_init__(self):
        if self.available_window < 0:
            raise ValueError("available_window must be >= 0")


@dataclass(frozen=True)
class PathAllocation:
    """How many coded packets one path carries in this recovery shot."""

    path_id: int
    packets: int


@dataclass(frozen=True)
class RecoveryPlan:
    """The one-shot send plan for a single encode range."""

    n_lost: int
    n_coded: int
    allocations: tuple

    @property
    def total_packets(self) -> int:
        return sum(a.packets for a in self.allocations)


@dataclass
class RecoveryPolicy:
    """Tunable knobs of the one-shot planner (ablation targets).

    ``spread_mode``:

    * ``"proportional_capped"`` — the deployed behaviour: ``min(b,
      ceil(rho * n'))`` coded packets spread proportionally to available
      windows, each path capped strictly below ``rho * n'``.  The ``rho``
      bound (1 < rho < 1.2, §4.5.2) is what keeps steady-state redundancy
      under 10 %: the shot slightly over-provisions the range, no more.
    * ``"flood"`` — the literal "up to b" reading: fill every path's spare
      window up to the per-path cap (an ablation arm; burns bandwidth).
    * ``"exact"`` — send exactly ``n'`` packets, still proportional (used
      by ablations to isolate the value of the rho over-provisioning).
    * ``"single_path"`` — whole shot on the widest-window path (the
      "bad-scheduling" ablation arm).
    """

    extra_packets: int = DEFAULT_EXTRA_PACKETS
    rho: float = DEFAULT_RHO
    spread_mode: str = "proportional_capped"

    def __post_init__(self):
        if self.extra_packets < 0:
            raise ValueError("extra_packets must be >= 0")
        if not 1.0 < self.rho < 1.2:
            raise ValueError("rho must satisfy 1 < rho < 1.2 (§4.5.2)")
        if self.spread_mode not in ("proportional_capped", "flood", "exact", "single_path"):
            raise ValueError("unknown spread_mode %r" % self.spread_mode)


def _proportional_allocation(
    windows: List[tuple], total: int, per_path_cap: Optional[int]
) -> List[PathAllocation]:
    """Largest-remainder proportional split of ``total`` packets.

    ``windows`` is [(path_id, available_window)] with positive windows.
    Each share respects both the path window and ``per_path_cap``.
    """
    budget = sum(w for _, w in windows)
    shares = []
    for path_id, w in windows:
        exact = total * (w / budget)
        cap = w if per_path_cap is None else min(w, per_path_cap)
        shares.append([path_id, min(int(exact), cap), exact - int(exact), cap])
    allocated = sum(s[1] for s in shares)
    # hand out remaining packets by largest fractional remainder, headroom
    # permitting
    shares.sort(key=lambda s: -s[2])
    i = 0
    while allocated < total:
        progressed = False
        for s in shares:
            if allocated >= total:
                break
            if s[1] < s[3]:
                s[1] += 1
                allocated += 1
                progressed = True
        if not progressed:
            break
        i += 1
        if i > total + 1:
            break
    return [PathAllocation(pid, n) for pid, n, _frac, _cap in shares if n > 0]


def plan_recovery(
    n_lost: int,
    budgets: Sequence[PathBudget],
    policy: Optional[RecoveryPolicy] = None,
) -> Optional[RecoveryPlan]:
    """Build the one-shot plan, or None when recovery must be delayed.

    Returns None when the summed available windows ``b`` cannot carry
    ``n'`` packets — XNC then waits (up to range expiry) rather than waste
    bandwidth on a recovery that cannot succeed (§4.5.2).
    """
    if policy is None:
        policy = RecoveryPolicy()
    n_coded = coded_packet_count(n_lost, policy.extra_packets)
    usable = [(b.path_id, b.available_window) for b in budgets if b.usable and b.available_window > 0]
    total_window = sum(w for _, w in usable)

    if n_lost == 1:
        # one copy per usable path, no decoding needed
        if total_window < 1:
            return None
        allocations = tuple(PathAllocation(pid, 1) for pid, _w in usable)
        return RecoveryPlan(1, 1, allocations)

    if total_window < n_coded:
        return None

    if policy.spread_mode == "single_path":
        pid, w = max(usable, key=lambda pw: pw[1])
        sent = min(w, n_coded)
        if sent < n_coded:
            return None
        return RecoveryPlan(n_lost, n_coded, (PathAllocation(pid, n_coded),))

    # per-path cap: strictly smaller than rho * n'
    cap = max(1, math.ceil(policy.rho * n_coded) - 1)
    if policy.spread_mode == "exact":
        target = n_coded
    elif policy.spread_mode == "flood":
        target = max(min(total_window, cap * len(usable)), n_coded)
    else:
        target = max(min(total_window, math.ceil(policy.rho * n_coded)), n_coded)
    allocations = _proportional_allocation(usable, target, cap)
    total = sum(a.packets for a in allocations)
    if total < n_coded:
        # caps starved the plan (can only happen with a single narrow
        # path); fall back to exactly n' if the raw windows allow it
        allocations = _proportional_allocation(usable, n_coded, None)
        total = sum(a.packets for a in allocations)
        if total < n_coded:
            return None
    return RecoveryPlan(n_lost, n_coded, tuple(allocations))


def recovery_seeds(count: int, rng: random.Random) -> List[int]:
    """Fresh 32-bit coefficient seeds, one per coded packet in the shot."""
    return [rng.randrange(1, 2 ** 32) for _ in range(count)]
