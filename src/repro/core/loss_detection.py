"""QoE-aware loss detection (§4.4.1).

Legacy QUIC declares a packet lost via packet-threshold reordering or the
probe timeout (PTO, RFC 9002).  For real-time video a frame is worthless
after its deadline, so XNC instead marks a packet lost once it has been
unacknowledged for ``min(app_threshold, PTO)`` — the application-defined
time threshold is derived from the end-to-end latency the video needs.
This makes recovery more aggressive than legacy QUIC; fairness is preserved
because recovery traffic still spends congestion window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "pto_interval",
    "QoeLossPolicy",
    "SentPacketRecord",
    "LossDetector",
]

#: RFC 9002 constants used by the PTO computation.
DEFAULT_TIMER_GRANULARITY = 0.001
DEFAULT_INITIAL_RTT = 0.333


def pto_interval(
    smoothed_rtt: float,
    rtt_var: float,
    max_ack_delay: float = 0.025,
    granularity: float = DEFAULT_TIMER_GRANULARITY,
) -> float:
    """Probe timeout per RFC 9002 §6.2: srtt + max(4*rttvar, kGranularity) + max_ack_delay."""
    return smoothed_rtt + max(4.0 * rtt_var, granularity) + max_ack_delay


@dataclass
class QoeLossPolicy:
    """The QoE-aware threshold: min(application threshold, PTO).

    ``app_threshold`` encodes the latency budget of the video application
    (ToD's ~100 ms one-way budget leaves ~120 ms before a packet must be
    considered gone; it must also sit above the typical tunnel RTT or
    every queued packet looks lost).  Setting it to ``None`` degrades to
    PTO-only detection — that configuration is the "without QoE-aware loss
    detection" arm of the Fig. 13(b) ablation.
    """

    app_threshold: Optional[float] = 0.120
    max_ack_delay: float = 0.025
    granularity: float = DEFAULT_TIMER_GRANULARITY

    def __post_init__(self):
        if self.app_threshold is not None and self.app_threshold <= 0:
            raise ValueError("app_threshold must be positive")

    def threshold(self, smoothed_rtt: float, rtt_var: float) -> float:
        """Loss threshold given the path's current RTT statistics."""
        pto = pto_interval(smoothed_rtt, rtt_var, self.max_ack_delay, self.granularity)
        if self.app_threshold is None:
            return pto
        return min(self.app_threshold, pto)


@dataclass
class SentPacketRecord:
    """Book-keeping for one in-flight packet on one path."""

    packet_id: int
    sent_time: float
    path_id: int
    size: int
    frame_id: Optional[int] = None
    is_recovery: bool = False


class LossDetector:
    """Tracks in-flight packets and surfaces losses per the QoE policy.

    One detector serves the whole connection; thresholds are evaluated with
    the RTT statistics of the path each packet was sent on, supplied by the
    caller through ``path_rtt``.
    """

    def __init__(self, policy: Optional[QoeLossPolicy] = None):
        self.policy = policy or QoeLossPolicy()
        self._in_flight: Dict[int, SentPacketRecord] = {}
        self.acked_count = 0
        self.lost_count = 0
        self.spurious_count = 0

    def __len__(self) -> int:
        return len(self._in_flight)

    def on_sent(self, record: SentPacketRecord) -> None:
        """Register a transmission (originals only; recovery packets are
        one-shot and never re-detected, §4.5.2)."""
        self._in_flight[record.packet_id] = record

    def on_acked(self, packet_id: int) -> Optional[SentPacketRecord]:
        """Process an ACK; returns the record, or None if unknown/late."""
        record = self._in_flight.pop(packet_id, None)
        if record is None:
            # already declared lost (or duplicate ACK): the recovery was
            # spurious, which costs redundancy but not correctness.
            self.spurious_count += 1
            return None
        self.acked_count += 1
        return record

    def detect(self, now: float, path_rtt: Dict[int, tuple]) -> List[SentPacketRecord]:
        """Return (and remove) every packet past its loss threshold.

        ``path_rtt`` maps path_id -> (smoothed_rtt, rtt_var).  Paths absent
        from the map fall back to the RFC 9002 initial RTT.
        """
        lost: List[SentPacketRecord] = []
        for pid in list(self._in_flight):
            record = self._in_flight[pid]
            srtt, var = path_rtt.get(record.path_id, (DEFAULT_INITIAL_RTT, DEFAULT_INITIAL_RTT / 2))
            if now - record.sent_time >= self.policy.threshold(srtt, var):
                lost.append(record)
                del self._in_flight[pid]
        self.lost_count += len(lost)
        return lost

    def next_deadline(self, path_rtt: Dict[int, tuple]) -> Optional[float]:
        """Earliest time any in-flight packet can be declared lost."""
        deadline = None
        for record in self._in_flight.values():
            srtt, var = path_rtt.get(record.path_id, (DEFAULT_INITIAL_RTT, DEFAULT_INITIAL_RTT / 2))
            t = record.sent_time + self.policy.threshold(srtt, var)
            if deadline is None or t < deadline:
                deadline = t
        return deadline

    def in_flight_on_path(self, path_id: int) -> int:
        return sum(1 for r in self._in_flight.values() if r.path_id == path_id)
