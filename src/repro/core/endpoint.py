"""XNC tunnel endpoints: the paper's transport, end to end (§4).

:class:`XncTunnelClient` is the CPE-side sender.  Per Fig. 7 and §4.4–§4.5:

* every application packet is registered in the encoder pool, then
  forwarded immediately as an uncoded XNC_NC frame (``n = 1``) on the
  min-RTT path — coding never delays first transmissions;
* a QoE-aware scan marks packets lost once unacknowledged for
  ``min(app_threshold, PTO)``;
* detected losses are partitioned into contiguous ranges (r packets /
  t seconds / frame borders) and recovered in one opportunistic shot:
  ``n' = n + 3`` random linear combinations spread over every usable
  path's spare window;
* ranges expire after ``t_expire`` — stale video is abandoned, never
  retransmitted.

:class:`XncTunnelServer` is the proxy-side receiver: XNC_NC payloads feed
the incremental RLNC decoder and recovered packets are handed to the
``on_app_packet`` sink in whatever order they decode (the tunnel carries
IP packets; order is the application's business).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple

from ..determinism import seeded_rng
from ..emulation.emulator import MultipathEmulator
from ..emulation.events import EventLoop
from ..multipath.path import PathManager
from ..multipath.scheduler.base import Scheduler
from ..multipath.scheduler.minrtt import MinRttScheduler
from ..obs import trace as ev
from ..transport.base import AppPacket, SentInfo, TunnelClientBase, TunnelServerBase
from .frames import XncNcFrame
from .loss_detection import QoeLossPolicy
from .ranges import EncodeRange, LostPacket, RangePolicy, RetransmissionQueue
from .recovery import PathBudget, RecoveryPolicy, plan_recovery, recovery_seeds
from .rlnc import RlncDecoder, RlncEncoder

__all__ = [
    "XncConfig",
    "XncTunnelClient",
    "XncTunnelServer",
]


@dataclass
class XncConfig:
    """All XNC tuning knobs in one place (paper defaults)."""

    loss_policy: QoeLossPolicy = None
    range_policy: RangePolicy = None
    recovery_policy: RecoveryPolicy = None
    simd: bool = True
    seed: int = 7
    #: Ablation switch: retransmit plain originals instead of coded
    #: packets (the "w/o Q-RLNC" arm of Fig. 13(a)).
    coding_enabled: bool = True
    #: Best-effort RTP sniffing for frame borders (§4.4.2's optional third
    #: condition): used only when the app doesn't tag frames explicitly,
    #: and silently off for unrecognisable (e.g. encrypted) traffic.
    sniff_rtp: bool = True

    def __post_init__(self):
        if self.loss_policy is None:
            self.loss_policy = QoeLossPolicy()
        if self.range_policy is None:
            self.range_policy = RangePolicy()
        if self.recovery_policy is None:
            self.recovery_policy = RecoveryPolicy()


@dataclass
class _AppMeta:
    frame_id: Optional[int]
    first_sent: float
    delivered: bool = False
    forgotten: bool = False


class XncTunnelClient(TunnelClientBase):
    """CPE-side XNC sender over unreliable multipath QUIC-Datagram."""

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        paths: PathManager,
        config: Optional[XncConfig] = None,
        scheduler: Optional[Scheduler] = None,
        telemetry=None,
        sanitizer=None,
        **kwargs,
    ):
        super().__init__(loop, emulator, paths, scheduler or MinRttScheduler(),
                         telemetry=telemetry, sanitizer=sanitizer, **kwargs)
        self.config = config or XncConfig()
        self.encoder = RlncEncoder(simd=self.config.simd)
        self.retrans_queue = RetransmissionQueue(self.config.range_policy,
                                                 sanitizer=self.sanitizer)
        self._seed_rng = seeded_rng(self.config.seed)  # lint: disable=shard-rng-provenance -- adding a derivation label would shift coefficient seeds and break golden replay; EndpointConfig.seed is unique per endpoint
        self._app_meta: Dict[int, _AppMeta] = {}
        self._pool_order: Deque[Tuple[int, float]] = deque()
        self.recoveries_executed = 0
        self.recoveries_delayed = 0
        self.ranges_expired = 0

    # -- ingress / first transmission -----------------------------------------

    def _on_app_packet_queued(self, pkt: AppPacket) -> None:
        self.encoder.register(pkt.packet_id, pkt.payload, self.loop.now)
        self._pool_order.append((pkt.packet_id, self.loop.now))
        frame_id = pkt.frame_id
        if frame_id is None and self.config.sniff_rtp:
            from ..video.rtp import sniff_frame_id

            frame_id = sniff_frame_id(pkt.payload)
        self._app_meta[pkt.packet_id] = _AppMeta(frame_id, self.loop.now)

    def _build_frame(self, pkt: AppPacket) -> XncNcFrame:
        framed = self.encoder.encode(pkt.packet_id, 1, 0)
        return XncNcFrame.original(pkt.packet_id, framed)

    def _transmit_frame(self, path, frame, app_ids, is_recovery, is_dup=False,
                        is_retx=False, is_probe=False):
        info = super()._transmit_frame(path, frame, app_ids, is_recovery,
                                       is_dup, is_retx, is_probe)
        if not is_recovery:
            for app_id in app_ids:
                meta = self._app_meta.get(app_id)
                if meta is not None:
                    meta.first_sent = info.sent_time
        return info

    def _queue_entry_stale(self, pkt: AppPacket, now: float) -> bool:
        # a packet queued past t_expire is stale video; sending it would
        # only delay fresh frames (§4.4.3 applied at the source queue)
        return now - pkt.enqueue_time > self.config.range_policy.t_expire

    def _on_queue_entry_dropped(self, pkt: AppPacket) -> None:
        self.encoder.release(pkt.packet_id)
        meta = self._app_meta.get(pkt.packet_id)
        if meta is not None:
            meta.forgotten = True

    # -- delivery / QoE loss detection -----------------------------------------

    def _on_app_acked(self, app_ids: Sequence[int], info: SentInfo) -> None:
        for app_id in app_ids:
            meta = self._app_meta.get(app_id)
            if meta is None or meta.delivered:
                continue
            meta.delivered = True
            self.retrans_queue.discard(app_id)
            self.encoder.release(app_id)

    def _qoe_scan(self, now: float) -> None:
        """Mark overdue in-flight packets lost per min(app_threshold, PTO)."""
        tel = self.telemetry
        for path in self.paths:
            threshold = self.config.loss_policy.threshold(*path.rtt.as_tuple())
            # iterate the sent map directly (in_flight_infos would build a
            # throwaway list per path per tick); nothing below mutates it.
            # Entries are insertion-ordered by pn with non-decreasing
            # sent_time, so the first not-yet-overdue packet ends the scan:
            # everything after it is younger still.
            for info in self._sent[path.path_id].values():
                if now - info.sent_time < threshold:
                    break
                if info.acked or info.cc_lost or info.is_recovery or info.qoe_fired:
                    continue
                info.qoe_fired = True
                for app_id in info.app_ids:
                    meta = self._app_meta.get(app_id)
                    if meta is None or meta.delivered or meta.forgotten:
                        continue
                    if self.retrans_queue.add(
                        LostPacket(app_id, info.sent_time, meta.frame_id)
                    ) and tel.enabled:
                        tel.event(now, ev.QOE_LOSS, app_id, path.path_id,
                                  overdue=now - info.sent_time,
                                  threshold=threshold)
                        tel.count("xnc.qoe_loss")
                        sp = tel.spans
                        if sp.enabled and info.span_id:
                            sp.annotate(info.span_id, qoe_loss=True,
                                        qoe_t=now)

    def _on_cc_lost(self, info: SentInfo, now: float) -> None:
        # cc-level loss implies the QoE threshold has long passed; make sure
        # the app packets are queued for recovery if still fresh
        for app_id in info.app_ids:
            meta = self._app_meta.get(app_id)
            if meta is None or meta.delivered or meta.forgotten:
                continue
            self.retrans_queue.add(LostPacket(app_id, info.sent_time, meta.frame_id))

    # -- opportunistic one-shot recovery -----------------------------------------

    def _path_budgets(self, now: float) -> list:
        budgets = []
        for path in self.paths:
            budgets.append(
                PathBudget(
                    path_id=path.path_id,
                    available_window=path.cc.available_packets(),
                    usable=path.is_usable(now),
                )
            )
        return budgets

    def _attempt_recoveries(self, now: float) -> None:
        tel = self.telemetry
        stale = self.retrans_queue.expire(now)
        if stale:
            self.stats.expired_packets += len(stale)
            self.ranges_expired += 1
            if tel.enabled:
                sp = tel.spans
                for pkt in stale:
                    tel.event(now, ev.EXPIRED, pkt.packet_id,
                              where="retrans_queue")
                    if sp.enabled:
                        sp.close(sp.lookup("packet", pkt.packet_id), now,
                                 outcome="expired", where="retrans_queue")
                tel.count("xnc.expired", len(stale))
        ranges = self.retrans_queue.ranges()
        for rng in ranges:
            plan = plan_recovery(rng.count, self._path_budgets(now), self.config.recovery_policy)
            if plan is None:
                self.recoveries_delayed += 1
                if tel.enabled:
                    tel.count("xnc.recovery_delayed")
                continue
            self._execute_plan(rng, plan)

    def _execute_plan(self, rng: EncodeRange, plan) -> None:
        self.recoveries_executed += 1
        san = self.sanitizer
        if san.enabled:
            # §4.5 budget + lifecycle invariants before any packet leaves
            san.check_plan(rng.count, plan, self.config.recovery_policy)
            san.check_range_recovery(rng, self.loop.now,
                                     self.config.range_policy.t_expire)
        tel = self.telemetry
        range_sid = 0
        if tel.enabled:
            tel.event(self.loop.now, ev.RANGE_FORMED, rng.start_id,
                      count=rng.count, n_prime=plan.total_packets,
                      paths=[a.path_id for a in plan.allocations])
            tel.observe("xnc.range_size", rng.count)
            tel.observe("xnc.recovery_n", plan.total_packets)
            sp = tel.spans
            if sp.enabled:
                range_sid = sp.open("range", self.loop.now,
                                    start_id=rng.start_id, count=rng.count,
                                    n_prime=plan.total_packets)
                sp.bind("range", (rng.start_id, rng.count), range_sid)
        if rng.count == 1 or not self.config.coding_enabled:
            self._send_uncoded_recovery(rng, plan)
        else:
            seeds = recovery_seeds(plan.total_packets, self._seed_rng)
            cursor = 0
            for alloc in plan.allocations:
                path = self.paths.get(alloc.path_id)
                for _ in range(alloc.packets):
                    payload = self.encoder.encode(rng.start_id, rng.count, seeds[cursor])
                    frame = XncNcFrame.coded(rng.start_id, rng.count, seeds[cursor], payload)
                    self._transmit_frame(
                        path, frame, tuple(rng.packet_ids()), is_recovery=True
                    )
                    cursor += 1
            if range_sid:
                # the block encode is instantaneous in sim time; an instant
                # child keeps the coding stage visible in the waterfall
                tel.spans.instant("encode", self.loop.now, parent=range_sid,
                                  combos=plan.total_packets, k=rng.count)
        if range_sid:
            tel.spans.close(range_sid, self.loop.now, executed=True)
        # one-shot: forget the packets involved (§4.5.2)
        self.retrans_queue.pop_range(rng)
        for app_id in rng.packet_ids():
            meta = self._app_meta.get(app_id)
            if meta is not None:
                meta.forgotten = True

    def _send_uncoded_recovery(self, rng: EncodeRange, plan) -> None:
        """n == 1 fast path and the w/o-Q-RLNC ablation: plain originals."""
        for alloc in plan.allocations:
            path = self.paths.get(alloc.path_id)
            budget = alloc.packets
            ids = list(rng.packet_ids())
            for i in range(budget):
                app_id = ids[i % len(ids)]
                if not self.encoder.contains(app_id):
                    continue
                framed = self.encoder.encode(app_id, 1, 0)
                frame = XncNcFrame.original(app_id, framed)
                self._transmit_frame(path, frame, (app_id,), is_recovery=True)

    # -- housekeeping -----------------------------------------------------------

    def _on_tick_hook(self, now: float) -> None:
        self._qoe_scan(now)
        self._attempt_recoveries(now)
        self._trim_pool(now)

    def _trim_pool(self, now: float) -> None:
        horizon = self.config.range_policy.t_expire * 2 + 0.5
        while self._pool_order and now - self._pool_order[0][1] > horizon:
            app_id, _t = self._pool_order.popleft()
            self.encoder.release(app_id)
            self._app_meta.pop(app_id, None)


class XncTunnelServer(TunnelServerBase):
    """Proxy-side XNC receiver: decode and forward."""

    #: Open decoder ranges older than this are abandoned (their packets
    #: expired at the sender anyway).
    RANGE_GC_HORIZON = 2.0

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        on_app_packet: Callable[[int, bytes, float], None],
        connection_id: int = 0,
        telemetry=None,
        sanitizer=None,
    ):
        super().__init__(loop, emulator, on_app_packet, connection_id=connection_id,
                         telemetry=telemetry, sanitizer=sanitizer)
        self.decoder = RlncDecoder(sanitizer=self.sanitizer)
        self._range_first_seen: Dict[Tuple[int, int], float] = {}
        self._gc_counter = 0

    def _handle_frame(self, path_id: int, frame: XncNcFrame, now: float) -> None:
        h = frame.header
        key = (h.start_id, h.packet_count)
        tel = self.telemetry
        if h.is_coded and key not in self._range_first_seen:
            self._range_first_seen[key] = now
            if tel.enabled:
                sp = tel.spans
                if sp.enabled:
                    # decode span: first coded symbol of the range seen ->
                    # first successful decode; `cause` links back to the
                    # client's recovery range (same recorder per run)
                    sid = sp.open("decode", now, start_id=h.start_id,
                                  count=h.packet_count,
                                  cause=sp.lookup("range", key))
                    sp.bind("decode", key, sid)
        decoded_any = False
        for packet_id, payload in self.decoder.push(h.start_id, h.packet_count, h.random_seed, frame.payload):
            decoded_any = True
            if tel.enabled:
                tel.event(now, ev.DECODED, packet_id, path_id,
                          coded=bool(h.is_coded))
                tel.count("server.decoded")
            self.on_app_packet(packet_id, payload, now)
        if decoded_any and h.is_coded and tel.enabled:
            sp = tel.spans
            if sp.enabled:
                sp.close(sp.lookup("decode", key), now, outcome="decoded")
        self._gc_counter += 1
        if self._gc_counter % 512 == 0:
            self._gc_ranges(now)

    def _gc_ranges(self, now: float) -> None:
        for key in list(self._range_first_seen):
            if now - self._range_first_seen[key] > self.RANGE_GC_HORIZON:
                self.decoder.expire_range(*key)
                del self._range_first_seen[key]
