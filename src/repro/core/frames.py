"""XNC wire format (§4.3.2, Fig. 6).

XNC extends QUIC's DATAGRAM frame family with a network-coded variant:

* ``0x30`` / ``0x31`` — standard QUIC-Datagram frames (RFC 9221), without
  and with an explicit length field.
* ``0x32`` — ``XNC_NC``: a 12-byte ``XNC_Header`` of three 32-bit fields
  (``packetCount``, ``randomSeed``, ``startID``) followed by the coded
  payload.

``packetCount == 1`` marks an uncoded original packet (``randomSeed`` is
carried but ignored).  The header is deliberately fixed-size so the CPE's
encoder can write it without branching.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "FRAME_DATAGRAM",
    "FRAME_DATAGRAM_LEN",
    "FRAME_XNC_NC",
    "XNC_HEADER",
    "XNC_HEADER_SIZE",
    "FrameError",
    "XncHeader",
    "XncNcFrame",
    "encode_datagram_frame",
    "decode_datagram_frame",
]

#: QUIC-Datagram frame types (RFC 9221).
FRAME_DATAGRAM = 0x30
FRAME_DATAGRAM_LEN = 0x31
#: XNC's network-coded datagram frame type.
FRAME_XNC_NC = 0x32

#: XNC_Header layout: packetCount, randomSeed, startID — three u32s.
XNC_HEADER = struct.Struct("!III")
XNC_HEADER_SIZE = XNC_HEADER.size

#: Whole frame prefix — type byte, u16 body length, XNC_Header — packed in
#: one struct call on the serialisation hot path.
_FRAME_PREFIX = struct.Struct("!BHIII")
_LEN_FIELD = struct.Struct("!H")


class FrameError(Exception):
    """Malformed frame bytes."""


@dataclass(frozen=True)
class XncHeader:
    """The (packetCount, randomSeed, startID) triple of Fig. 6."""

    packet_count: int
    random_seed: int
    start_id: int

    def __post_init__(self):
        for name in ("packet_count", "random_seed", "start_id"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError("%s out of u32 range: %r" % (name, value))
        if self.packet_count < 1:
            raise ValueError("packet_count must be >= 1")

    @property
    def is_coded(self) -> bool:
        return self.packet_count > 1

    def pack(self) -> bytes:
        return XNC_HEADER.pack(self.packet_count, self.random_seed, self.start_id)

    @classmethod
    def unpack(cls, data: bytes) -> "XncHeader":
        if len(data) < XNC_HEADER_SIZE:
            raise FrameError("truncated XNC_Header")
        count, seed, start = XNC_HEADER.unpack_from(data)
        return cls(count, seed, start)


@dataclass(frozen=True)
class XncNcFrame:
    """One XNC_NC frame: header plus coded (or original) payload."""

    header: XncHeader
    payload: bytes

    @classmethod
    def original(cls, packet_id: int, payload: bytes) -> "XncNcFrame":
        """Frame for a first-time transmission (systematic, n = 1)."""
        return cls(XncHeader(1, 0, packet_id), payload)

    @classmethod
    def coded(cls, start_id: int, count: int, seed: int, payload: bytes) -> "XncNcFrame":
        """Frame for a recovery packet over ``count`` lost originals."""
        if count < 2:
            raise ValueError("coded frames need count >= 2; use original()")
        return cls(XncHeader(count, seed, start_id), payload)

    def encode(self) -> bytes:
        """Serialise as frame-type byte + length + header + payload."""
        h = self.header
        prefix = _FRAME_PREFIX.pack(
            FRAME_XNC_NC, XNC_HEADER_SIZE + len(self.payload),
            h.packet_count, h.random_seed, h.start_id)
        return prefix + self.payload

    @classmethod
    def decode(cls, data: bytes) -> tuple["XncNcFrame", int]:
        """Parse one frame from ``data``; returns (frame, bytes consumed)."""
        return cls.decode_from(data, 0, len(data))

    @classmethod
    def decode_from(cls, data: bytes, offset: int, end: int) -> tuple["XncNcFrame", int]:
        """Parse one frame in place from ``data[offset:end]`` — no copy of
        the surrounding packet; returns (frame, bytes consumed)."""
        if offset >= end:
            raise FrameError("empty buffer")
        if data[offset] != FRAME_XNC_NC:
            raise FrameError("not an XNC_NC frame: type 0x%02x" % data[offset])
        if end - offset < 3:
            raise FrameError("truncated frame length")
        (length,) = _LEN_FIELD.unpack_from(data, offset + 1)
        consumed = 3 + length
        if offset + consumed > end:
            raise FrameError("truncated frame body")
        if length < XNC_HEADER_SIZE:
            raise FrameError("truncated XNC_Header")
        count, seed, start = XNC_HEADER.unpack_from(data, offset + 3)
        payload = bytes(data[offset + 3 + XNC_HEADER_SIZE:offset + consumed])
        return cls(XncHeader(count, seed, start), payload), consumed

    @property
    def wire_size(self) -> int:
        """Total serialised size including type and length bytes."""
        return 3 + XNC_HEADER_SIZE + len(self.payload)


def encode_datagram_frame(payload: bytes, with_length: bool = True) -> bytes:
    """Serialise a plain RFC 9221 DATAGRAM frame."""
    if with_length:
        return bytes([FRAME_DATAGRAM_LEN]) + struct.pack("!H", len(payload)) + payload
    return bytes([FRAME_DATAGRAM]) + payload


def decode_datagram_frame(data: bytes) -> tuple[bytes, int]:
    """Parse a DATAGRAM frame; returns (payload, bytes consumed)."""
    if not data:
        raise FrameError("empty buffer")
    if data[0] == FRAME_DATAGRAM:
        return data[1:], len(data)
    if data[0] == FRAME_DATAGRAM_LEN:
        if len(data) < 3:
            raise FrameError("truncated datagram length")
        (length,) = struct.unpack_from("!H", data, 1)
        end = 3 + length
        if len(data) < end:
            raise FrameError("truncated datagram body")
        return data[3:end], end
    raise FrameError("not a DATAGRAM frame: type 0x%02x" % data[0])
