"""min-RTT scheduler [30] — XNC's default for first transmissions (§4.2).

Sends each new packet on the lowest-smoothed-RTT path that currently has
congestion window.  Simple and effective when paths are stable; the paper's
point is that it mispredicts badly when a chosen path collapses mid-flight,
which is what the coded recovery compensates for.
"""

from __future__ import annotations

from typing import List, Sequence

from ..path import PathState
from .base import Scheduler

__all__ = ["MinRttScheduler"]


class MinRttScheduler(Scheduler):
    """Lowest-RTT available path wins."""

    name = "minRTT"

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        # one pass, no candidate list: this runs once per scheduled packet.
        # Ties break on the lower path_id (ids are unique), matching a
        # min() over (smoothed_rtt, path_id) keys.
        best = None
        best_rtt = 0.0
        for p in paths:
            if not (p.is_usable(now) and p.can_send(size)):
                continue
            rtt = p.rtt.smoothed_rtt
            if best is None or rtt < best_rtt or (rtt == best_rtt and p.path_id < best.path_id):
                best = p
                best_rtt = rtt
        return [best] if best is not None else []
