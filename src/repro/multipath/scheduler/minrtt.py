"""min-RTT scheduler [30] — XNC's default for first transmissions (§4.2).

Sends each new packet on the lowest-smoothed-RTT path that currently has
congestion window.  Simple and effective when paths are stable; the paper's
point is that it mispredicts badly when a chosen path collapses mid-flight,
which is what the coded recovery compensates for.
"""

from __future__ import annotations

from typing import List, Sequence

from ..path import PathState
from .base import Scheduler

__all__ = ["MinRttScheduler"]


class MinRttScheduler(Scheduler):
    """Lowest-RTT available path wins."""

    name = "minRTT"

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        candidates = self.sendable(paths, size, now)
        if not candidates:
            return []
        best = min(candidates, key=lambda p: (p.smoothed_rtt, p.path_id))
        return [best]
