"""ECF — Earliest Completion First scheduler [62].

When the fastest path is congestion-limited, ECF decides whether to use a
slower path immediately or *wait* for the fast path's window to reopen:
it compares the estimated completion time through the slow path against
waiting one RTT-ish interval for the fast path, and idles when waiting
wins.  On stable heterogeneous WLAN paths this avoids reordering stalls;
on volatile cellular paths its completion-time estimates are frequently
wrong, which is why ECF fares worst among the Fig. 11 schedulers.
"""

from __future__ import annotations

from typing import List, Sequence

from ..path import PathState
from .base import Scheduler

__all__ = [
    "EcfScheduler",
]

#: Hysteresis factor from the ECF paper (their delta / beta ~ 0.25).
ECF_BETA = 0.25


class EcfScheduler(Scheduler):
    """Earliest-completion-first with wait-for-fast-path logic."""

    name = "ECF"

    def __init__(self, queued_bytes_hint: int = 0):
        # the transport updates this with its backlog so ECF can estimate
        # transfer completion times
        self.queued_bytes_hint = queued_bytes_hint

    def _estimated_rate(self, path: PathState) -> float:
        """Crude bytes/sec estimate: cwnd per smoothed RTT."""
        srtt = max(path.smoothed_rtt, 1e-3)
        return max(path.cc.cwnd, 1) / srtt

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        usable = [p for p in paths if p.is_usable(now)]
        if not usable:
            return []
        fastest = min(usable, key=lambda p: (p.smoothed_rtt, p.path_id))
        if fastest.can_send(size):
            return [fastest]
        with_window = [p for p in usable if p.can_send(size)]
        if not with_window:
            return []
        slow = min(with_window, key=lambda p: (p.smoothed_rtt, p.path_id))
        # ECF condition: send on the slow path only if finishing there beats
        # waiting for the fast path to drain one cwnd worth of inflight.
        backlog = self.queued_bytes_hint + size
        t_slow = slow.smoothed_rtt + backlog / self._estimated_rate(slow)
        wait_fast = fastest.smoothed_rtt * (1 + ECF_BETA) + backlog / self._estimated_rate(fastest)
        if t_slow <= wait_fast:
            return [slow]
        return []
