"""Multipath scheduler interface.

A scheduler answers one question per first-time packet: which path(s)
should carry it *now*.  Returning an empty list means "hold the packet"
(no path has window, or the scheduler prefers waiting — ECF does this).
Redundant schedulers return several paths and the packet is duplicated.

Recovery packets bypass the scheduler entirely: XNC's one-shot recovery
does its own window-proportional spreading (§4.5.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..path import PathState

__all__ = ["Scheduler"]


class Scheduler:
    """Base multipath scheduler."""

    name = "base"

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        """Paths that should carry this packet (possibly empty)."""
        raise NotImplementedError

    def sendable(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        """Helper: usable paths with congestion window for ``size``."""
        return [p for p in paths if p.is_usable(now) and p.can_send(size)]

    def __repr__(self) -> str:
        return "<%s scheduler>" % self.name
