"""Multipath schedulers: minRTT, RE, ECF, XLINK, round-robin, bonding."""

from .base import Scheduler
from .blest import BlestScheduler
from .bonding import BondingScheduler, hash_five_tuple
from .ecf import EcfScheduler
from .minrtt import MinRttScheduler
from .redundant import RedundantScheduler
from .roundrobin import RoundRobinScheduler
from .xlink import XlinkScheduler

__all__ = [
    "Scheduler",
    "BlestScheduler",
    "BondingScheduler",
    "hash_five_tuple",
    "EcfScheduler",
    "MinRttScheduler",
    "RedundantScheduler",
    "RoundRobinScheduler",
    "XlinkScheduler",
]
