"""XLINK-style QoE-driven scheduler [29].

XLINK is a production multipath QUIC for short-video services: it
schedules new packets min-RTT style but, when a packet's delivery risks
the application deadline, *re-injects* a copy on an alternate path instead
of waiting for full retransmission timers.  We model the scheduling half
here (prefer the fast path, opportunistically duplicate the packet on a
second path when the primary looks risky); the reliable-transport half
lives in the baseline tunnel that hosts the scheduler.

XLINK remains fully reliable, so under sustained burst loss it still
retransmits until delivery and stalls — the gap Fig. 11 quantifies.
"""

from __future__ import annotations

from typing import List, Sequence

from ..path import PathState
from .base import Scheduler

__all__ = [
    "XlinkScheduler",
]

#: Duplicate onto a backup path when the best path's RTT exceeds the best
#: alternative by this factor (a risk proxy for "might miss the deadline").
RISK_RTT_RATIO = 1.6


class XlinkScheduler(Scheduler):
    """min-RTT with QoE-driven opportunistic duplication."""

    name = "XLINK"

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        candidates = self.sendable(paths, size, now)
        if not candidates:
            return []
        ranked = sorted(candidates, key=lambda p: (p.smoothed_rtt, p.path_id))
        primary = ranked[0]
        selected = [primary]
        # risk heuristic: primary path showing inflated RTT (queue building
        # or fading signal) -> reinject on the next-best path too
        if len(ranked) > 1:
            baseline = min(p.rtt.min_rtt for p in ranked if p.rtt.min_rtt != float("inf")) if any(
                p.rtt.min_rtt != float("inf") for p in ranked
            ) else primary.smoothed_rtt
            if baseline > 0 and primary.smoothed_rtt > RISK_RTT_RATIO * baseline:
                selected.append(ranked[1])
        return selected
