"""BLEST-style scheduler (blocking estimation, Ferlin et al. 2016).

Another N-path-capable scheduler from the multipath literature (not one
of the paper's Fig. 11 arms, included for experiment variety).  BLEST's
idea: before putting a packet on a slower path, estimate whether that
packet would still be "in the way" — undelivered — by the time the fast
path could have carried it, and skip the slow path when using it would
cause receive-buffer blocking.

Our estimate: sending on slow path finishes at ``srtt_slow/2 +
queue_drain``; waiting for the fast path costs one fast RTT.  If the
slow path's completion exceeds the fast path's wait by more than the
blocking margin, prefer idling.
"""

from __future__ import annotations

from typing import List, Sequence

from ..path import PathState
from .base import Scheduler

__all__ = [
    "BlestScheduler",
]

#: Tolerated extra delivery delay before the slow path is deemed blocking.
BLOCKING_MARGIN = 1.5


class BlestScheduler(Scheduler):
    """Blocking-estimation scheduler."""

    name = "BLEST"

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        usable = [p for p in paths if p.is_usable(now)]
        if not usable:
            return []
        fastest = min(usable, key=lambda p: (p.smoothed_rtt, p.path_id))
        if fastest.can_send(size):
            return [fastest]
        with_window = [p for p in usable if p.can_send(size)]
        if not with_window:
            return []
        slow = min(with_window, key=lambda p: (p.smoothed_rtt, p.path_id))
        # blocking estimate: deliver via slow vs wait one fast RTT
        slow_delivery = slow.smoothed_rtt / 2 + self._queue_drain_time(slow)
        fast_wait = fastest.smoothed_rtt
        if slow_delivery > fast_wait * BLOCKING_MARGIN:
            return []
        return [slow]

    @staticmethod
    def _queue_drain_time(path: PathState) -> float:
        """Time for the path's inflight bytes to drain at cwnd-per-RTT."""
        rate = max(path.cc.cwnd, 1) / max(path.smoothed_rtt, 1e-3)
        return path.cc.bytes_in_flight / rate
