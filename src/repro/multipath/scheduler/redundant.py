"""Fully redundant scheduler (RE) [61].

Duplicates every packet on every path that has window — "gentle
aggression" taken to its limit.  Excellent loss resilience but, as Fig. 11
shows, up to ~300 % redundant traffic; under constrained links the copies
crowd out fresh video and the tail stall ratio suffers.
"""

from __future__ import annotations

from typing import List, Sequence

from ..path import PathState
from .base import Scheduler

__all__ = ["RedundantScheduler"]


class RedundantScheduler(Scheduler):
    """Send a copy on every path with available window."""

    name = "RE"

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        return self.sendable(paths, size, now)
