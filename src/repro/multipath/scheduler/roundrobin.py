"""Round-robin scheduler — a simple reference point used by tests and
ablations (not one of the paper's comparison arms)."""

from __future__ import annotations

from typing import List, Sequence

from ..path import PathState
from .base import Scheduler

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(Scheduler):
    """Cycle through paths with available window."""

    name = "roundrobin"

    def __init__(self):
        self._last_path_id = -1

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        candidates = self.sendable(paths, size, now)
        if not candidates:
            return []
        ordered = sorted(candidates, key=lambda p: p.path_id)
        for p in ordered:
            if p.path_id > self._last_path_id:
                self._last_path_id = p.path_id
                return [p]
        self._last_path_id = ordered[0].path_id
        return [ordered[0]]
