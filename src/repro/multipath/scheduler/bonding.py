"""Cellular bonding (BONDING) — 5-tuple hashing, no aggregation (§8.1.2).

SD-WAN/mwan3-style bonding load-balances *sessions*: a flow's 5-tuple is
hashed to one interface and stays there.  A single video stream therefore
rides exactly one cellular link and cannot use the others' capacity — the
largest-variance arm of Fig. 9.  We also model interface failover: when
the pinned path looks dead the flow is re-hashed to a live one (mwan3's
failover), which takes effect only after the failure-detection delay.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

from ..path import PathState
from .base import Scheduler

__all__ = [
    "FiveTuple",
    "hash_five_tuple",
    "BondingScheduler",
]

FiveTuple = Tuple[str, int, str, int, int]


def hash_five_tuple(five_tuple: FiveTuple, path_count: int) -> int:
    """Deterministic interface choice for a flow (src, sport, dst, dport, proto)."""
    if path_count <= 0:
        raise ValueError("path_count must be positive")
    key = ("%s:%d>%s:%d/%d" % five_tuple).encode()
    return zlib.crc32(key) % path_count


class BondingScheduler(Scheduler):
    """Pin the flow to one hashed path; failover when it dies."""

    name = "BONDING"

    def __init__(self, five_tuple: Optional[FiveTuple] = None):
        self.five_tuple = five_tuple or ("192.168.1.10", 5004, "10.0.0.1", 8554, 17)
        self._pinned: Optional[int] = None

    def select(self, paths: Sequence[PathState], size: int, now: float) -> List[PathState]:
        ordered = sorted(paths, key=lambda p: p.path_id)
        if not ordered:
            return []
        if self._pinned is None:
            self._pinned = ordered[hash_five_tuple(self.five_tuple, len(ordered))].path_id
        by_id = {p.path_id: p for p in ordered}
        pinned = by_id.get(self._pinned)
        # failover: re-hash onto a live path when the pinned one is dead
        if pinned is None or not pinned.is_usable(now):
            live = [p for p in ordered if p.is_usable(now)]
            if not live:
                return []
            pinned = live[hash_five_tuple(self.five_tuple, len(live))]
            self._pinned = pinned.path_id
        if not pinned.can_send(size):
            return []
        return [pinned]
