"""Multipath machinery: per-path state and schedulers."""

from .path import PathManager, PathState

__all__ = ["PathManager", "PathState"]
