"""Per-path transport state for multipath QUIC.

Following the IETF multipath draft the paper builds on, each path has its
own packet-number space, RTT estimator, and congestion controller.  The
:class:`PathState` bundles those for the schedulers and the recovery
planner; :class:`PathManager` owns the set.

Beyond the instantaneous ``potentially_failed`` heuristic, every path
carries an explicit **health state machine** (see docs/robustness.md)::

    ACTIVE -> DEGRADED -> SUSPENDED -> PROBING -> ACTIVE
                 \\-> ACTIVE            \\-> SUSPENDED (probe lost, backoff x2)

driven by ACK silence measured in PTOs and a per-path loss-rate EWMA.
``SUSPENDED``/``PROBING`` paths are excluded from scheduling and from the
recovery planner's ``rho``-capped spread (both go through
:meth:`PathState.is_usable`), so the budget re-normalises over surviving
paths.  Probes are scheduled with exponential backoff plus seeded jitter
by :class:`PathHealthMonitor`; the transport sends them (one PingFrame
per probe window) and the ACK — or its absence — drives the next edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..determinism import seeded_rng
from ..quic.cc.base import CongestionController
from ..quic.cc.bbr import BbrController
from ..quic.rtt import RttEstimator

__all__ = [
    "HEALTH_ACTIVE",
    "HEALTH_DEGRADED",
    "HEALTH_SUSPENDED",
    "HEALTH_PROBING",
    "ALLOWED_HEALTH_TRANSITIONS",
    "PathHealthConfig",
    "PathHealthMonitor",
    "PathState",
    "PathManager",
]

#: A path with no ACK for this many PTOs is considered potentially failed
#: and deprioritised for first transmissions.
PATH_FAILURE_PTOS = 3.0

# -- path health state machine ------------------------------------------------

HEALTH_ACTIVE = "active"        #: normal service
HEALTH_DEGRADED = "degraded"    #: lossy/quiet but still schedulable
HEALTH_SUSPENDED = "suspended"  #: excluded from scheduling, awaiting probe
HEALTH_PROBING = "probing"      #: one probe in flight, awaiting verdict

#: The only legal health edges; anything else is a sanitizer violation
#: (``path-health-edge``).
ALLOWED_HEALTH_TRANSITIONS = frozenset([
    (HEALTH_ACTIVE, HEALTH_DEGRADED),
    (HEALTH_DEGRADED, HEALTH_ACTIVE),
    (HEALTH_DEGRADED, HEALTH_SUSPENDED),
    (HEALTH_SUSPENDED, HEALTH_PROBING),
    (HEALTH_PROBING, HEALTH_ACTIVE),
    (HEALTH_PROBING, HEALTH_SUSPENDED),
])


@dataclass
class PathHealthConfig:
    """Thresholds and probe schedule of the health state machine.

    Silence thresholds are in PTOs (scale with the path's own RTT); loss
    thresholds apply to the per-path EWMA over ack/lost outcomes.
    """

    #: EWMA weight of one ack/lost sample.
    ewma_alpha: float = 0.1
    #: ACTIVE -> DEGRADED when ACK silence exceeds this many PTOs
    #: (matches the legacy ``potentially_failed`` deprioritisation).
    degrade_silence_ptos: float = PATH_FAILURE_PTOS
    #: DEGRADED -> SUSPENDED when silence exceeds this many PTOs.
    suspend_silence_ptos: float = 8.0
    #: ACTIVE -> DEGRADED when the loss EWMA reaches this.
    degrade_loss: float = 0.5
    #: DEGRADED -> ACTIVE needs the loss EWMA back at or below this.
    recover_loss: float = 0.2
    #: First SUSPENDED dwell before a probe, in seconds.
    probe_backoff_initial: float = 0.5
    #: Backoff multiplier applied after every failed probe.
    probe_backoff_factor: float = 2.0
    #: Backoff ceiling in seconds.
    probe_backoff_max: float = 10.0
    #: Uniform jitter fraction added to each backoff (from the seeded RNG).
    probe_jitter: float = 0.25
    #: PROBING -> SUSPENDED when no ACK arrives within this many PTOs.
    probe_timeout_ptos: float = 3.0

    def __post_init__(self):
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        if self.suspend_silence_ptos <= self.degrade_silence_ptos:
            raise ValueError("suspend_silence_ptos must exceed degrade_silence_ptos")
        if not 0.0 <= self.recover_loss <= self.degrade_loss <= 1.0:
            raise ValueError("need 0 <= recover_loss <= degrade_loss <= 1")
        if self.probe_backoff_initial <= 0 or self.probe_backoff_max < self.probe_backoff_initial:
            raise ValueError("probe backoff bounds are inconsistent")
        if self.probe_backoff_factor < 1.0:
            raise ValueError("probe_backoff_factor must be >= 1")
        if self.probe_jitter < 0:
            raise ValueError("probe_jitter must be >= 0")


class PathState:
    """Sender-side state of one path (one cellular interface)."""

    def __init__(
        self,
        path_id: int,
        name: str = "",
        cc: Optional[CongestionController] = None,
        initial_rtt: float = 0.1,
    ):
        self.path_id = path_id
        self.name = name or ("path-%d" % path_id)
        self.cc = cc if cc is not None else BbrController()
        self.rtt = RttEstimator(initial_rtt=initial_rtt)
        self._next_packet_number = 0
        self.last_ack_time = 0.0
        self.last_send_time = 0.0
        #: Sim time of the very first transmission; anchors ACK-silence
        #: measurements for paths that have never been ACKed (a path added
        #: mid-run must not measure its quiet time from t=0).
        self.first_send_time = -1.0
        self.packets_sent = 0
        self.packets_acked = 0
        self.packets_lost = 0
        self.bytes_sent = 0
        self.enabled = True
        # -- health state machine (driven by PathHealthMonitor) ----------
        self.health = HEALTH_ACTIVE
        #: Sim time of the last health transition.
        self.health_since = 0.0
        #: EWMA over per-packet outcomes (ack=0, lost=1).
        self.loss_ewma = 0.0
        #: Set on SUSPENDED -> PROBING; the transport sends one probe and
        #: clears it.
        self.probe_pending = False
        #: Monitor-managed probe schedule (absolute time / current backoff).
        self.probe_next_time = 0.0
        self.probe_backoff = 0.0
        self.probes_sent = 0
        #: EWMA weight; PathHealthMonitor overwrites from its config.
        self.loss_ewma_alpha = 0.1

    def next_packet_number(self) -> int:
        n = self._next_packet_number
        self._next_packet_number += 1
        return n

    @property
    def smoothed_rtt(self) -> float:
        return self.rtt.smoothed_rtt

    def on_sent(self, size: int, now: float) -> None:
        self.cc.on_sent(size, now)
        if self.first_send_time < 0.0:
            self.first_send_time = now
        self.last_send_time = now
        self.packets_sent += 1
        self.bytes_sent += size

    def on_acked(self, size: int, rtt_sample: float, ack_delay: float, now: float) -> None:
        self.rtt.update(rtt_sample, ack_delay)
        self.cc.on_ack(size, rtt_sample, now)
        self.last_ack_time = now
        self.packets_acked += 1
        self.loss_ewma += self.loss_ewma_alpha * (0.0 - self.loss_ewma)

    def on_lost(self, size: int, now: float) -> None:
        self.cc.on_loss(size, now)
        self.packets_lost += 1
        self.loss_ewma += self.loss_ewma_alpha * (1.0 - self.loss_ewma)

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets declared lost so far (timeline metric)."""
        return self.packets_lost / self.packets_sent if self.packets_sent else 0.0

    def ack_silence(self, now: float) -> float:
        """Seconds since the last ACK while data is outstanding (0 when
        nothing is waiting for one).

        A path that has sent but never been ACKed measures from its
        *first transmission*, not from t=0 — otherwise a path added
        mid-run is instantly declared failed (the cold-start bug).
        """
        if self.packets_sent == 0:
            return 0.0
        last_ack = self.last_ack_time
        if self.cc.bytes_in_flight <= 0 and self.last_send_time <= last_ack:
            return 0.0
        return now - (last_ack if last_ack > 0.0 else self.first_send_time)

    def potentially_failed(self, now: float) -> bool:
        """Heuristic liveness: no ACK for several PTOs while data was sent."""
        quiet = self.ack_silence(now)
        return quiet > 0.0 and quiet > PATH_FAILURE_PTOS * self.rtt.pto()

    def is_usable(self, now: float) -> bool:
        """Usable for transmission: enabled, in service, not apparently dead.

        ``SUSPENDED`` and ``PROBING`` paths are out of service: schedulers
        skip them and the recovery planner's rho-capped spread
        re-normalises over the remaining paths.  Probe traffic bypasses
        this check deliberately.
        """
        if not self.enabled or self.health in (HEALTH_SUSPENDED, HEALTH_PROBING):
            return False
        return not self.potentially_failed(now)

    def can_send(self, size: int) -> bool:
        return self.enabled and self.cc.can_send(size)


class PathManager:
    """The sender's set of paths."""

    def __init__(self, paths: Optional[List[PathState]] = None):
        self._paths: Dict[int, PathState] = {}
        # id-sorted view, rebuilt only when the path set changes — these
        # accessors run on every scheduling decision and tick
        self._sorted: List[PathState] = []
        for p in paths or []:
            self.add(p)

    def add(self, path: PathState) -> None:
        if path.path_id in self._paths:
            raise ValueError("duplicate path id %d" % path.path_id)
        self._paths[path.path_id] = path
        self._sorted = sorted(self._paths.values(), key=lambda p: p.path_id)

    def get(self, path_id: int) -> PathState:
        return self._paths[path_id]

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self):
        return iter(self._sorted)

    def all(self) -> List[PathState]:
        # callers may reorder the returned list (schedulers do), so hand
        # out a copy of the cached view
        return list(self._sorted)

    def usable(self, now: float) -> List[PathState]:
        return [p for p in self.all() if p.is_usable(now)]

    def with_window(self, size: int, now: float) -> List[PathState]:
        """Paths that are usable and have window for ``size`` bytes."""
        return [p for p in self.usable(now) if p.can_send(size)]

    def total_available_packets(self, now: float) -> int:
        return sum(p.cc.available_packets() for p in self.usable(now))


class PathHealthMonitor:
    """Drives every path's health state machine off the transport tick.

    One monitor per tunnel client.  :meth:`tick` evaluates each path
    against :class:`PathHealthConfig` thresholds and applies at most one
    legal edge per path per tick, returning the transitions so the
    transport can act on them (send a probe on ``SUSPENDED -> PROBING``).
    Probe backoff is exponential with jitter drawn from the seeded RNG,
    so reruns are byte-identical for a given seed.  Every edge is emitted
    as a ``path_health`` telemetry event and validated against
    :data:`ALLOWED_HEALTH_TRANSITIONS` by the sanitizer when armed.
    """

    def __init__(self, paths: PathManager, config: Optional[PathHealthConfig] = None,
                 seed: int = 0, telemetry=None, sanitizer=None):
        if telemetry is None:
            from ..obs import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        if sanitizer is None:
            from ..sanitizer import NULL_SANITIZER

            sanitizer = NULL_SANITIZER
        self.paths = paths
        self.config = config if config is not None else PathHealthConfig()
        self.telemetry = telemetry
        self.sanitizer = sanitizer
        self.transitions = 0
        self._rng = seeded_rng(seed, "path-health")
        for p in paths:
            p.loss_ewma_alpha = self.config.ewma_alpha

    # -- schedule helpers --------------------------------------------------

    def _next_probe_delay(self, backoff: float) -> float:
        return backoff * (1.0 + self.config.probe_jitter * self._rng.random())

    def _transition(self, path: PathState, new: str, now: float, reason: str) -> None:
        old = path.health
        if self.sanitizer.enabled:
            self.sanitizer.check_path_transition(
                path.path_id, old, new, ALLOWED_HEALTH_TRANSITIONS)
        path.health = new
        path.health_since = now
        self.transitions += 1
        tel = self.telemetry
        if tel.enabled:
            tel.event(now, "path_health", path_id=path.path_id,
                      old=old, new=new, reason=reason,
                      loss_ewma=round(path.loss_ewma, 4),
                      silence=round(path.ack_silence(now), 6))
            tel.count("path.health.%s" % new)
            sp = tel.spans
            if sp.enabled:
                sp.instant("health", now, path=path.path_id,
                           old=old, new=new, reason=reason)

    # -- the machine -------------------------------------------------------

    def _evaluate(self, path: PathState, now: float) -> Optional[Tuple[PathState, str, str]]:
        cfg = self.config
        old = path.health
        if old == HEALTH_ACTIVE:
            silence = path.ack_silence(now)
            if silence > cfg.degrade_silence_ptos * path.rtt.pto():
                self._transition(path, HEALTH_DEGRADED, now, "ack_silence")
            elif path.loss_ewma >= cfg.degrade_loss:
                self._transition(path, HEALTH_DEGRADED, now, "loss_ewma")
            else:
                return None
        elif old == HEALTH_DEGRADED:
            silence = path.ack_silence(now)
            pto = path.rtt.pto()
            if silence > cfg.suspend_silence_ptos * pto:
                path.probe_backoff = cfg.probe_backoff_initial
                path.probe_next_time = now + self._next_probe_delay(path.probe_backoff)
                self._transition(path, HEALTH_SUSPENDED, now, "ack_silence")
            elif (silence <= cfg.degrade_silence_ptos * pto
                  and path.loss_ewma <= cfg.recover_loss):
                self._transition(path, HEALTH_ACTIVE, now, "recovered")
            else:
                return None
        elif old == HEALTH_SUSPENDED:
            if now >= path.probe_next_time:
                path.probe_pending = True
                self._transition(path, HEALTH_PROBING, now, "probe_due")
            else:
                return None
        else:  # HEALTH_PROBING
            if path.last_ack_time > path.health_since:
                # the probe (or any straggler) was ACKed: back in service
                path.probe_pending = False
                path.loss_ewma = 0.0
                path.probe_backoff = 0.0
                self._transition(path, HEALTH_ACTIVE, now, "probe_acked")
            elif now - path.health_since > self.config.probe_timeout_ptos * path.rtt.pto():
                path.probe_pending = False
                path.probe_backoff = min(
                    path.probe_backoff * cfg.probe_backoff_factor,
                    cfg.probe_backoff_max)
                path.probe_next_time = now + self._next_probe_delay(path.probe_backoff)
                self._transition(path, HEALTH_SUSPENDED, now, "probe_timeout")
            else:
                return None
        return (path, old, path.health)

    def tick(self, now: float) -> List[Tuple[PathState, str, str]]:
        """Evaluate every path; returns the transitions applied."""
        out: List[Tuple[PathState, str, str]] = []
        for path in self.paths:
            if not path.enabled:
                continue
            moved = self._evaluate(path, now)
            if moved is not None:
                out.append(moved)
        return out
