"""Per-path transport state for multipath QUIC.

Following the IETF multipath draft the paper builds on, each path has its
own packet-number space, RTT estimator, and congestion controller.  The
:class:`PathState` bundles those for the schedulers and the recovery
planner; :class:`PathManager` owns the set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..quic.cc.base import CongestionController
from ..quic.cc.bbr import BbrController
from ..quic.rtt import RttEstimator

__all__ = [
    "PathState",
    "PathManager",
]

#: A path with no ACK for this many PTOs is considered potentially failed
#: and deprioritised for first transmissions.
PATH_FAILURE_PTOS = 3.0


class PathState:
    """Sender-side state of one path (one cellular interface)."""

    def __init__(
        self,
        path_id: int,
        name: str = "",
        cc: Optional[CongestionController] = None,
        initial_rtt: float = 0.1,
    ):
        self.path_id = path_id
        self.name = name or ("path-%d" % path_id)
        self.cc = cc if cc is not None else BbrController()
        self.rtt = RttEstimator(initial_rtt=initial_rtt)
        self._next_packet_number = 0
        self.last_ack_time = 0.0
        self.last_send_time = 0.0
        self.packets_sent = 0
        self.packets_acked = 0
        self.packets_lost = 0
        self.bytes_sent = 0
        self.enabled = True

    def next_packet_number(self) -> int:
        n = self._next_packet_number
        self._next_packet_number += 1
        return n

    @property
    def smoothed_rtt(self) -> float:
        return self.rtt.smoothed_rtt

    def on_sent(self, size: int, now: float) -> None:
        self.cc.on_sent(size, now)
        self.last_send_time = now
        self.packets_sent += 1
        self.bytes_sent += size

    def on_acked(self, size: int, rtt_sample: float, ack_delay: float, now: float) -> None:
        self.rtt.update(rtt_sample, ack_delay)
        self.cc.on_ack(size, rtt_sample, now)
        self.last_ack_time = now
        self.packets_acked += 1

    def on_lost(self, size: int, now: float) -> None:
        self.cc.on_loss(size, now)
        self.packets_lost += 1

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets declared lost so far (timeline metric)."""
        return self.packets_lost / self.packets_sent if self.packets_sent else 0.0

    def potentially_failed(self, now: float) -> bool:
        """Heuristic liveness: no ACK for several PTOs while data was sent."""
        if self.packets_sent == 0:
            return False
        # this runs on every scheduling decision; skip the PTO computation
        # entirely when nothing is waiting for an ACK
        last_ack = self.last_ack_time
        if self.cc.bytes_in_flight <= 0 and self.last_send_time <= last_ack:
            return False
        quiet = now - (last_ack if last_ack > 0.0 else 0.0)
        return quiet > PATH_FAILURE_PTOS * self.rtt.pto()

    def is_usable(self, now: float) -> bool:
        """Usable for transmission: enabled and not apparently dead."""
        return self.enabled and not self.potentially_failed(now)

    def can_send(self, size: int) -> bool:
        return self.enabled and self.cc.can_send(size)


class PathManager:
    """The sender's set of paths."""

    def __init__(self, paths: Optional[List[PathState]] = None):
        self._paths: Dict[int, PathState] = {}
        # id-sorted view, rebuilt only when the path set changes — these
        # accessors run on every scheduling decision and tick
        self._sorted: List[PathState] = []
        for p in paths or []:
            self.add(p)

    def add(self, path: PathState) -> None:
        if path.path_id in self._paths:
            raise ValueError("duplicate path id %d" % path.path_id)
        self._paths[path.path_id] = path
        self._sorted = sorted(self._paths.values(), key=lambda p: p.path_id)

    def get(self, path_id: int) -> PathState:
        return self._paths[path_id]

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self):
        return iter(self._sorted)

    def all(self) -> List[PathState]:
        # callers may reorder the returned list (schedulers do), so hand
        # out a copy of the cached view
        return list(self._sorted)

    def usable(self, now: float) -> List[PathState]:
        return [p for p in self.all() if p.is_usable(now)]

    def with_window(self, size: int, now: float) -> List[PathState]:
        """Paths that are usable and have window for ``size`` bytes."""
        return [p for p in self.usable(now) if p.can_send(size)]

    def total_available_packets(self, now: float) -> int:
        return sum(p.cc.available_packets() for p in self.usable(now))
