"""Mergeable run aggregates and span-tree delay decomposition.

Fleet-scale analysis (ROADMAP item 1) cannot ship raw per-packet streams
to one place; it ships *aggregates* and folds them.  The primitive that
makes the fold honest is an associative ``merge`` — provided by the
metrics layer (:meth:`repro.obs.metrics.Histogram.merge` is exact on the
shared geometric grid) and lifted here to whole runs:

* :class:`RunAggregate` — QoE frame counts, delivery accounting, and the
  delay histograms of one run (or of any merged set of runs).  Merging
  per-vehicle aggregates in any pairwise order equals aggregating the
  fleet in one pass; the property tests pin this.
* :func:`decompose_spans` — walks the causal span tree of a run
  (:mod:`repro.obs.spans`) and splits each completed frame's
  capture-to-complete delay along its critical path: the **packetise**,
  **queue**, **recovery**, and **flight** stages sum to the frame total,
  so "why was this frame late?" has a numeric answer per frame.
* :func:`worst_frames` — the frames the report's span waterfall shows:
  largest total delay first.

Everything is plain data in, plain dicts out — the HTML report renders
these, and ``state_dict``/``from_state`` round-trips keep aggregates
shippable as JSON between shards (``as_dict`` stays the lossy summary
view reports print).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .metrics import MetricsRegistry

__all__ = [
    "STAGES",
    "decompose_spans",
    "observe_decomposition",
    "worst_frames",
    "RunAggregate",
]

#: Critical-path stages, in lifecycle order; per frame they sum to the
#: capture-to-complete total.
STAGES = ("packetise", "queue", "recovery", "flight")


def decompose_spans(spans) -> List[dict]:
    """Per-frame critical-path delay decomposition from a span recorder.

    The frame completes when its slowest packet is delivered, so the
    split follows that packet:

    * ``packetise`` — frame capture to the packet entering the tunnel;
    * ``queue`` — tunnel ingress to its first wire transmission;
    * ``recovery`` — first transmission to the start of the transmission
      that delivered (zero unless loss forced retransmit/recovery);
    * ``flight`` — the delivering transmission to packet delivery.

    Frames force-closed at end of run (``cut``) never completed — they
    are reported with ``complete: False`` and no stage split.  Each
    entry also carries ``retx`` (extra transmissions beyond one per
    packet across the whole frame) and ``faults`` (fault spans from the
    PR 5 engine overlapping the frame's interval).
    """
    frames = spans.spans("frame")
    if not frames:
        return []
    packets_by_parent: Dict[int, List] = {}
    for p in spans.spans("packet"):
        packets_by_parent.setdefault(p.parent_id, []).append(p)
    tx_by_cause: Dict[int, List] = {}
    for t in spans.spans("tx"):
        cause = (t.attrs or {}).get("cause", 0)
        if cause:
            tx_by_cause.setdefault(cause, []).append(t)
    faults = spans.spans("fault")
    out: List[dict] = []
    for f in frames:
        attrs = f.attrs or {}
        entry = {
            "frame_id": attrs.get("frame", f.span_id),
            "t0": f.start,
            "total": f.duration,
            "complete": not attrs.get("cut", False),
            "keyframe": bool(attrs.get("keyframe", False)),
        }
        pkts = packets_by_parent.get(f.span_id, [])
        entry["packets"] = len(pkts)
        entry["retx"] = sum(
            max(0, len(tx_by_cause.get(p.span_id, ())) - 1) for p in pkts)
        entry["faults"] = sum(
            1 for fs in faults
            if fs.start < f.end and (fs.end is None or fs.end > f.start))
        delivered = [p for p in pkts
                     if p.end is not None and not (p.attrs or {}).get("cut")]
        if entry["complete"] and delivered:
            worst = max(delivered, key=lambda p: (p.end, p.span_id))
            txs = sorted(tx_by_cause.get(worst.span_id, ()),
                         key=lambda t: (t.start, t.span_id))
            first_tx = txs[0].start if txs else worst.start
            last_tx = txs[-1].start if txs else worst.start
            entry["packetise"] = max(0.0, worst.start - f.start)
            entry["queue"] = max(0.0, first_tx - worst.start)
            entry["recovery"] = max(0.0, last_tx - first_tx)
            entry["flight"] = max(0.0, worst.end - last_tx)
            entry["worst_packet"] = (worst.attrs or {}).get("packet",
                                                           worst.span_id)
        out.append(entry)
    return out


def observe_decomposition(metrics: MetricsRegistry, decomposition: Iterable[dict]) -> int:
    """Record stage splits into ``delay.frame`` / ``stage.*`` histograms.

    Returns the number of completed frames folded in.  Incomplete frames
    are counted (``frames.incomplete``) but never pollute the delay
    distributions — a truncated frame has no meaningful stage split.
    """
    folded = 0
    for entry in decomposition:
        if not entry.get("complete") or "flight" not in entry:
            metrics.count("frames.incomplete")
            continue
        folded += 1
        metrics.observe("delay.frame", entry["total"])
        for stage in STAGES:
            metrics.observe("stage.%s" % stage, entry[stage])
        if entry.get("retx"):
            metrics.count("frames.with_retx")
    return folded


def worst_frames(decomposition: Iterable[dict], k: int = 5) -> List[dict]:
    """The ``k`` completed frames with the largest total delay."""
    done = [e for e in decomposition if e.get("complete") and "flight" in e]
    done.sort(key=lambda e: (-e["total"], e["frame_id"]))
    return done[:k]


class RunAggregate:
    """Mergeable summary of one or many streaming runs.

    Construction is cheap and empty; :meth:`add_result` folds a
    :class:`~repro.experiments.runner.StreamRunResult` in (using its
    span recorder for stage decomposition when one is attached), and
    :meth:`merge` folds another aggregate.  Both operations commute and
    associate, so shard-then-merge equals one global pass.
    """

    def __init__(self, label: str = ""):
        self.labels: List[str] = [label] if label else []
        self.runs = 0
        self.duration = 0.0
        self.frames_sent = 0
        self.frame_status: Dict[str, int] = {}
        self.packets_sent = 0
        self.packets_received = 0
        self.metrics = MetricsRegistry()

    # -- folding ----------------------------------------------------------

    def add_result(self, result, censor_penalty: Optional[float] = 1.0) -> "RunAggregate":
        """Fold one StreamRunResult (and its spans, when recorded) in."""
        self.runs += 1
        label = getattr(result, "transport", "")
        if label and label not in self.labels:
            self.labels.append(label)
            self.labels.sort()
        self.duration += result.duration
        self.frames_sent += result.frames_sent
        for status in result.frame_statuses:
            self.frame_status[status] = self.frame_status.get(status, 0) + 1
        self.packets_sent += result.packets_sent
        self.packets_received += result.packets_received
        delays = (result.censored_packet_delays(censor_penalty)
                  if censor_penalty is not None else result.packet_delays)
        self.metrics.observe_many("delay.packet", delays)
        tel = getattr(result, "telemetry", None)
        if tel is not None and tel.enabled and tel.spans.enabled:
            observe_decomposition(self.metrics,
                                  decompose_spans(tel.spans))
        return self

    def merge(self, other: "RunAggregate") -> "RunAggregate":
        """Fold another aggregate in (associative + commutative)."""
        for label in other.labels:
            if label not in self.labels:
                self.labels.append(label)
        self.labels.sort()
        self.runs += other.runs
        self.duration += other.duration
        self.frames_sent += other.frames_sent
        for status, n in other.frame_status.items():
            self.frame_status[status] = self.frame_status.get(status, 0) + n
        self.packets_sent += other.packets_sent
        self.packets_received += other.packets_received
        self.metrics.merge(other.metrics)
        return self

    # -- derived views ----------------------------------------------------

    @property
    def delivery_ratio(self) -> float:
        return (self.packets_received / self.packets_sent
                if self.packets_sent else 0.0)

    def status_rate(self, status: str) -> float:
        total = sum(self.frame_status.values())
        return self.frame_status.get(status, 0) / total if total else 0.0

    def delay_percentiles(self, name: str = "delay.packet") -> Dict[str, float]:
        h = self.metrics._histograms.get(name)
        return h.percentiles() if h is not None else {}

    # -- (de)serialisation -------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "type": "aggregate",
            "labels": list(self.labels),
            "runs": self.runs,
            "duration": self.duration,
            "frames_sent": self.frames_sent,
            "frame_status": dict(sorted(self.frame_status.items())),
            "packets_sent": self.packets_sent,
            "packets_received": self.packets_received,
            "delivery_ratio": self.delivery_ratio,
            "metrics": self.metrics.snapshot(),
        }

    def state_dict(self) -> dict:
        """Exact, mergeable state (lossless histograms, JSON-safe).

        Unlike :meth:`as_dict` — whose metric snapshot keeps only summary
        quantiles — this round-trips through :meth:`from_state` with the
        sparse bucket tables intact, so an aggregate shipped back from a
        shard worker merges exactly as if the runs had been folded
        locally."""
        return {
            "labels": list(self.labels),
            "runs": self.runs,
            "duration": self.duration,
            "frames_sent": self.frames_sent,
            "frame_status": dict(sorted(self.frame_status.items())),
            "packets_sent": self.packets_sent,
            "packets_received": self.packets_received,
            "metrics": self.metrics.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RunAggregate":
        agg = cls()
        agg.labels = sorted(state.get("labels", ()))
        agg.runs = int(state["runs"])
        agg.duration = float(state["duration"])
        agg.frames_sent = int(state["frames_sent"])
        agg.frame_status = {str(k): int(v)
                            for k, v in state["frame_status"].items()}
        agg.packets_sent = int(state["packets_sent"])
        agg.packets_received = int(state["packets_received"])
        agg.metrics = MetricsRegistry.from_state(state["metrics"])
        return agg
