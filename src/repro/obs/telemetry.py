"""The unified telemetry handle threaded through the transport stack.

One :class:`Telemetry` object per run bundles the three data kinds the
evaluation needs:

* **metrics** — counters/gauges/histograms in a :class:`MetricsRegistry`
  keyed on the sim clock;
* **trace** — the ring-buffered packet-lifecycle event stream;
* **timelines** — per-path :class:`PathSample` series from the periodic
  sampler (plus terminal stats-dataclass snapshots under ``stats``).

Every instrumented call site guards with ``if telemetry.enabled:`` so the
disabled case — :data:`NULL_TELEMETRY`, a shared :class:`NullTelemetry`
singleton — costs one attribute load and a branch on the hot path and
nothing else.  ``tools/check_telemetry_overhead.py`` enforces that this
stays under budget.

Export is JSONL: one self-describing record per line, discriminated by a
``type`` field (``meta`` / ``event`` / ``metric`` / ``path_sample`` /
``stats``).  See ``docs/telemetry.md`` for the schema and analysis
recipes.
"""

from __future__ import annotations

import logging
from typing import Dict, Iterator, List, Optional

from .metrics import MetricsRegistry
from .spans import NULL_SPANS, SpanRecorder
from .timeline import DEFAULT_SAMPLE_INTERVAL, PathSample, PathTimelineSampler
from .trace import TraceBuffer, write_jsonl

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
]

logger = logging.getLogger(__name__)


class Telemetry:
    """Live telemetry for one run: metrics + trace + per-path timelines."""

    enabled = True

    def __init__(self, clock=None, trace_capacity: int = TraceBuffer.DEFAULT_CAPACITY,
                 sample_interval: float = DEFAULT_SAMPLE_INTERVAL):
        self.metrics = MetricsRegistry(clock)
        self.trace = TraceBuffer(trace_capacity)
        self.timelines: Dict[int, List[PathSample]] = {}
        self.stats: Dict[str, dict] = {}
        self.sample_interval = sample_interval
        self._sampler: Optional[PathTimelineSampler] = None
        #: Causal span recorder; :data:`NULL_SPANS` until enable_spans().
        self.spans = NULL_SPANS

    def enable_spans(self, capacity: int = SpanRecorder.DEFAULT_CAPACITY) -> SpanRecorder:
        """Attach a live span recorder (idempotent); returns it."""
        if not self.spans.enabled:
            self.spans = SpanRecorder(capacity)
        return self.spans

    # -- clock ------------------------------------------------------------------

    def bind_clock(self, loop) -> None:
        """Point the metrics clock at a simulation loop."""
        self.metrics.clock = lambda: loop.now

    # -- hot-path API (all no-ops on NullTelemetry) ----------------------------

    def event(self, t: float, kind: str, packet_id: int = -1,
              path_id: int = -1, **attrs) -> None:
        self.trace.emit(t, kind, packet_id, path_id, **attrs)

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.count(name, n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def observe_many(self, name: str, values) -> None:
        self.metrics.observe_many(name, values)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    # -- timeline sampling -------------------------------------------------------

    def start_sampling(self, loop, paths, emulator=None,
                       interval: Optional[float] = None) -> None:
        """Begin periodic per-path sampling; replaces any active sampler."""
        self.stop_sampling()
        self._sampler = PathTimelineSampler(
            loop, paths, self.timelines,
            interval=interval or self.sample_interval, emulator=emulator,
        )
        self._sampler.start()

    def stop_sampling(self) -> None:
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None

    # -- terminal stats snapshots -----------------------------------------------

    def record_stats(self, label: str, stats_obj) -> None:
        """Snapshot a terminal stats object (anything with ``as_dict()``)."""
        if hasattr(stats_obj, "as_dict"):
            self.stats[label] = stats_obj.as_dict()
        elif isinstance(stats_obj, dict):
            self.stats[label] = dict(stats_obj)
        else:
            raise TypeError("stats object needs as_dict() or to be a dict")

    # -- export -------------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Every telemetry record as a JSONL-ready dict.

        Ring-buffer overflow is surfaced, not swallowed: when the trace
        ring evicted events, the stream carries a ``telemetry.
        dropped_events`` counter (idempotently pinned to the eviction
        count) and ends with an explicit ``trace_drops`` footer, so a
        truncated export can never be mistaken for a complete one.
        """
        evicted = self.trace.evicted
        if evicted:
            self.metrics.counter("telemetry.dropped_events").value = evicted
        yield {
            "type": "meta",
            "events_buffered": len(self.trace),
            "events_emitted": self.trace.emitted,
            "events_evicted": evicted,
            "sample_interval": self.sample_interval,
        }
        for e in self.trace.events():
            rec = e.as_dict()
            rec["type"] = "event"
            yield rec
        for m in self.metrics.snapshot():
            m["type"] = "metric"
            yield m
        for path_id in sorted(self.timelines):
            for s in self.timelines[path_id]:
                rec = s.as_dict()
                rec["type"] = "path_sample"
                yield rec
        for label in sorted(self.stats):
            yield {"type": "stats", "label": label, "stats": self.stats[label]}
        if evicted:
            yield {
                "type": "trace_drops",
                "dropped_events": evicted,
                "events_emitted": self.trace.emitted,
            }

    def export_jsonl(self, path: str) -> int:
        """Write all records to ``path``; returns the line count."""
        n = write_jsonl(path, self.records())
        logger.info("exported %d telemetry records to %s", n, path)
        return n

    # -- human summary ------------------------------------------------------------

    def summary_table(self) -> str:
        """Run summary: event counts, histogram tails, per-path timelines."""
        from ..analysis.report import format_table

        blocks: List[str] = []
        counts = self.trace.counts_by_kind()
        if counts:
            rows = [[k, str(counts[k])] for k in sorted(counts)]
            if self.trace.evicted:
                rows.append(["(evicted)", str(self.trace.evicted)])
            blocks.append(format_table(["event", "count"], rows,
                                       title="trace events"))
        hist_rows = []
        for m in self.metrics.snapshot():
            if m["kind"] != "histogram":
                continue
            hist_rows.append([
                m["name"], str(m["count"]),
                "%.4f" % m["mean"], "%.4f" % m["p50"],
                "%.4f" % m["p95"], "%.4f" % m["p99"],
            ])
        if hist_rows:
            blocks.append(format_table(
                ["histogram", "n", "mean", "p50", "p95", "p99"], hist_rows,
                title="metrics"))
        counter_rows = [
            [m["name"], str(m["value"])]
            for m in self.metrics.snapshot() if m["kind"] == "counter"
        ]
        if counter_rows:
            blocks.append(format_table(["counter", "value"], counter_rows))
        tl_rows = []
        for path_id in sorted(self.timelines):
            samples = self.timelines[path_id]
            if not samples:
                continue
            last = samples[-1]
            tl_rows.append([
                str(path_id), str(len(samples)),
                str(last.cwnd), "%.1f" % (last.srtt * 1000),
                "%.2f%%" % (last.loss_rate * 100),
            ])
        if tl_rows:
            blocks.append(format_table(
                ["path", "samples", "cwnd B", "srtt ms", "loss"], tl_rows,
                title="per-path timelines (final sample)"))
        return "\n\n".join(blocks) if blocks else "(no telemetry recorded)"


class NullTelemetry:
    """Disabled telemetry: every method is a no-op, ``enabled`` is False.

    Shared as :data:`NULL_TELEMETRY`; call sites check ``enabled`` before
    building event kwargs, so the disabled fast path never allocates.
    """

    enabled = False
    metrics = None
    trace = None
    timelines: Dict[int, List[PathSample]] = {}
    stats: Dict[str, dict] = {}
    spans = NULL_SPANS

    def enable_spans(self, capacity: int = 0):
        return NULL_SPANS

    def bind_clock(self, loop) -> None:
        pass

    def event(self, t, kind, packet_id=-1, path_id=-1, **attrs) -> None:
        pass

    def count(self, name, n=1) -> None:
        pass

    def observe(self, name, value) -> None:
        pass

    def observe_many(self, name, values) -> None:
        pass

    def set_gauge(self, name, value) -> None:
        pass

    def start_sampling(self, loop, paths, emulator=None, interval=None) -> None:
        pass

    def stop_sampling(self) -> None:
        pass

    def record_stats(self, label, stats_obj) -> None:
        pass

    def export_jsonl(self, path) -> int:
        return 0

    def summary_table(self) -> str:
        return "(telemetry disabled)"


#: The shared disabled handle every endpoint defaults to.
NULL_TELEMETRY = NullTelemetry()
