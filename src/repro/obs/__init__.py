"""Unified observability layer: metrics, trace, timelines, spans, profiler.

The one import site for instrumentation: endpoints take a
:class:`Telemetry` handle (defaulting to the no-op :data:`NULL_TELEMETRY`)
and emit lifecycle events, metrics, per-path samples, and causal spans
through it.  :class:`SimProfiler` attaches to the event loop for
per-component time attribution, and :class:`RunAggregate` is the
mergeable fleet-rollup primitive.  See ``docs/telemetry.md``.
"""

from .aggregate import (
    STAGES,
    RunAggregate,
    decompose_spans,
    observe_decomposition,
    worst_frames,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import SimProfiler, component_of
from .spans import NULL_SPANS, NullSpanRecorder, Span, SpanRecorder
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from .timeline import DEFAULT_SAMPLE_INTERVAL, PathSample, PathTimelineSampler, sample_path
from .trace import (
    ACK,
    APP_IN,
    CC_LOSS,
    DECODED,
    EVENT_KINDS,
    EXPIRED,
    INGRESS_DROP,
    LINK_DROP,
    QOE_LOSS,
    RANGE_FORMED,
    RECOVERY_TX,
    SCHEDULED,
    TX,
    TraceBuffer,
    TraceEvent,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "Span",
    "SpanRecorder",
    "NullSpanRecorder",
    "NULL_SPANS",
    "SimProfiler",
    "component_of",
    "RunAggregate",
    "STAGES",
    "decompose_spans",
    "observe_decomposition",
    "worst_frames",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TraceBuffer",
    "TraceEvent",
    "PathSample",
    "PathTimelineSampler",
    "sample_path",
    "DEFAULT_SAMPLE_INTERVAL",
    "EVENT_KINDS",
    "APP_IN",
    "INGRESS_DROP",
    "SCHEDULED",
    "TX",
    "ACK",
    "QOE_LOSS",
    "CC_LOSS",
    "RANGE_FORMED",
    "RECOVERY_TX",
    "DECODED",
    "EXPIRED",
    "LINK_DROP",
    "read_jsonl",
    "write_jsonl",
]
