"""Per-path timeline sampling on the simulation clock.

The paper's per-path plots (cwnd/RTT timelines behind Figs. 8 and 14) need
periodic snapshots of transport state, not just terminal counters.  The
:class:`PathTimelineSampler` rides a :class:`~repro.emulation.events.PeriodicTimer`
and appends one :class:`PathSample` per path per interval, reading from
``PathState`` (and therefore whatever congestion controller — BBR, NewReno,
CUBIC — the path runs) plus, when given the emulator, the uplink queue
depth of the corresponding emulated link.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_SAMPLE_INTERVAL",
    "PathSample",
    "PathTimelineSampler",
]

#: Default sampling cadence in simulated seconds (20 Hz).
DEFAULT_SAMPLE_INTERVAL = 0.05


@dataclass
class PathSample:
    """One snapshot of one path's sender-side state."""

    t: float
    path_id: int
    cwnd: int
    bytes_in_flight: int
    srtt: float
    latest_rtt: float
    min_rtt: float
    pacing_rate: Optional[float]
    packets_sent: int
    packets_acked: int
    packets_lost: int
    loss_rate: float
    uplink_queue_bytes: Optional[int] = None

    def as_dict(self) -> dict:
        return asdict(self)


def sample_path(path, now: float, uplink_queue_bytes: Optional[int] = None) -> PathSample:
    """Snapshot one ``PathState`` (pure read, no side effects)."""
    return PathSample(
        t=now,
        path_id=path.path_id,
        cwnd=path.cc.cwnd,
        bytes_in_flight=path.cc.bytes_in_flight,
        srtt=path.rtt.smoothed_rtt,
        latest_rtt=path.rtt.latest_rtt,
        min_rtt=path.rtt.min_rtt if path.rtt.min_rtt != float("inf") else 0.0,
        pacing_rate=path.cc.pacing_rate,
        packets_sent=path.packets_sent,
        packets_acked=path.packets_acked,
        packets_lost=path.packets_lost,
        loss_rate=path.loss_rate,
        uplink_queue_bytes=uplink_queue_bytes,
    )


class PathTimelineSampler:
    """Samples every path on a fixed sim-time interval into ``timelines``."""

    def __init__(self, loop, paths, timelines: Dict[int, List[PathSample]],
                 interval: float = DEFAULT_SAMPLE_INTERVAL, emulator=None):
        # local import dodges an emulation<->obs import cycle
        from ..emulation.events import PeriodicTimer

        if interval <= 0:
            raise ValueError("interval must be positive")
        self.loop = loop
        self.paths = paths
        self.timelines = timelines
        self.emulator = emulator
        self.interval = interval
        self._timer = PeriodicTimer(loop, interval, self._sample)

    def start(self) -> None:
        self._timer.start(first_delay=0.0)

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        now = self.loop.now
        for path in self.paths:
            queue_bytes = None
            if self.emulator is not None:
                try:
                    queue_bytes = self.emulator.channels[path.path_id].uplink.queue_bytes
                except (IndexError, AttributeError):
                    queue_bytes = None
            self.timelines.setdefault(path.path_id, []).append(
                sample_path(path, now, queue_bytes)
            )
