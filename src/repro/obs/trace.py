"""Structured packet-lifecycle trace: ring-buffered events + JSONL.

The XNC lifecycle the paper's figures reason about is::

    app_in -> scheduled(path) -> tx -> ack
                                    \\-> qoe_loss -> range_formed
                                          -> recovery_tx(path, n') -> decoded
                                                                   \\-> expired

Each stage is one :class:`TraceEvent` keyed by the *application* packet ID
(the tunnel's unit of loss and recovery), stamped with simulation time.
Events live in a bounded ring buffer (:class:`TraceBuffer`) so an
always-on trace cannot grow without bound; the buffer counts what it
evicted so exports are honest about truncation.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

__all__ = [
    "APP_IN",
    "INGRESS_DROP",
    "SCHEDULED",
    "TX",
    "ACK",
    "QOE_LOSS",
    "CC_LOSS",
    "RANGE_FORMED",
    "RECOVERY_TX",
    "DECODED",
    "EXPIRED",
    "FAULT",
    "PATH_HEALTH",
    "WATCHDOG",
    "TraceBuffer",
    "write_jsonl",
    "read_jsonl",
]

# -- event kinds (the lifecycle vocabulary) ---------------------------------

APP_IN = "app_in"              #: application packet entered the tunnel
INGRESS_DROP = "ingress_drop"  #: tail-dropped at the tun ingress queue
SCHEDULED = "scheduled"        #: scheduler picked path(s) for a packet
TX = "tx"                      #: first transmission / dup / retx on a path
ACK = "ack"                    #: carrying QUIC packet acknowledged
QOE_LOSS = "qoe_loss"          #: QoE-aware scan declared the packet lost
CC_LOSS = "cc_loss"            #: RFC 9002 congestion-level loss
RANGE_FORMED = "range_formed"  #: lost packets partitioned into a range
RECOVERY_TX = "recovery_tx"    #: one coded/uncoded recovery transmission
DECODED = "decoded"            #: receiver recovered / delivered the packet
EXPIRED = "expired"            #: abandoned (stale video, §4.4.3)
LINK_DROP = "link_drop"        #: emulated link dropped a wire packet
FAULT = "fault"                #: injected fault applied/lifted (chaos layer)
PATH_HEALTH = "path_health"    #: path health state-machine transition
WATCHDOG = "watchdog"          #: stream watchdog declared a terminal stall

EVENT_KINDS = (
    APP_IN, INGRESS_DROP, SCHEDULED, TX, ACK, QOE_LOSS, CC_LOSS,
    RANGE_FORMED, RECOVERY_TX, DECODED, EXPIRED, LINK_DROP,
    FAULT, PATH_HEALTH, WATCHDOG,
)


class TraceEvent:
    """One lifecycle event: sim time, kind, packet ID, path, free attrs."""

    __slots__ = ("t", "kind", "packet_id", "path_id", "attrs")

    def __init__(self, t: float, kind: str, packet_id: int = -1,
                 path_id: int = -1, attrs: Optional[dict] = None):
        self.t = t
        self.kind = kind
        self.packet_id = packet_id
        self.path_id = path_id
        self.attrs = attrs

    def as_dict(self) -> dict:
        d = {"t": self.t, "kind": self.kind}
        if self.packet_id >= 0:
            d["packet_id"] = self.packet_id
        if self.path_id >= 0:
            d["path_id"] = self.path_id
        if self.attrs:
            d.update(self.attrs)
        return d

    def __repr__(self) -> str:  # debugging aid only
        return "TraceEvent(%r)" % (self.as_dict(),)


class TraceBuffer:
    """Bounded ring of :class:`TraceEvent`, oldest evicted first."""

    DEFAULT_CAPACITY = 262_144

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self._events)

    def emit(self, t: float, kind: str, packet_id: int = -1,
             path_id: int = -1, **attrs) -> None:
        self.emitted += 1
        self._events.append(
            TraceEvent(t, kind, packet_id, path_id, attrs or None)
        )

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """Buffered events in emission order, optionally one kind only."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def for_packet(self, packet_id: int) -> List[TraceEvent]:
        """Every buffered event about one application packet ID.

        Range-level events (``range_formed`` / ``recovery_tx``) carry a
        ``count`` attribute and match any ID inside their span.
        """
        out = []
        for e in self._events:
            if e.packet_id == packet_id:
                out.append(e)
                continue
            if e.attrs and "count" in e.attrs and e.packet_id >= 0:
                if e.packet_id <= packet_id < e.packet_id + e.attrs["count"]:
                    out.append(e)
        return out

    def lifecycle(self, packet_id: int) -> List[str]:
        """The ordered kinds one packet went through (for assertions)."""
        return [e.kind for e in self.for_packet(packet_id)]

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


# -- JSONL ---------------------------------------------------------------------


def write_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write dict records one-per-line; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path: str) -> List[dict]:
    """Load a JSONL file back into a list of dicts (blank lines skipped)."""
    out: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
