"""Zero-dependency metrics primitives keyed on the simulation clock.

Three instrument kinds, mirroring the conventional counter/gauge/histogram
trio but timestamped with *simulation* time (the registry is handed a
clock callable, normally ``lambda: loop.now``), so exported metrics line
up with trace events and path-timeline samples from the same run:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value plus the sim time it was written;
* :class:`Histogram` — log-bucketed value distribution with p50/p95/p99
  estimation.  Buckets grow geometrically (HdrHistogram-style), so
  recording is O(1) and quantile estimates carry a bounded *relative*
  error of about half the growth factor — plenty for delay CDFs spanning
  100 µs to 10 s.

Every instrument supports an **associative, commutative** in-place
``merge(other)`` — the primitive fleet sharding needs: per-vehicle (or
per-PoP) registries merge pairwise in any grouping and produce the same
rollup as one global registry would have.  For histograms this holds
*exactly* (bucket tables are sparse integer maps over a shared geometric
grid), which is what makes fleet-level delay CDFs honest.

Everything here is plain Python on purpose: the registry must import (and
no-op) on machines with nothing but the standard library.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
]

#: Geometric bucket growth; ~1.6% worst-case relative quantile error.
DEFAULT_GROWTH = 1.03
#: Values below this are clamped into bucket 0 (100 ns in seconds-units).
DEFAULT_MIN_VALUE = 1e-7


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter in (associative: counts sum)."""
        self.value += other.value
        return self

    def as_dict(self) -> dict:
        return {"name": self.name, "kind": "counter", "value": self.value}

    def state_dict(self) -> dict:
        """Exact state for cross-process shipping (see Histogram)."""
        return {"name": self.name, "value": self.value}

    @classmethod
    def from_state(cls, state: dict) -> "Counter":
        c = cls(state["name"])
        c.value = int(state["value"])
        return c


class Gauge:
    """Last-value instrument with the sim time of the last write."""

    __slots__ = ("name", "value", "updated_at")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updated_at = 0.0

    def set(self, value: float, now: float) -> None:
        self.value = value
        self.updated_at = now

    def merge(self, other: "Gauge") -> "Gauge":
        """Fold another gauge in: the later sim-time write wins."""
        if other.updated_at > self.updated_at:
            self.value = other.value
            self.updated_at = other.updated_at
        return self

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": "gauge",
            "value": self.value,
            "updated_at": self.updated_at,
        }

    def state_dict(self) -> dict:
        """Exact state for cross-process shipping (see Histogram)."""
        return {"name": self.name, "value": self.value,
                "updated_at": self.updated_at}

    @classmethod
    def from_state(cls, state: dict) -> "Gauge":
        g = cls(state["name"])
        g.value = float(state["value"])
        g.updated_at = float(state["updated_at"])
        return g


class Histogram:
    """Log-bucketed histogram with quantile estimation.

    ``record`` maps a positive value to a geometric bucket index in O(1);
    ``quantile`` walks the (sparse) bucket table and returns the geometric
    midpoint of the bucket holding the requested rank.  Exact count, sum,
    min, and max are kept alongside so means are not bucket-quantised.
    """

    __slots__ = ("name", "growth", "min_value", "_log_growth", "_buckets",
                 "count", "total", "min", "max")

    def __init__(self, name: str, growth: float = DEFAULT_GROWTH,
                 min_value: float = DEFAULT_MIN_VALUE):
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        self.name = name
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return int(math.log(value / self.min_value) / self._log_growth) + 1

    def _bucket_value(self, index: int) -> float:
        if index == 0:
            return self.min_value
        # geometric midpoint of [g^(i-1), g^i) * min_value
        return self.min_value * self.growth ** (index - 0.5)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = self._index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def record_many(self, values) -> None:
        """Record a whole sequence with one pass of bookkeeping.

        Equivalent to ``for v in values: self.record(v)`` — summary fields
        and bucket counts end up identical — but pays the attribute and
        dict overhead once per batch instead of once per value.
        """
        values = list(values)
        if not values:
            return
        self.count += len(values)
        self.total += sum(values)
        lo, hi = min(values), max(values)
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        buckets = self._buckets
        index = self._index
        for value in values:
            idx = index(value)
            buckets[idx] = buckets.get(idx, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in (exactly associative).

        Both sides must share the geometric grid (``growth`` and
        ``min_value``): bucket indices then mean the same value range on
        both sides and the merge is a plain sparse-map sum, so any merge
        tree over the same shards yields identical buckets, count, sum,
        and extremes — the property the fleet-rollup tests pin.
        """
        if (other.growth != self.growth or other.min_value != self.min_value):
            raise ValueError(
                "cannot merge histograms on different grids: "
                "growth %r/%r min_value %r/%r"
                % (self.growth, other.growth, self.min_value, other.min_value))
        buckets = self._buckets
        for idx, n in other._buckets.items():
            buckets[idx] = buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) of recorded values."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must lie in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                # clamp the estimate to the observed extremes
                return min(max(self._bucket_value(idx), self.min), self.max)
        return self.max

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def as_dict(self) -> dict:
        d = {
            "name": self.name,
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }
        d.update(self.percentiles())
        return d

    def state_dict(self) -> dict:
        """Exact, lossless state — unlike :meth:`as_dict` (a summary for
        humans and exports), this keeps the sparse bucket table so a
        histogram shipped between shard processes merges *identically* to
        one that never left.  Bucket keys are stringified for JSON; order
        is sorted so the serialisation is byte-stable."""
        return {
            "name": self.name,
            "growth": self.growth,
            "min_value": self.min_value,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): self._buckets[k]
                        for k in sorted(self._buckets)},
        }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        h = cls(state["name"], growth=state["growth"],
                min_value=state["min_value"])
        h.count = int(state["count"])
        h.total = float(state["sum"])
        h.min = math.inf if state["min"] is None else float(state["min"])
        h.max = -math.inf if state["max"] is None else float(state["max"])
        h._buckets = {int(k): int(n) for k, n in state["buckets"].items()}
        return h

    def iter_cdf(self):
        """Yield ``(bucket_value, cumulative_fraction)`` pairs in value
        order — the points a CDF plot needs, without expanding counts."""
        if not self.count:
            return
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            value = min(max(self._bucket_value(idx), self.min), self.max)
            yield value, seen / self.count


class MetricsRegistry:
    """Get-or-create home for every instrument in one run.

    The ``clock`` callable supplies simulation time for gauge writes, so
    callers never pass ``now`` explicitly on the hot path.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock or (lambda: 0.0)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, growth: float = DEFAULT_GROWTH) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, growth=growth)
        return h

    # -- hot-path shorthands -------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    def observe_many(self, name: str, values) -> None:
        self.histogram(name).record_many(values)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value, self.clock())

    # -- fleet rollup ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold every instrument of ``other`` into this registry.

        Instruments are matched by name and created on first sight (a
        new histogram adopts the incoming grid), so merging shard
        registries in any pairwise order reproduces the global registry.
        """
        for name, c in other._counters.items():
            self.counter(name).merge(c)
        for name, g in other._gauges.items():
            self.gauge(name).merge(g)
        for name, h in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram(  # lint: hot-ok(constructed once per first-seen instrument name, not per fold; adopting the incoming grid needs a fresh Histogram)
                    name, growth=h.growth, min_value=h.min_value)
            mine.merge(h)
        return self

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> List[dict]:
        """Every instrument as a serialisable dict, names sorted."""
        out: List[dict] = []
        for store in (self._counters, self._gauges, self._histograms):
            for name in sorted(store):
                out.append(store[name].as_dict())
        return out

    def state_dict(self) -> dict:
        """Exact registry state (all instruments, lossless histograms).

        JSON-safe and byte-stable (sorted names); ``from_state`` round
        trips it so registries can cross process boundaries and still
        merge exactly — the contract the fleet runner's shard workers
        rely on."""
        return {
            "counters": [self._counters[n].state_dict()
                         for n in sorted(self._counters)],
            "gauges": [self._gauges[n].state_dict()
                       for n in sorted(self._gauges)],
            "histograms": [self._histograms[n].state_dict()
                           for n in sorted(self._histograms)],
        }

    @classmethod
    def from_state(cls, state: dict) -> "MetricsRegistry":
        reg = cls()
        for s in state.get("counters", ()):
            c = Counter.from_state(s)
            reg._counters[c.name] = c
        for s in state.get("gauges", ()):
            g = Gauge.from_state(s)
            reg._gauges[g.name] = g
        for s in state.get("histograms", ()):
            h = Histogram.from_state(s)
            reg._histograms[h.name] = h
        return reg
