"""Causal span tracing: the "why was this frame late?" layer.

Flat lifecycle events (:mod:`repro.obs.trace`) answer *what happened*;
spans answer *what caused what and how long each stage took*.  A
:class:`Span` is a named sim-time interval with an optional parent, and
the recorder keeps two kinds of edges between them:

* **parent edges** (``parent`` on the span) form a strict containment
  tree: a child opens and closes inside its parent's interval.  The
  tree the transport emits is ``frame -> packet`` and
  ``range -> encode`` — the shapes where containment genuinely holds.
* **cause edges** (a ``cause`` attribute holding another span's id) are
  free-form causal links that may cross the containment rule: a
  per-path transmission outlives the packet it carried whenever its ACK
  arrives after the packet was already decoded from a coded range, so
  ``tx`` spans sit at the root and point at their packet via ``cause``.

The vocabulary threaded through the stack (see ``docs/telemetry.md``):

====================  ========================================================
span                  interval
====================  ========================================================
``frame``             video frame capture -> frame completely delivered
``packet``            app packet entered tunnel -> decoded / expired
``tx``                one wire transmission -> ACK / cc-loss (per path)
``range``             recovery range formed -> one-shot plan executed
``encode``            the XNC block encode inside a recovery plan
``decode``            first coded packet of a range seen -> first decode
``handshake``         QUIC connect -> ESTABLISHED
``fault``             injected fault applied -> lifted (chaos layer)
``health``            instant: path-health state transition
``playout``           frame complete -> displayed at the playout slot
====================  ========================================================

Everything is keyed on the *simulation* clock and span ids are assigned
in event order, so a seeded run exports a byte-identical span JSONL
every time — the determinism regression suite enforces it.  Disabled
recording is the shared :data:`NULL_SPANS` singleton (``enabled`` is
False, every method a no-op), mirroring the telemetry/sanitizer
null-singleton contract gated by ``tools/check_telemetry_overhead.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SPAN_FRAME",
    "SPAN_PACKET",
    "SPAN_TX",
    "SPAN_RANGE",
    "SPAN_ENCODE",
    "SPAN_DECODE",
    "SPAN_HANDSHAKE",
    "SPAN_FAULT",
    "SPAN_HEALTH",
    "SPAN_PLAYOUT",
    "SPAN_DROP",
    "SPAN_NAMES",
    "Span",
    "SpanRecorder",
    "NullSpanRecorder",
    "NULL_SPANS",
]

# -- span names (the causal vocabulary) --------------------------------------

SPAN_FRAME = "frame"          #: video frame capture -> complete delivery
SPAN_PACKET = "packet"        #: app packet ingress -> decoded / expired
SPAN_TX = "tx"                #: one transmission on one path -> ack / loss
SPAN_RANGE = "range"          #: recovery range formed -> plan executed
SPAN_ENCODE = "encode"        #: XNC block encode work inside a plan
SPAN_DECODE = "decode"        #: coded range first seen -> first decode
SPAN_HANDSHAKE = "handshake"  #: QUIC connect -> ESTABLISHED
SPAN_FAULT = "fault"          #: injected fault applied -> lifted
SPAN_HEALTH = "health"        #: instant path-health transition marker
SPAN_PLAYOUT = "playout"      #: frame complete -> playout slot display
SPAN_DROP = "drop"            #: instant emulator link drop marker

SPAN_NAMES = (
    SPAN_FRAME, SPAN_PACKET, SPAN_TX, SPAN_RANGE, SPAN_ENCODE,
    SPAN_DECODE, SPAN_HANDSHAKE, SPAN_FAULT, SPAN_HEALTH, SPAN_PLAYOUT,
    SPAN_DROP,
)

#: Chrome trace-event track (tid) per span name; path-scoped spans use
#: ``_PATH_TRACK_BASE + path_id`` instead so Perfetto lays transmissions
#: out one lane per path.
_NAME_TRACKS = {
    SPAN_FRAME: 1,
    SPAN_PACKET: 2,
    SPAN_RANGE: 3,
    SPAN_ENCODE: 3,
    SPAN_DECODE: 4,
    SPAN_HANDSHAKE: 5,
    SPAN_FAULT: 6,
    SPAN_HEALTH: 6,
    SPAN_PLAYOUT: 7,
    SPAN_DROP: 8,
}
_PATH_TRACK_BASE = 10


class Span:
    """One named sim-time interval with a parent edge and free attrs."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(self, span_id: int, parent_id: int, name: str,
                 start: float, attrs: Optional[dict] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def as_dict(self) -> dict:
        d = {
            "type": "span",
            "id": self.span_id,
            "name": self.name,
            "t0": self.start,
            "t1": self.end,
        }
        if self.parent_id:
            d["parent"] = self.parent_id
        if self.attrs:
            d.update(self.attrs)
        return d

    def __repr__(self) -> str:  # debugging aid only
        return "Span(%r)" % (self.as_dict(),)


class SpanRecorder:
    """Bounded span store with causal-key bindings and two exporters.

    The recorder never evicts (eviction would orphan parent edges);
    once ``capacity`` spans exist, new opens are *dropped* and counted,
    and every export carries an honest ``span_drops`` footer.
    """

    enabled = True

    DEFAULT_CAPACITY = 262_144

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans: Dict[int, Span] = {}
        self._open: Dict[int, Span] = {}
        self._bindings: Dict[Tuple[str, Any], int] = {}
        self._next_id = 1
        self.opened = 0
        self.dropped = 0

    # -- core lifecycle ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def open(self, name: str, t: float, parent: int = 0, **attrs) -> int:
        """Open a span; returns its id (0 when dropped at capacity)."""
        if len(self._spans) >= self.capacity:
            self.dropped += 1
            return 0
        sid = self._next_id
        self._next_id += 1
        self.opened += 1
        span = Span(sid, parent, name, t, attrs or None)
        self._spans[sid] = span
        self._open[sid] = span
        return sid

    def close(self, span_id: int, t: float, **attrs) -> None:
        """Close an open span (first close wins; later calls no-op)."""
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end = t
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)

    def annotate(self, span_id: int, **attrs) -> None:
        """Merge attributes into a span (open or closed)."""
        span = self._spans.get(span_id)
        if span is None or not attrs:
            return
        if span.attrs is None:
            span.attrs = attrs
        else:
            span.attrs.update(attrs)

    def instant(self, name: str, t: float, parent: int = 0, **attrs) -> int:
        """A zero-length span: open and close at the same instant."""
        sid = self.open(name, t, parent=parent, **attrs)
        if sid:
            self.close(sid, t)
        return sid

    def finish(self, t: float) -> int:
        """Close every still-open span at ``t`` (end of run).

        Children close before parents (descending id — a child is always
        opened after its parent), so containment holds by construction.
        Returns how many spans were force-closed; each is marked
        ``cut=True`` so analysis can tell delivery from truncation.
        """
        leftovers = sorted(self._open, reverse=True)
        for sid in leftovers:
            self.close(sid, t, cut=True)
        return len(leftovers)

    # -- causal key bindings ----------------------------------------------

    def bind(self, kind: str, key: Any, span_id: int) -> None:
        """Register ``span_id`` as *the* span for a domain key.

        Kinds in use: ``frame`` (frame_id), ``packet`` (app packet id),
        ``range`` ((start_id, count)), ``decode`` ((start_id, count)).
        """
        if span_id:
            self._bindings[(kind, key)] = span_id

    def lookup(self, kind: str, key: Any) -> int:
        """The bound span id for a domain key, or 0 when unknown."""
        return self._bindings.get((kind, key), 0)

    # -- introspection -----------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """All spans in id (open) order, optionally one name only."""
        out = [self._spans[sid] for sid in sorted(self._spans)]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def get(self, span_id: int) -> Optional[Span]:
        return self._spans.get(span_id)

    def children(self, span_id: int) -> List[Span]:
        """Direct containment children of a span, in id order."""
        return [s for s in self.spans() if s.parent_id == span_id]

    def counts_by_name(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self._spans.values():
            out[span.name] = out.get(span.name, 0) + 1
        return out

    # -- export ------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """JSONL-ready dicts: a meta header, spans by id, a drop footer."""
        yield {
            "type": "span_meta",
            "spans": len(self._spans),
            "open": len(self._open),
            "dropped": self.dropped,
        }
        for sid in sorted(self._spans):
            yield self._spans[sid].as_dict()
        if self.dropped:
            yield {"type": "span_drops", "dropped_spans": self.dropped}

    def export_jsonl(self, path: str) -> int:
        """Write span records to ``path``; returns the line count."""
        from .trace import write_jsonl

        return write_jsonl(path, self.records())

    def to_chrome_trace(self) -> dict:
        """The span set as a Chrome trace-event JSON document.

        Loads directly in Perfetto / ``chrome://tracing``: complete
        (``ph: "X"``) events with microsecond timestamps, one thread
        lane per span family (per path for transmissions), plus
        ``thread_name`` metadata records naming the lanes.
        """
        events: List[dict] = []
        tracks: Dict[int, str] = {}
        for sid in sorted(self._spans):
            span = self._spans[sid]
            attrs = span.attrs or {}
            if "path" in attrs:
                tid = _PATH_TRACK_BASE + int(attrs["path"])
                tracks.setdefault(tid, "path %d" % attrs["path"])
            else:
                tid = _NAME_TRACKS.get(span.name, 0)
                tracks.setdefault(tid, span.name)
            end = span.end if span.end is not None else span.start
            args = {"id": span.span_id}
            if span.parent_id:
                args["parent"] = span.parent_id
            args.update(attrs)
            events.append({
                "name": span.name,
                "cat": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round((end - span.start) * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": args,
            })
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            }
            for tid, label in sorted(tracks.items())
        ]
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the trace-event count."""
        import json

        doc = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
        return len(doc["traceEvents"])


class NullSpanRecorder:
    """Disabled span recording: every method is a no-op returning 0/empty.

    Shared as :data:`NULL_SPANS`.  Call sites guard with
    ``if spans.enabled:`` before building attribute kwargs, so the
    disabled fast path costs one attribute load and a branch.
    """

    enabled = False
    opened = 0
    dropped = 0
    open_count = 0
    capacity = 0

    def __len__(self) -> int:
        return 0

    def open(self, name, t, parent=0, **attrs) -> int:
        return 0

    def close(self, span_id, t, **attrs) -> None:
        pass

    def annotate(self, span_id, **attrs) -> None:
        pass

    def instant(self, name, t, parent=0, **attrs) -> int:
        return 0

    def finish(self, t) -> int:
        return 0

    def bind(self, kind, key, span_id) -> None:
        pass

    def lookup(self, kind, key) -> int:
        return 0

    def spans(self, name=None) -> List[Span]:
        return []

    def get(self, span_id) -> Optional[Span]:
        return None

    def children(self, span_id) -> List[Span]:
        return []

    def counts_by_name(self) -> Dict[str, int]:
        return {}

    def records(self) -> Iterator[dict]:
        return iter(())

    def export_jsonl(self, path) -> int:
        return 0

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path) -> int:
        return 0


#: The shared disabled recorder every Telemetry defaults to.
NULL_SPANS = NullSpanRecorder()
