"""Sim-time profiler: per-component attribution of event-loop work.

The event loop dispatches every callback of every run; the profiler
hooks that single dispatch point (``EventLoop.profiler``) and attributes
each callback to a component — scheduler, coder, congestion control,
emulator, video, telemetry itself — by the module of the function that
actually ran.  ``PeriodicTimer`` wraps its payload in ``_fire``, so the
profiler unwraps one level to charge the wrapped callback, not the
timer plumbing.

Two kinds of numbers come out:

* **deterministic** — call counts per component and per callback, plus
  the sim-time of the first/last dispatch.  Same seed, same counts;
  the profiler regression test pins these.
* **informational** — wall-clock self-time per component.  This is the
  only sanctioned wall-clock use inside ``src/repro`` (suppressed
  inline per call site); it never feeds back into simulation state, so
  determinism is unaffected.

Attach with ``loop.profiler = SimProfiler()`` (the runner does this for
``profile=True`` runs).  A detached loop (``profiler is None``) pays one
local-variable ``is None`` test per event — the disabled-overhead gate
in ``tools/check_telemetry_overhead.py`` bounds that branch.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

__all__ = [
    "COMPONENT_ORDER",
    "component_of",
    "SimProfiler",
]

#: Module-prefix -> component, first match wins (most specific first).
_COMPONENT_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro.multipath.scheduler", "scheduler"),
    ("repro.multipath", "path"),
    ("repro.quic.cc", "cc"),
    ("repro.quic", "quic"),
    ("repro.core", "coder"),
    ("repro.obs", "telemetry"),
    ("repro.sanitizer", "sanitizer"),
    ("repro.emulation", "emulator"),
    ("repro.video", "video"),
    ("repro.transport", "transport"),
    ("repro.baselines", "transport"),
    ("repro.faults", "faults"),
    ("repro.cloud", "cloud"),
    ("repro.cpe", "cpe"),
)

#: Canonical component ordering for reports (everything else sorts after).
COMPONENT_ORDER = tuple(dict.fromkeys(c for _, c in _COMPONENT_PREFIXES)) + ("other",)


def _unwrap(callback: Callable) -> Callable:
    """Charge PeriodicTimer payloads to the wrapped callback.

    Duck-typed on the ``_fire``/``_callback`` shape so this module does
    not import :mod:`repro.emulation.events` (keeps the import graph
    acyclic: the loop only duck-types ``loop.profiler``).
    """
    if getattr(callback, "__name__", "") == "_fire":
        inner = getattr(getattr(callback, "__self__", None), "_callback", None)
        if inner is not None:
            return inner
    return callback


def component_of(callback: Callable) -> str:
    """The component a callback belongs to, by its defining module."""
    callback = _unwrap(callback)
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        module = type(owner).__module__
    else:
        module = getattr(callback, "__module__", "") or ""
    for prefix, component in _COMPONENT_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return component
    return "other"


class _Stat:
    __slots__ = ("calls", "wall")

    def __init__(self):
        self.calls = 0
        self.wall = 0.0


class SimProfiler:
    """Attributes event-loop callbacks to components; see module docs."""

    enabled = True

    def __init__(self):
        self._components: Dict[str, _Stat] = {}
        self._callbacks: Dict[str, _Stat] = {}
        #: function object -> (component, label) memo; bound methods of
        #: the same function share one entry, so the memo stays tiny.
        self._memo: Dict[Any, Tuple[str, str]] = {}
        self.calls = 0
        self.first_dispatch: float = float("nan")
        self.last_dispatch: float = float("nan")

    # -- the hook ---------------------------------------------------------

    def call(self, callback: Callable, args: tuple, when: float) -> None:
        """Run ``callback(*args)``, charging its time to a component.

        This replaces the loop's bare ``callback(*args)`` dispatch when a
        profiler is attached, so it must re-raise whatever the callback
        raises and keep the accounting correct on the way out.
        """
        target = _unwrap(callback)
        key = getattr(target, "__func__", target)
        entry = self._memo.get(key)
        if entry is None:
            owner = getattr(target, "__self__", None)
            module = (type(owner).__module__ if owner is not None
                      else getattr(target, "__module__", "") or "")
            component = "other"
            for prefix, name in _COMPONENT_PREFIXES:
                if module == prefix or module.startswith(prefix + "."):
                    component = name
                    break
            label = "%s.%s" % (module, getattr(target, "__qualname__",
                                               getattr(target, "__name__", "?")))
            entry = (component, label)
            self._memo[key] = entry
        component, label = entry
        if self.calls == 0:
            self.first_dispatch = when
        self.last_dispatch = when
        self.calls += 1
        cstat = self._components.get(component)
        if cstat is None:
            cstat = self._components[component] = _Stat()
        lstat = self._callbacks.get(label)
        if lstat is None:
            lstat = self._callbacks[label] = _Stat()
        t0 = time.perf_counter()  # lint: disable=no-wall-clock -- profiler self-time is informational and never feeds the sim clock
        try:
            callback(*args)
        finally:
            dt = time.perf_counter() - t0  # lint: disable=no-wall-clock -- paired read closing the profiler self-time window
            cstat.calls += 1
            cstat.wall += dt
            lstat.calls += 1
            lstat.wall += dt

    # -- deterministic views ----------------------------------------------

    def calls_by_component(self) -> Dict[str, int]:
        """Call counts per component — seeded-deterministic."""
        return {name: stat.calls for name, stat in sorted(self._components.items())}

    def calls_by_callback(self) -> Dict[str, int]:
        """Call counts per callback label — seeded-deterministic."""
        return {name: stat.calls for name, stat in sorted(self._callbacks.items())}

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """Structured report: deterministic counts + informational wall time."""
        total_wall = sum(s.wall for s in self._components.values()) or 1.0
        order = {c: i for i, c in enumerate(COMPONENT_ORDER)}
        components = []
        for name, stat in sorted(
                self._components.items(),
                key=lambda kv: (order.get(kv[0], len(order)), kv[0])):
            components.append({
                "component": name,
                "calls": stat.calls,
                "wall_s": round(stat.wall, 6),
                "wall_share": round(stat.wall / total_wall, 4),
            })
        top = sorted(self._callbacks.items(),
                     key=lambda kv: (-kv[1].calls, kv[0]))[:10]
        return {
            "type": "profile",
            "calls": self.calls,
            "first_dispatch": self.first_dispatch,
            "last_dispatch": self.last_dispatch,
            "components": components,
            "top_callbacks": [
                {"callback": name, "calls": stat.calls, "wall_s": round(stat.wall, 6)}
                for name, stat in top
            ],
        }

    @staticmethod
    def format_report(report: dict) -> str:
        """Human-readable component table from a :meth:`report` dict."""
        rows = ["%-12s %10s %12s %8s" % ("component", "calls", "wall_ms", "share")]
        for entry in report["components"]:
            rows.append("%-12s %10d %12.3f %7.1f%%" % (
                entry["component"], entry["calls"],
                entry["wall_s"] * 1e3, entry["wall_share"] * 100))
        rows.append("%-12s %10d" % ("total", report["calls"]))
        return "\n".join(rows)

    def summary_table(self) -> str:
        """Human-readable component table (calls deterministic, wall not)."""
        return self.format_report(self.report())
