"""Shared tunnel-endpoint machinery used by XNC and every baseline."""

from .base import AppPacket, ClientStats, SentInfo, TunnelClientBase, TunnelServerBase
from .reverse import BidirectionalTunnel, ReversedEmulator

__all__ = [
    "AppPacket",
    "ClientStats",
    "SentInfo",
    "TunnelClientBase",
    "TunnelServerBase",
    "BidirectionalTunnel",
    "ReversedEmulator",
]
