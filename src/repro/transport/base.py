"""Shared tunnel-endpoint machinery.

Every transport under comparison (XNC, reliable MPQUIC/MPTCP with various
schedulers, BONDING, Pluribus) is a pair of endpoints over the multipath
emulator:

* a **tunnel client** (runs on the CPE) that accepts application packets,
  schedules them onto paths as QUIC packets, and processes ACKs arriving
  on the downlink;
* a **tunnel server** (runs in the edge proxy) that receives QUIC packets,
  emits per-path ACKs on the downlink, and delivers application payloads
  upward.

This module implements the parts all of them share: per-path sent-packet
maps, RTT sampling, standard RFC 9002 congestion-level loss accounting
(packet threshold + time threshold), ACK emission, and the statistics the
benchmarks read.  Policy differences — what to do when an application
packet is deemed lost — live in the subclasses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.frames import XncNcFrame
from ..emulation.emulator import MultipathEmulator
from ..hotpath import hot_path
from ..emulation.events import EventLoop, PeriodicTimer
from ..multipath.path import (
    HEALTH_PROBING,
    PathHealthConfig,
    PathHealthMonitor,
    PathManager,
    PathState,
)
from ..multipath.scheduler.base import Scheduler
from ..obs import NULL_TELEMETRY
from ..obs import trace as ev
from ..quic.ack import AckRangeTracker
from ..quic.packet import TUNNEL_OVERHEAD, AckFrame, PingFrame, QuicPacket
from ..sanitizer import sanitizer_or_default

__all__ = [
    "AppPacket",
    "SentInfo",
    "ClientStats",
    "TunnelClientBase",
    "TunnelServerBase",
]

#: RFC 9002 packet reordering threshold.
PACKET_REORDER_THRESHOLD = 3
#: RFC 9002 time threshold factor (9/8).
TIME_THRESHOLD_FACTOR = 1.125
#: Server ACK delay bound.
MAX_ACK_DELAY = 0.025
#: Client housekeeping cadence (loss scans, pump retries).
CLIENT_TICK = 0.002
#: Ingress (tun-interface) queue limit in packets — Linux's default
#: txqueuelen is 500; when the transport cannot drain the backlog the tun
#: device drops, which is how a real-time source sheds load into a slow
#: tunnel instead of buffering forever.
INGRESS_QUEUE_LIMIT = 512
#: Stream watchdog: with work pending and no ACK progress for this many
#: seconds the client declares a terminal stall and closes.  Generous by
#: design — ordinary multi-PTO outages resolve via the health machine;
#: the watchdog only catches a tunnel that can never make progress again.
WATCHDOG_TIMEOUT = 30.0


@dataclass
class AppPacket:
    """One application (tunnelled IP) packet entering the tunnel."""

    packet_id: int
    payload: bytes
    frame_id: Optional[int] = None
    enqueue_time: float = 0.0

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class SentInfo:
    """Book-keeping for one transmitted QUIC packet on one path."""

    packet_number: int
    path_id: int
    size: int
    sent_time: float
    app_ids: Tuple[int, ...] = ()
    is_recovery: bool = False
    acked: bool = False
    cc_lost: bool = False
    qoe_fired: bool = False
    #: Causal tx span (repro.obs.spans); 0 when span recording is off.
    span_id: int = 0


@dataclass
class ClientStats:
    """Traffic accounting for redundancy/goodput figures."""

    app_packets_in: int = 0
    app_bytes_in: int = 0
    first_tx_packets: int = 0
    first_tx_bytes: int = 0
    retx_packets: int = 0
    retx_bytes: int = 0
    recovery_packets: int = 0
    recovery_bytes: int = 0
    duplicate_packets: int = 0
    duplicate_bytes: int = 0
    expired_packets: int = 0
    ingress_dropped: int = 0
    acks_received: int = 0
    probe_packets: int = 0
    probe_bytes: int = 0
    watchdog_closes: int = 0

    @property
    def redundancy_ratio(self) -> float:
        """Retransmitted+coded+duplicated bytes over first-transmission bytes
        (the paper's 'retrans ratio')."""
        extra = self.retx_bytes + self.recovery_bytes + self.duplicate_bytes
        return extra / self.first_tx_bytes if self.first_tx_bytes else 0.0

    def as_dict(self) -> dict:
        d = asdict(self)
        d["redundancy_ratio"] = self.redundancy_ratio
        return d


class TunnelClientBase:
    """Common client: queueing, scheduling, ACK processing, cc loss."""

    #: Whether this client promises never to initiate a send with the
    #: congestion window already full.  Proactive-FEC baselines (Pluribus,
    #: fixed-rate FEC) intentionally push repairs past the spare window,
    #: so they opt out of the sanitizer's inflight<=cwnd invariant.
    sanitize_window_discipline = True

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        paths: PathManager,
        scheduler: Scheduler,
        tick: float = CLIENT_TICK,
        ingress_limit: int = INGRESS_QUEUE_LIMIT,
        connection_id: int = 0,
        telemetry=None,
        sanitizer=None,
        health_config: Optional[PathHealthConfig] = None,
        health_seed: int = 0,
        watchdog_timeout: Optional[float] = WATCHDOG_TIMEOUT,
    ):
        self.loop = loop
        self.emulator = emulator
        self.paths = paths
        self.scheduler = scheduler
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.sanitizer = sanitizer_or_default(sanitizer, label=type(self).__name__)
        self.ingress_limit = ingress_limit
        #: Distinguishes this connection's packets when several tunnels
        #: share the same links (e.g. the bidirectional tunnel).
        self.connection_id = connection_id
        #: Floor on the retransmission timeout.  0 for QUIC-style PTO;
        #: kernel TCP (hence MPTCP) enforces RTO_min = 200 ms, one of the
        #: reasons it recovers slowly on cellular links.
        self.rto_min = 0.0
        self.stats = ClientStats()
        self._queue: Deque[AppPacket] = deque()
        self._queue_bytes = 0
        # probed once: only backlog-aware schedulers (ECF) expose the hint
        self._scheduler_wants_backlog = hasattr(scheduler, "queued_bytes_hint")
        self._next_app_id = 0
        # per path: packet number -> SentInfo, plus send-order pn deque
        self._sent: Dict[int, Dict[int, SentInfo]] = {p.path_id: {} for p in paths}
        self._sent_order: Dict[int, Deque[int]] = {p.path_id: deque() for p in paths}
        self._largest_acked: Dict[int, int] = {p.path_id: -1 for p in paths}
        #: Per-path health machine: degrades noisy paths, suspends dead
        #: ones (excluded from scheduling and recovery budgets), and asks
        #: for probes that bring recovered paths back.
        self.health = PathHealthMonitor(
            paths, config=health_config, seed=health_seed,
            telemetry=self.telemetry, sanitizer=self.sanitizer,
        )
        #: Forward-progress watchdog (None disables): set when the tunnel
        #: stalled terminally; checked by harnesses after close().
        self.watchdog_timeout = watchdog_timeout
        self.terminal_error: Optional[str] = None
        self._watchdog_acks_seen = 0
        self._watchdog_progress_time = loop.now
        emulator.attach_client(self._on_downlink)
        self._timer = PeriodicTimer(loop, tick, self._on_tick)
        self._timer.start(first_delay=tick)
        self.closed = False

    # -- application ingress -------------------------------------------------

    @hot_path
    def send_app_packet(self, payload: bytes, frame_id: Optional[int] = None) -> Optional[int]:
        """Accept one application packet into the tunnel; returns its ID,
        or None when the ingress (tun) queue tail-dropped it."""
        self.stats.app_packets_in += 1
        self.stats.app_bytes_in += len(payload)
        tel = self.telemetry
        if len(self._queue) >= self.ingress_limit:
            self.stats.ingress_dropped += 1
            if tel.enabled:
                tel.event(self.loop.now, ev.INGRESS_DROP, self._next_app_id)
                tel.count("client.ingress_dropped")
            return None
        pkt = AppPacket(self._next_app_id, bytes(payload), frame_id, self.loop.now)
        self._next_app_id += 1
        self._queue.append(pkt)
        self._queue_bytes += pkt.size
        if tel.enabled:
            tel.event(self.loop.now, ev.APP_IN, pkt.packet_id,
                      size=pkt.size, frame=frame_id)
            tel.count("client.app_in")
            sp = tel.spans
            if sp.enabled:
                parent = sp.lookup("frame", frame_id) if frame_id is not None else 0
                sid = sp.open("packet", self.loop.now, parent=parent,
                              packet=pkt.packet_id, size=pkt.size)
                sp.bind("packet", pkt.packet_id, sid)
        self._on_app_packet_queued(pkt)
        self._pump()
        return pkt.packet_id

    @property
    def backlog_packets(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        return self._queue_bytes

    # -- subclass hooks --------------------------------------------------

    def _on_app_packet_queued(self, pkt: AppPacket) -> None:
        """Called when an app packet enters the queue (e.g. pool register)."""

    def _build_frame(self, pkt: AppPacket) -> XncNcFrame:
        """Wire frame for a first transmission of ``pkt``."""
        raise NotImplementedError

    def _on_app_acked(self, app_ids: Sequence[int], info: SentInfo) -> None:
        """App packets confirmed delivered (first ACK of a carrying packet)."""

    def _on_cc_lost(self, info: SentInfo, now: float) -> None:
        """Transport-level loss (policy: requeue, code, or ignore)."""

    def _on_tick_hook(self, now: float) -> None:
        """Periodic housekeeping for subclasses."""

    def _queue_entry_stale(self, pkt: AppPacket, now: float) -> bool:
        """True when a still-queued packet should be dropped unsent
        (real-time transports abandon stale video; reliable ones never do)."""
        return False

    def _on_queue_entry_dropped(self, pkt: AppPacket) -> None:
        """Called when a stale queued packet is abandoned."""

    # -- scheduling / transmission ------------------------------------------

    def _pump(self) -> None:
        """Drain the app queue through the scheduler while windows allow."""
        if self.closed:
            return
        guard = 0
        tel = self.telemetry
        queue = self._queue  # one attribute walk for the whole drain loop
        # sim time cannot advance inside one event callback, so one read
        # of the clock serves the whole drain loop
        now = self.loop.now
        while queue:
            pkt = queue[0]
            if self._queue_entry_stale(pkt, now):
                queue.popleft()
                self._queue_bytes -= pkt.size
                self.stats.expired_packets += 1
                if tel.enabled:
                    tel.event(now, ev.EXPIRED, pkt.packet_id,
                              where="ingress_queue")
                    tel.count("client.expired")
                    sp = tel.spans
                    if sp.enabled:
                        sp.close(sp.lookup("packet", pkt.packet_id), now,
                                 outcome="expired", where="ingress_queue")
                self._on_queue_entry_dropped(pkt)
                continue
            frame = self._build_frame(pkt)
            wire_estimate = frame.wire_size + 56
            if self._scheduler_wants_backlog:
                self.scheduler.queued_bytes_hint = self._queue_bytes
            targets = self.scheduler.select(self.paths.all(), wire_estimate, now)
            if not targets:
                return
            if self.sanitizer.enabled:
                self.sanitizer.check_scheduler_targets(targets, wire_estimate, now)
            queue.popleft()
            self._queue_bytes -= pkt.size
            if tel.enabled:
                tel.event(now, ev.SCHEDULED, pkt.packet_id,
                          targets[0].path_id, fanout=len(targets),
                          queue_wait=now - pkt.enqueue_time)
                for t in targets:
                    tel.count("scheduler.selected.path%d" % t.path_id)
                tel.observe("client.queue_wait", now - pkt.enqueue_time)
                sp = tel.spans
                if sp.enabled:
                    sp.annotate(sp.lookup("packet", pkt.packet_id),
                                sched_t=now, fanout=len(targets),
                                sched_path=targets[0].path_id)
            for i, path in enumerate(targets):
                is_dup = i > 0
                self._transmit_frame(path, frame, (pkt.packet_id,), is_recovery=False, is_dup=is_dup)  # lint: hot-ok(the app-id tuple is retained in per-packet SentInfo; it is the record, not churn)
            guard += 1
            if guard > 100_000:
                raise RuntimeError("pump loop runaway")

    def _transmit_frame(
        self,
        path: PathState,
        frame: XncNcFrame,
        app_ids: Tuple[int, ...],
        is_recovery: bool,
        is_dup: bool = False,
        is_retx: bool = False,
        is_probe: bool = False,
    ) -> SentInfo:
        """Wrap one frame into a QUIC packet and put it on a path."""
        now = self.loop.now
        pn = path.next_packet_number()
        qpkt = QuicPacket(
            path_id=path.path_id,
            packet_number=pn,
            frames=[frame],
            sent_time=now,
            connection_id=self.connection_id,
        )
        # single-frame packet: equals qpkt.wire_size without the generic sum
        size = TUNNEL_OVERHEAD + frame.wire_size
        info = SentInfo(pn, path.path_id, size, now, app_ids, is_recovery)
        self._sent[path.path_id][pn] = info
        self._sent_order[path.path_id].append(pn)
        path.on_sent(size, now)
        if self.sanitizer.enabled:
            # probes fly on suspended paths whose window is full of
            # presumed-lost bytes; they are exempt from window discipline
            self.sanitizer.check_transmit(
                path, pn, size,
                window_disciplined=(self.sanitize_window_discipline
                                    and not is_probe))
        if is_probe:
            self.stats.probe_packets += 1
            self.stats.probe_bytes += size
        elif is_recovery:
            self.stats.recovery_packets += 1
            self.stats.recovery_bytes += size
        elif is_dup:
            self.stats.duplicate_packets += 1
            self.stats.duplicate_bytes += size
        elif is_retx:
            self.stats.retx_packets += 1
            self.stats.retx_bytes += size
        else:
            self.stats.first_tx_packets += 1
            self.stats.first_tx_bytes += size
        tel = self.telemetry
        if tel.enabled:
            kind = ev.RECOVERY_TX if is_recovery else ev.TX
            attrs = {"pn": pn, "size": size, "count": len(app_ids)}
            if is_dup:
                attrs["dup"] = True
            if is_retx:
                attrs["retx"] = True
            if is_probe:
                attrs["probe"] = True
            tel.event(now, kind, app_ids[0] if app_ids else -1,
                      path.path_id, **attrs)
            tel.count("client.%s" % kind)
            sp = tel.spans
            if sp.enabled:
                # tx spans are root-level: their close (the ACK) arrives a
                # downlink-RTT after the carried packet may already have
                # decoded, so containment under the packet span cannot
                # hold — the causal link rides the `cause` attribute.
                span_attrs = {"path": path.path_id, "pn": pn,
                              "cause": sp.lookup("packet", app_ids[0]) if app_ids else 0}
                if is_recovery:
                    span_attrs["recovery"] = True
                if is_retx:
                    span_attrs["retx"] = True
                if is_dup:
                    span_attrs["dup"] = True
                if is_probe:
                    span_attrs["probe"] = True
                info.span_id = sp.open("tx", now, **span_attrs)
        self.emulator.send_uplink(path.path_id, qpkt, size)
        return info

    # -- downlink (ACK) processing --------------------------------------------

    @hot_path
    def _on_downlink(self, path_id: int, payload: Any, now: float) -> None:
        if self.closed or not isinstance(payload, QuicPacket):
            return
        if payload.connection_id != self.connection_id:
            return  # another tunnel's traffic on the shared links
        for frame in payload.frames:
            if isinstance(frame, AckFrame):
                self._process_ack(frame, now)
        self._pump()

    def _process_ack(self, ack: AckFrame, now: float) -> None:
        self.stats.acks_received += 1
        path = self.paths.get(ack.path_id)
        if self.sanitizer.enabled:
            self.sanitizer.check_ack_plausible(path, ack.largest)
        sent_map = self._sent[ack.path_id]
        order = self._sent_order[ack.path_id]
        # everything below the oldest outstanding pn is already resolved;
        # clamping keeps ACK processing O(outstanding), not O(history)
        floor = order[0] if order else (self._largest_acked[ack.path_id] + 1)
        newly_acked: List[SentInfo] = []
        for low, high in ack.ranges:
            if high < floor:
                continue
            for pn in range(max(low, floor), high + 1):
                info = sent_map.get(pn)
                if info is None or info.acked:
                    continue
                info.acked = True
                newly_acked.append(info)
        if not newly_acked:
            return
        self._largest_acked[ack.path_id] = max(self._largest_acked[ack.path_id], ack.largest)
        # RTT sample from the largest newly-acked packet
        largest_info = max(newly_acked, key=lambda i: i.packet_number)
        if largest_info.packet_number == ack.largest:
            rtt_sample = max(1e-4, now - largest_info.sent_time)
            path.on_acked(largest_info.size, rtt_sample, ack.ack_delay, now)
            cc_acked = [i for i in newly_acked if i is not largest_info]
        else:
            cc_acked = newly_acked
        for info in cc_acked:
            path.cc.on_ack(info.size, max(1e-4, now - info.sent_time), now)
            path.packets_acked += 1
            path.last_ack_time = now
        tel = self.telemetry
        spans = tel.spans if tel.enabled else None
        for info in newly_acked:
            if tel.enabled:
                tel.event(now, ev.ACK,
                          info.app_ids[0] if info.app_ids else -1,
                          info.path_id, pn=info.packet_number,
                          count=len(info.app_ids))
                tel.observe("client.ack_rtt", now - info.sent_time)
                if spans is not None and info.span_id:
                    spans.close(info.span_id, now, outcome="ack")
            if info.app_ids and not info.cc_lost:
                self._on_app_acked(info.app_ids, info)
        # packet-threshold loss: unacked packets well below largest acked
        threshold_pn = self._largest_acked[ack.path_id] - PACKET_REORDER_THRESHOLD
        self._detect_cc_losses(ack.path_id, now, threshold_pn)
        self._gc_sent(ack.path_id)

    # -- loss detection (transport level) ------------------------------------

    def _cc_time_threshold(self, path: PathState) -> float:
        rtt = max(path.rtt.smoothed_rtt, path.rtt.latest_rtt or path.rtt.smoothed_rtt)
        return TIME_THRESHOLD_FACTOR * rtt

    def _detect_cc_losses(self, path_id: int, now: float, threshold_pn: int = -1) -> None:
        path = self.paths.get(path_id)
        sent_map = self._sent[path_id]
        time_limit = max(self._cc_time_threshold(path), self.rto_min)
        pto_limit = max(path.rtt.pto() * 1.5, self.rto_min)
        # sent_map is insertion-ordered by pn, and sent_time is
        # non-decreasing in pn, so once a live packet is both above the
        # reorder threshold and not yet PTO-overdue, no later packet can
        # satisfy either loss branch — stop scanning there instead of
        # walking the whole outstanding window on every ACK.
        newly_lost: List[SentInfo] = []
        for pn, info in sent_map.items():
            if info.acked or info.cc_lost:
                continue
            overdue = now - info.sent_time
            if pn <= threshold_pn:
                if overdue < time_limit and overdue < pto_limit:
                    continue
            elif overdue < pto_limit:
                break
            newly_lost.append(info)
        # side effects after the scan: _on_cc_lost may enqueue work that
        # grows sent_map, which the snapshot-based scan never observed
        tel = self.telemetry
        for info in newly_lost:
            info.cc_lost = True
            path.on_lost(info.size, now)
            if tel.enabled:
                tel.event(now, ev.CC_LOSS,
                          info.app_ids[0] if info.app_ids else -1,
                          path_id, pn=info.packet_number,
                          overdue=now - info.sent_time,
                          count=len(info.app_ids))
                tel.count("client.cc_loss")
                sp = tel.spans
                if sp.enabled and info.span_id:
                    sp.close(info.span_id, now, outcome="cc_loss")
            if not info.is_recovery:
                self._on_cc_lost(info, now)

    def _gc_sent(self, path_id: int) -> None:
        """Drop acked/lost entries from the front of the send-order deque."""
        order = self._sent_order[path_id]
        sent_map = self._sent[path_id]
        while order:
            pn = order[0]
            info = sent_map.get(pn)
            if info is None or info.acked or info.cc_lost:
                order.popleft()
                sent_map.pop(pn, None)
                continue
            break

    # -- timers ---------------------------------------------------------------

    def _on_tick(self) -> None:
        if self.closed:
            return
        now = self.loop.now
        for path in self.paths:
            self._detect_cc_losses(path.path_id, now)
            self._gc_sent(path.path_id)
        self._health_tick(now)
        self._watchdog_tick(now)
        if self.closed:
            return  # the watchdog fired
        self._on_tick_hook(now)
        self._pump()

    def _health_tick(self, now: float) -> None:
        """Advance the path-health machine; fly probes it asks for."""
        for path, _old, new in self.health.tick(now):
            if new == HEALTH_PROBING and path.probe_pending:
                path.probe_pending = False
                path.probes_sent += 1
                self._transmit_frame(path, PingFrame(), (), is_recovery=False,
                                     is_probe=True)

    def _has_pending_work(self) -> bool:
        """Work the watchdog should demand ACK progress on.

        Subclasses that hold undelivered data in private backlogs (e.g.
        a retransmission queue) must override to include them, or the
        watchdog cannot see a stall once the shared queues drain.
        """
        if self._queue:
            return True
        return any(len(order) > 0 for order in self._sent_order.values())

    def _watchdog_tick(self, now: float) -> None:
        """Terminal-stall detector: pending work but no ACK progress."""
        if self.watchdog_timeout is None:
            return
        acks = self.stats.acks_received
        pending = self._has_pending_work()
        if acks != self._watchdog_acks_seen or not pending:
            self._watchdog_acks_seen = acks
            self._watchdog_progress_time = now
            return
        stalled = now - self._watchdog_progress_time
        if stalled <= self.watchdog_timeout:
            return
        self.terminal_error = (
            "stream watchdog: no ACK progress for %.1fs with work pending"
            % stalled)
        self.stats.watchdog_closes += 1
        tel = self.telemetry
        if tel.enabled:
            tel.event(now, ev.WATCHDOG, stalled=stalled,
                      backlog=len(self._queue),
                      outstanding=sum(len(o) for o in self._sent_order.values()))
            tel.count("client.watchdog_close")
        self.close()

    def close(self) -> None:
        self.closed = True
        self._timer.stop()

    # -- introspection ---------------------------------------------------------

    def in_flight_infos(self, path_id: int) -> List[SentInfo]:
        return [i for i in self._sent[path_id].values() if not i.acked and not i.cc_lost]


class TunnelServerBase:
    """Common server: per-path ACK tracking and emission, app delivery."""

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        on_app_packet: Callable[[int, bytes, float], None],
        ack_every: int = 2,
        max_ack_delay: float = MAX_ACK_DELAY,
        connection_id: int = 0,
        telemetry=None,
        sanitizer=None,
    ):
        self.loop = loop
        self.emulator = emulator
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.sanitizer = sanitizer_or_default(sanitizer, label=type(self).__name__)
        self.on_app_packet = on_app_packet
        self.connection_id = connection_id
        self.ack_every = ack_every
        self.max_ack_delay = max_ack_delay
        self._trackers: Dict[int, AckRangeTracker] = {
            pid: AckRangeTracker(pid) for pid in emulator.path_ids()
        }
        self._unacked_count: Dict[int, int] = {pid: 0 for pid in emulator.path_ids()}
        self._ack_timer_handles: Dict[int, Any] = {}
        self.packets_received = 0
        self.duplicates = 0
        emulator.attach_server(self._on_uplink)
        self.closed = False

    # -- subclass hook ---------------------------------------------------------

    def _handle_frame(self, path_id: int, frame: XncNcFrame, now: float) -> None:
        """Consume one data frame (decode, reorder, deliver...)."""
        raise NotImplementedError

    # -- uplink processing -------------------------------------------------------

    @hot_path
    def _on_uplink(self, path_id: int, payload: Any, now: float) -> None:
        if self.closed or not isinstance(payload, QuicPacket):
            return
        if payload.connection_id != self.connection_id:
            return  # another tunnel's traffic on the shared links
        self.packets_received += 1
        tracker = self._trackers[path_id]
        fresh = tracker.on_received(payload.packet_number, now)
        if not fresh:
            self.duplicates += 1
        # one pass over the frames replaces the xnc_frames() list build and
        # the is_ack_eliciting scan (eliciting == any non-ACK frame)
        ack_eliciting = False
        for frame in payload.frames:
            if isinstance(frame, XncNcFrame):
                ack_eliciting = True
                self._handle_frame(path_id, frame, now)
            elif not isinstance(frame, AckFrame):
                ack_eliciting = True
        if ack_eliciting:
            self._unacked_count[path_id] += 1
            if self._unacked_count[path_id] >= self.ack_every:
                self._emit_ack(path_id)
            elif path_id not in self._ack_timer_handles:
                handle = self.loop.call_later(self.max_ack_delay, self._emit_ack_timer, path_id)
                self._ack_timer_handles[path_id] = handle

    def _emit_ack_timer(self, path_id: int) -> None:
        self._ack_timer_handles.pop(path_id, None)
        self._emit_ack(path_id)

    def _emit_ack(self, path_id: int) -> None:
        if self.closed:
            return
        handle = self._ack_timer_handles.pop(path_id, None)
        if handle is not None:
            handle.cancel()
        tracker = self._trackers[path_id]
        ack = tracker.build_ack(self.loop.now)
        if ack is None:
            return
        self._unacked_count[path_id] = 0
        pkt = QuicPacket(
            path_id=path_id,
            packet_number=-1,
            frames=[ack],
            sent_time=self.loop.now,
            connection_id=self.connection_id,
        )
        self.emulator.send_downlink(path_id, pkt, TUNNEL_OVERHEAD + ack.wire_size)

    def close(self) -> None:
        self.closed = True
        for handle in self._ack_timer_handles.values():
            handle.cancel()
        self._ack_timer_handles.clear()
