"""Downlink data plane: cloud-to-vehicle traffic through the same tunnel.

§3.2: "The downlink flow is similar to the uplink but in the reverse
direction."  Teleoperated driving needs it — steering/throttle commands
and operator audio ride cloud→vehicle while the camera feeds ride up.

The tunnel endpoints are direction-agnostic: they talk to "the emulator"
through ``send_uplink`` / ``attach_server`` / etc.  A
:class:`ReversedEmulator` presents the same interface with the directions
swapped, so the *proxy* can run an unmodified ``XncTunnelClient`` (its
"uplink" is the real downlink) and the *CPE* an unmodified
``XncTunnelServer``.  :class:`BidirectionalTunnel` bundles both
directions over one emulator.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..emulation.emulator import MultipathEmulator
from ..emulation.events import EventLoop
from ..multipath.path import PathManager, PathState
from ..quic.cc.bbr import BbrController

__all__ = [
    "ReversedEmulator",
    "BidirectionalTunnel",
]


class ReversedEmulator:
    """The emulator with uplink and downlink swapped.

    The real emulator's *downlink* carries this view's "uplink" traffic
    and vice versa, letting unmodified endpoint classes drive the reverse
    direction.  Both views share the underlying links, so uplink video
    and downlink control genuinely contend for the same capacity.
    """

    def __init__(self, emulator: MultipathEmulator):
        self._emulator = emulator
        self.loop = emulator.loop
        self.channels = emulator.channels

    @property
    def path_count(self) -> int:
        return self._emulator.path_count

    def path_ids(self) -> List[int]:
        return self._emulator.path_ids()

    def attach_server(self, on_uplink: Callable[[int, Any, float], None]) -> None:
        # the reversed server listens where the real client would
        self._emulator.attach_client(on_uplink)

    def attach_client(self, on_downlink: Callable[[int, Any, float], None]) -> None:
        self._emulator.attach_server(on_downlink)

    def send_uplink(self, path_id: int, payload: Any, size: int) -> bool:
        return self._emulator.send_downlink(path_id, payload, size)

    def send_downlink(self, path_id: int, payload: Any, size: int) -> bool:
        return self._emulator.send_uplink(path_id, payload, size)

    def uplink_stats(self) -> Dict[int, Any]:
        return self._emulator.downlink_stats()

    def downlink_stats(self) -> Dict[int, Any]:
        return self._emulator.uplink_stats()


class _SharedDispatch:
    """Fan one emulator callback out to both directions' endpoints.

    The forward direction's client and the reverse direction's server
    both need the real downlink deliveries (ACKs for one, data for the
    other); payload objects are QUIC packets either way, and each
    endpoint ignores frames that aren't for it, so fan-out is safe.
    """

    def __init__(self):
        self._sinks: List[Callable[[int, Any, float], None]] = []

    def add(self, sink: Callable[[int, Any, float], None]) -> None:
        self._sinks.append(sink)

    def __call__(self, path_id: int, payload: Any, now: float) -> None:
        for sink in self._sinks:
            sink(path_id, payload, now)


class BidirectionalTunnel:
    """Full-duplex XNC tunnel: video up, control down, same links.

    ``on_uplink_packet`` receives vehicle->cloud deliveries at the proxy;
    ``on_downlink_packet`` receives cloud->vehicle deliveries at the CPE.
    """

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        on_uplink_packet: Callable[[int, bytes, float], None],
        on_downlink_packet: Callable[[int, bytes, float], None],
        up_config: Optional["XncConfig"] = None,
        down_config: Optional["XncConfig"] = None,
    ):
        # imported here to avoid a cycle: core.endpoint builds on
        # transport.base, which shares this package
        from ..core.endpoint import XncConfig, XncTunnelClient, XncTunnelServer

        self.loop = loop
        # fan-out points, installed before endpoints attach themselves
        self._to_cloud_side = _SharedDispatch()
        self._to_vehicle_side = _SharedDispatch()
        emulator.attach_server(self._to_cloud_side)  # real uplink arrivals
        emulator.attach_client(self._to_vehicle_side)  # real downlink arrivals

        forward_view = _DispatchingEmulator(emulator, self._to_cloud_side, self._to_vehicle_side)
        reverse_view = ReversedEmulator(forward_view)

        # vehicle -> cloud (video): connection 1
        self.uplink_server = XncTunnelServer(loop, forward_view, on_uplink_packet, connection_id=1)
        self.uplink_client = XncTunnelClient(
            loop, forward_view, _paths(emulator), up_config or XncConfig()
        )
        self.uplink_client.connection_id = 1
        # cloud -> vehicle (control): connection 2
        self.downlink_server = XncTunnelServer(loop, reverse_view, on_downlink_packet, connection_id=2)
        self.downlink_client = XncTunnelClient(
            loop, reverse_view, _paths(emulator), down_config or XncConfig(seed=29)
        )
        self.downlink_client.connection_id = 2

    def send_up(self, payload: bytes, frame_id: Optional[int] = None) -> Optional[int]:
        """Vehicle app -> cloud."""
        return self.uplink_client.send_app_packet(payload, frame_id)

    def send_down(self, payload: bytes, frame_id: Optional[int] = None) -> Optional[int]:
        """Cloud app -> vehicle."""
        return self.downlink_client.send_app_packet(payload, frame_id)

    def close(self) -> None:
        for endpoint in (
            self.uplink_client,
            self.uplink_server,
            self.downlink_client,
            self.downlink_server,
        ):
            endpoint.close()


class _DispatchingEmulator:
    """Emulator facade whose attach_* add to shared dispatchers instead of
    replacing the sink (so forward and reverse endpoints coexist)."""

    def __init__(self, emulator: MultipathEmulator, up_dispatch: _SharedDispatch, down_dispatch: _SharedDispatch):
        self._emulator = emulator
        self._up = up_dispatch
        self._down = down_dispatch
        self.loop = emulator.loop
        self.channels = emulator.channels

    @property
    def path_count(self) -> int:
        return self._emulator.path_count

    def path_ids(self) -> List[int]:
        return self._emulator.path_ids()

    def attach_server(self, sink) -> None:
        self._up.add(sink)

    def attach_client(self, sink) -> None:
        self._down.add(sink)

    def send_uplink(self, path_id: int, payload: Any, size: int) -> bool:
        return self._emulator.send_uplink(path_id, payload, size)

    def send_downlink(self, path_id: int, payload: Any, size: int) -> bool:
        return self._emulator.send_downlink(path_id, payload, size)

    def uplink_stats(self):
        return self._emulator.uplink_stats()

    def downlink_stats(self):
        return self._emulator.downlink_stats()


def _paths(emulator: MultipathEmulator) -> PathManager:
    manager = PathManager()
    for pid in emulator.path_ids():
        manager.add(PathState(pid, name=emulator.channels[pid].name, cc=BbrController(), initial_rtt=0.05))
    return manager
