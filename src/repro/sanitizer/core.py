"""Runtime protocol sanitizer: machine-checked XNC invariants (ASan-style).

The paper states invariants the code historically never verified at run
time: systematic Q-RLNC (``n = 1`` means uncoded, §4.3.2), the one-shot
recovery budget ``n' = n + 3`` with every path strictly below the
``rho * n'`` cap (§4.5.1–§4.5.2), the range lifecycle formed →
recovered | expired with no re-recovery (§4.4.3, §4.5.2), full
GF(2^8) coefficient-matrix rank at decode (Theorem 4.1), per-path QUIC
packet-number monotonicity, congestion-window send discipline, and
event-loop timer progress (the PR 1 idle-spin bug class).

This module is the checking layer.  It follows the telemetry
null-singleton pattern exactly: endpoints hold either the shared
:data:`NULL_SANITIZER` (``enabled`` is False; the hot path pays one
attribute load and a branch) or their own :class:`ProtocolSanitizer`
instance.  Violations raise :class:`SanitizerViolation` immediately with
the invariant name and full context — fail-stop, like ASan.

Enabling it:

* ``repro run --sanitize`` (one CLI run), or
* ``REPRO_SANITIZE=1`` in the environment — every endpoint constructed
  without an explicit sanitizer picks it up, which is how CI runs the
  unmodified integration suite with checks on.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, Iterable, Optional, Set, Tuple

__all__ = [
    "SanitizerViolation",
    "ProtocolSanitizer",
    "NullSanitizer",
    "NULL_SANITIZER",
    "env_enabled",
    "sanitizer_or_default",
    "totals",
    "reset_totals",
]

#: Truthy spellings accepted for the env hook.
_ENV_VAR = "REPRO_SANITIZE"
_FALSY = ("", "0", "false", "no", "off")

#: Consecutive timer fires allowed at one identical sim timestamp before
#: the loop is declared wedged (the idle-timer re-arm spin fixed in PR 1
#: fired unboundedly at a single float timestamp).
TIMER_SPIN_LIMIT = 64

#: Bound on remembered recovered/expired packet IDs (IDs are monotone, so
#: pruning the oldest cannot mask a genuine re-recovery of recent video).
_ID_MEMORY = 65536

#: Process-wide activation counters (for the overhead gate and tests).
_TOTALS = {"checks": 0, "violations": 0}  # lint: shard-safe(diagnostic counters only; never read by sim logic and reset per run via reset_totals)


def totals() -> dict:
    """Process-wide sanitizer activation counters."""
    return dict(_TOTALS)


def reset_totals() -> None:
    _TOTALS["checks"] = 0
    _TOTALS["violations"] = 0


def env_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for checks (read per call so test
    fixtures can flip it)."""
    return os.environ.get(_ENV_VAR, "").strip().lower() not in _FALSY


class SanitizerViolation(AssertionError):
    """A protocol invariant failed.  ``invariant`` names the check;
    ``context`` carries the offending values."""

    def __init__(self, invariant: str, message: str, **context):
        self.invariant = invariant
        self.context = dict(context)
        detail = ", ".join("%s=%r" % kv for kv in sorted(context.items()))
        super().__init__("[%s] %s%s" % (invariant, message,
                                        (" (%s)" % detail) if detail else ""))


class NullSanitizer:
    """Disabled sanitizer: ``enabled`` False, every method a no-op.

    Shared as :data:`NULL_SANITIZER`.  Call sites guard with
    ``if san.enabled:`` before building check arguments, so the disabled
    hot path never allocates — the same contract the telemetry layer's
    ``NULL_TELEMETRY`` makes, enforced by the same overhead gate style
    (``tools/check_sanitizer_overhead.py``).
    """

    enabled = False

    def check_transmit(self, path, pn, size, window_disciplined=True):
        pass

    def check_scheduler_targets(self, targets, size, now):
        pass

    def check_ack_plausible(self, path, largest):
        pass

    def check_ranges(self, ranges, policy):
        pass

    def check_queue_post_expire(self, entries, now, t_expire):
        pass

    def check_plan(self, n_lost, plan, policy):
        pass

    def check_range_recovery(self, rng, now, t_expire):
        pass

    def check_decode_complete(self, range_decoder):
        pass

    def check_state_transition(self, old, new, allowed):
        pass

    def check_path_transition(self, path_id, old, new, allowed):
        pass

    def check_timer_progress(self, key, now):
        pass


#: The shared disabled handle every endpoint defaults to.
NULL_SANITIZER = NullSanitizer()


class ProtocolSanitizer:
    """Live invariant checker for one endpoint (or one shared run).

    State (last packet numbers, recovered-range memory, timer progress)
    is per-instance; endpoints construct their own so concurrent tunnels
    in one process cannot cross-contaminate.
    """

    enabled = True

    def __init__(self, label: str = ""):
        self.label = label
        self.checks_run = 0
        self.violations = 0
        self._last_pn: Dict[int, int] = {}
        self._recovered_ids: Set[int] = set()
        self._recovered_order: Deque[int] = deque()
        self._timer_fires: Dict[object, Tuple[float, int]] = {}

    # -- plumbing ---------------------------------------------------------------

    def _tick(self) -> None:
        self.checks_run += 1
        _TOTALS["checks"] += 1

    def _fail(self, invariant: str, message: str, **context):
        self.violations += 1
        _TOTALS["violations"] += 1
        if self.label:
            context.setdefault("endpoint", self.label)
        raise SanitizerViolation(invariant, message, **context)

    # -- transport level (transport/base.py) -------------------------------------

    def check_transmit(self, path, pn: int, size: int,
                       window_disciplined: bool = True) -> None:
        """Per-path packet-number monotonicity + cwnd send discipline.

        Packet numbers must be strictly increasing per path (each path is
        its own number space under the multipath draft).  When the client
        class promises window discipline, a send may only be initiated
        with the window open: after accounting the send,
        ``inflight - size <= cwnd`` must hold (the standard one-packet
        window-edge straddle is allowed; creep beyond it is not).
        """
        self._tick()
        last = self._last_pn.get(path.path_id, -1)
        if pn <= last:
            self._fail("pn-monotonic",
                       "packet number regressed on path %d" % path.path_id,
                       path=path.path_id, pn=pn, last_pn=last)
        self._last_pn[path.path_id] = pn
        if window_disciplined and path.cc.bytes_in_flight - size > path.cc.cwnd:
            self._fail("inflight-cwnd",
                       "send initiated with congestion window already full",
                       path=path.path_id, pn=pn, size=size,
                       inflight=path.cc.bytes_in_flight, cwnd=path.cc.cwnd)

    def check_scheduler_targets(self, targets, size: int, now: float) -> None:
        """Scheduler contract: distinct, usable paths with window for size."""
        self._tick()
        seen = set()
        for path in targets:
            if path.path_id in seen:
                self._fail("scheduler-distinct",
                           "scheduler returned path %d twice" % path.path_id,
                           path=path.path_id)
            seen.add(path.path_id)
            if not path.is_usable(now):
                self._fail("scheduler-usable",
                           "scheduler selected an unusable path",
                           path=path.path_id, now=now)
            if not path.can_send(size):
                self._fail("scheduler-window",
                           "scheduler selected a path without window",
                           path=path.path_id, size=size,
                           inflight=path.cc.bytes_in_flight, cwnd=path.cc.cwnd)

    def check_ack_plausible(self, path, largest: int) -> None:
        """An ACK may not acknowledge a packet number never sent."""
        self._tick()
        next_pn = path._next_packet_number
        if largest >= next_pn:
            self._fail("ack-unsent",
                       "ACK acknowledges pn %d but only %d packets were sent "
                       "on path %d" % (largest, next_pn, path.path_id),
                       path=path.path_id, largest=largest, next_pn=next_pn)

    # -- encode ranges (core/ranges.py) -------------------------------------------

    def check_ranges(self, ranges, policy) -> None:
        """§4.4.2 border rules on build_ranges output: every range is
        non-empty, within the r-packet cap, and ranges are disjoint and
        ordered by packet ID."""
        self._tick()
        prev_end = None
        for rng in ranges:
            if rng.count < 1:
                self._fail("range-nonempty", "empty encode range",
                           start=rng.start_id, count=rng.count)
            if rng.count > policy.max_packets:
                self._fail("range-rcap",
                           "range exceeds the r-packet border cap (§4.4.2)",
                           start=rng.start_id, count=rng.count,
                           max_packets=policy.max_packets)
            if prev_end is not None and rng.start_id < prev_end:
                self._fail("range-disjoint",
                           "encode ranges overlap or are unordered",
                           start=rng.start_id, prev_end=prev_end)
            prev_end = rng.end_id

    def check_queue_post_expire(self, entries, now: float, t_expire: float) -> None:
        """After expire(now), nothing older than t_expire may remain (§4.4.3)."""
        self._tick()
        for pkt in entries:
            if now - pkt.sent_time > t_expire:
                self._fail("expire-complete",
                           "stale packet survived queue expiry",
                           packet_id=pkt.packet_id, age=now - pkt.sent_time,
                           t_expire=t_expire)

    # -- one-shot recovery (core/recovery.py via core/endpoint.py) ----------------

    def check_plan(self, n_lost: int, plan, policy) -> None:
        """Recovery-plan budget invariants (§4.5.1–§4.5.2).

        The expected coded count is recomputed here from the paper's
        formula — independently of :func:`repro.core.recovery.coded_packet_count`
        — so a regression in either copy trips the check:

        * ``n' = 1`` when ``n == 1`` (systematic: a single original needs
          no decoding);
        * ``n' = n + k`` otherwise (k = 3 deployed, Theorem 4.1);
        * every per-path allocation stays strictly below ``rho * n'``;
        * the shot carries at least ``n'`` packets in total (and for
          ``n == 1``, exactly one copy per allocated path).
        """
        self._tick()
        expected = 1 if n_lost == 1 else n_lost + policy.extra_packets
        if plan.n_lost != n_lost:
            self._fail("plan-n", "plan built for a different range size",
                       n_lost=n_lost, plan_n=plan.n_lost)
        if plan.n_coded != expected:
            self._fail("plan-nprime",
                       "coded-packet budget violates n' = n + %d"
                       % policy.extra_packets,
                       n_lost=n_lost, n_coded=plan.n_coded, expected=expected)
        total = 0
        for alloc in plan.allocations:
            total += alloc.packets
            if alloc.packets < 1:
                self._fail("plan-alloc-positive",
                           "plan allocates zero packets to a path",
                           path=alloc.path_id)
            if n_lost > 1 and not alloc.packets < policy.rho * plan.n_coded:
                self._fail("plan-rho-cap",
                           "per-path allocation reaches rho * n' (§4.5.2)",
                           path=alloc.path_id, packets=alloc.packets,
                           rho=policy.rho, n_coded=plan.n_coded,
                           cap=policy.rho * plan.n_coded)
            if n_lost == 1 and alloc.packets != 1:
                self._fail("plan-single",
                           "n = 1 recovery must send exactly one copy per path",
                           path=alloc.path_id, packets=alloc.packets)
        if total < plan.n_coded:
            self._fail("plan-budget",
                       "shot carries fewer than n' coded packets",
                       total=total, n_coded=plan.n_coded)

    def check_range_recovery(self, rng, now: float, t_expire: float) -> None:
        """Range lifecycle: formed → recovered | expired, never re-recovered.

        Called at shot execution: every packet in the range must be fresh
        (recovering past ``t_expire`` wastes bandwidth newer frames need,
        §4.4.3) and must not have been part of an earlier one-shot
        (recovery forgets the range, §4.5.2 — a second shot is a
        lifecycle violation).  Records the IDs afterwards.
        """
        self._tick()
        if now - rng.last_sent_time > t_expire:
            self._fail("recover-expired",
                       "one-shot recovery of an expired range (§4.4.3)",
                       start=rng.start_id, count=rng.count,
                       age=now - rng.last_sent_time, t_expire=t_expire)
        for pid in rng.packet_ids():
            if pid in self._recovered_ids:
                self._fail("recover-once",
                           "packet recovered twice; one-shot recovery must "
                           "forget the range (§4.5.2)",
                           packet_id=pid, start=rng.start_id, count=rng.count)
        for pid in rng.packet_ids():
            self._recovered_ids.add(pid)
            self._recovered_order.append(pid)
        while len(self._recovered_order) > _ID_MEMORY:
            self._recovered_ids.discard(self._recovered_order.popleft())

    # -- decoder (core/rlnc.py) ----------------------------------------------------

    def check_decode_complete(self, range_decoder) -> None:
        """Theorem 4.1 exit condition: the coefficient matrix is genuinely
        full rank and in reduced row-echelon form.

        A complete range must hold exactly ``count`` pivots, one per
        column, and each stored coefficient vector must be the unit vector
        of its pivot column (full-rank RREF is the identity).  Anything
        else means Gaussian elimination corrupted state and the
        "recovered" payloads are garbage — the silent-QoE-degradation
        failure mode coding bugs produce.
        """
        self._tick()
        count = range_decoder.count
        pivots = range_decoder._pivots
        if len(pivots) != count:
            self._fail("decode-rank",
                       "range declared complete at rank %d < %d"
                       % (len(pivots), count),
                       start=range_decoder.start_id, count=count,
                       rank=len(pivots))
        if sorted(pivots.keys()) != list(range(count)):
            self._fail("decode-pivots",
                       "pivot columns are not exactly 0..n-1",
                       start=range_decoder.start_id,
                       pivots=sorted(pivots.keys()))
        for col, (vec, _row) in pivots.items():
            if int(vec[col]) != 1 or int(vec.sum()) != 1:
                self._fail("decode-rref",
                           "pivot row %d is not a unit vector; elimination "
                           "state corrupt" % col,
                           start=range_decoder.start_id, col=col,
                           vec=[int(v) for v in vec])

    # -- connection state machine (quic/connection.py) -----------------------------

    def check_state_transition(self, old: str, new: str, allowed) -> None:
        """Connection lifecycle edges must be in the allowed set."""
        self._tick()
        if (old, new) not in allowed:
            self._fail("conn-transition",
                       "illegal connection state transition %s -> %s" % (old, new),
                       old=old, new=new)

    # -- path health machine (multipath/path.py) -----------------------------------

    def check_path_transition(self, path_id: int, old: str, new: str, allowed) -> None:
        """Path-health lifecycle edges must be in the allowed set
        (``ACTIVE -> DEGRADED -> SUSPENDED -> PROBING -> ACTIVE``); a
        skipped or reversed edge means the degradation machine is
        corrupting state (e.g. un-suspending without a probe verdict)."""
        self._tick()
        if (old, new) not in allowed:
            self._fail("path-health-edge",
                       "illegal path-health transition %s -> %s on path %d"
                       % (old, new, path_id),
                       path=path_id, old=old, new=new)

    # -- timers (quic/connection.py, any repeating callback) -----------------------

    def check_timer_progress(self, key, now: float) -> None:
        """A repeating timer re-firing at one identical sim timestamp more
        than :data:`TIMER_SPIN_LIMIT` times is a wedged event loop (the
        PR 1 idle-timer re-arm bug class)."""
        self._tick()
        last, streak = self._timer_fires.get(key, (None, 0))
        if last is not None and now == last:  # lint: disable=no-float-time-eq -- detecting *identical* re-fire timestamps is the point of this check
            streak += 1
            if streak > TIMER_SPIN_LIMIT:
                self._fail("timer-progress",
                           "timer %r fired %d times at t=%r without the "
                           "clock advancing" % (key, streak, now),
                           timer=str(key), fires=streak, now=now)
        else:
            streak = 0
        self._timer_fires[key] = (now, streak)

    # -- reporting -------------------------------------------------------------------

    def stats_dict(self) -> dict:
        return {
            "label": self.label,
            "checks_run": self.checks_run,
            "violations": self.violations,
        }


def sanitizer_or_default(explicit=None, label: str = ""):
    """Resolve an endpoint's sanitizer.

    * a :class:`ProtocolSanitizer` (or anything with ``enabled``) passes
      through unchanged — callers may share one across endpoints;
    * ``True``/``False`` force-enables/disables;
    * ``None`` defers to the ``REPRO_SANITIZE`` env hook, constructing a
      fresh per-endpoint instance when on.
    """
    if explicit is None:
        explicit = env_enabled()
    if isinstance(explicit, bool):
        return ProtocolSanitizer(label=label) if explicit else NULL_SANITIZER
    return explicit
