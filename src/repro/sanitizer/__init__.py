"""Protocol sanitizer: opt-in runtime invariant checks for the XNC stack.

Off by default (endpoints hold the shared :data:`NULL_SANITIZER`); enable
with ``repro run --sanitize`` or ``REPRO_SANITIZE=1``.  Arming it also
arms the module-state leak guard (:mod:`repro.sanitizer.stateguard`),
the dynamic oracle behind the static ``repro lint --shard-safety``
classification.  See ``docs/static-analysis.md`` for the invariant
catalogue with paper references.
"""

from .core import (
    NULL_SANITIZER,
    NullSanitizer,
    ProtocolSanitizer,
    SanitizerViolation,
    env_enabled,
    reset_totals,
    sanitizer_or_default,
    totals,
)
from .stateguard import (
    NULL_STATE_GUARD,
    GuardedGlobal,
    NullStateGuard,
    StateLeakGuard,
    register_global,
    registered_globals,
    state_guard_or_default,
)

__all__ = [
    "NULL_SANITIZER",
    "NullSanitizer",
    "ProtocolSanitizer",
    "SanitizerViolation",
    "env_enabled",
    "reset_totals",
    "sanitizer_or_default",
    "totals",
    "NULL_STATE_GUARD",
    "GuardedGlobal",
    "NullStateGuard",
    "StateLeakGuard",
    "register_global",
    "registered_globals",
    "state_guard_or_default",
]
