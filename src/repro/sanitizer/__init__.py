"""Protocol sanitizer: opt-in runtime invariant checks for the XNC stack.

Off by default (endpoints hold the shared :data:`NULL_SANITIZER`); enable
with ``repro run --sanitize`` or ``REPRO_SANITIZE=1``.  See
``docs/static-analysis.md`` for the invariant catalogue with paper
references.
"""

from .core import (
    NULL_SANITIZER,
    NullSanitizer,
    ProtocolSanitizer,
    SanitizerViolation,
    env_enabled,
    reset_totals,
    sanitizer_or_default,
    totals,
)

__all__ = [
    "NULL_SANITIZER",
    "NullSanitizer",
    "ProtocolSanitizer",
    "SanitizerViolation",
    "env_enabled",
    "reset_totals",
    "sanitizer_or_default",
    "totals",
]
