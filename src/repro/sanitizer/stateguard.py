"""Module-state snapshot/diff guard: the dynamic oracle for shard safety.

The static shard-safety pass (``repro lint --shard-safety``) classifies
every module-level mutable global as either a leak hazard or shard-safe
(pure memo, derivable, bounded) via ``# lint: shard-safe(<reason>)``
pragmas.  This module keeps those classifications honest at run time:
every pragma-justified global is **registered** here with the policy its
justification claims, and a guarded run fingerprints the registered
globals before and after the seeded session, failing with a
``state-leak`` :class:`~repro.sanitizer.core.SanitizerViolation` on any
drift the policy does not allow.

Policies mirror the static classification:

* ``frozen`` — the fingerprint must be identical: no new entries, no
  mutated entries, no removals.  For state that claims to be read-only.
* ``bounded-memo`` — a pure memo may *grow* (new keys) up to ``bound``
  entries, but an existing entry changing or disappearing means the
  "memo" is not pure, and growth past the bound means it is not bounded
  — both fail.
* ``volatile`` — diagnostic state (activation counters) expected to
  drift; tracked and reported, never fatal.

The guard follows the sanitizer's null-singleton pattern: a disabled
run holds :data:`NULL_STATE_GUARD` (``enabled`` False, every method a
no-op) so the unguarded path costs one attribute load and a branch —
the same contract ``tools/check_sanitizer_overhead.py`` gates under 5%.
Fingerprints are pure reads over ``repr``-stable digests; taking one
cannot perturb RNG streams, so seeded runs stay byte-identical with the
guard armed.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .core import SanitizerViolation, env_enabled

__all__ = [
    "GuardedGlobal",
    "StateDrift",
    "StateLeakGuard",
    "NullStateGuard",
    "NULL_STATE_GUARD",
    "register_global",
    "registered_globals",
    "state_guard_or_default",
]

_POLICIES = ("frozen", "bounded-memo", "volatile")


@dataclass(frozen=True)
class GuardedGlobal:
    """One registered module global and the drift policy it claims."""

    module: str
    attr: str
    policy: str
    bound: Optional[int] = None

    @property
    def key(self) -> str:
        return "%s.%s" % (self.module, self.attr)


@dataclass(frozen=True)
class StateDrift:
    """One observed policy breach, carried into the violation context."""

    key: str
    policy: str
    detail: str


#: The process-wide registry of guarded globals.  Populated at import
#: time below (and by tests via register_global); every entry mirrors a
#: shard-safe pragma in the tree.
_REGISTRY: Dict[Tuple[str, str], GuardedGlobal] = {}  # lint: shard-safe(guard registry: write-once at import time per entry; identical in every shard by construction)


def register_global(module: str, attr: str, policy: str,
                    bound: Optional[int] = None) -> GuardedGlobal:
    """Register a module global for snapshot/diff guarding.

    ``policy`` is one of ``frozen`` / ``bounded-memo`` / ``volatile``;
    ``bounded-memo`` requires ``bound``.  Re-registering the same
    ``module.attr`` replaces the entry (tests use this to tighten a
    policy temporarily).
    """
    if policy not in _POLICIES:
        raise ValueError("unknown policy %r (want one of %s)"
                         % (policy, ", ".join(_POLICIES)))
    if policy == "bounded-memo" and bound is None:
        raise ValueError("bounded-memo needs an explicit bound")
    entry = GuardedGlobal(module, attr, policy, bound)
    _REGISTRY[(module, attr)] = entry
    return entry


def unregister_global(module: str, attr: str) -> None:
    """Drop a registration (test teardown)."""
    _REGISTRY.pop((module, attr), None)


def registered_globals() -> List[GuardedGlobal]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()[:16]


def _fingerprint(value) -> dict:
    """A stable, diffable summary of one global's current state.

    Mappings keep per-key digests (so memo growth is distinguishable
    from mutation); sequences and sets digest per element; anything
    else digests its ``repr``.  Reads only — never mutates the value.
    """
    if isinstance(value, dict):
        return {"kind": "mapping",
                "items": {repr(k): _digest(repr(v)) for k, v in value.items()}}
    if isinstance(value, (list, tuple)):
        return {"kind": "sequence",
                "items": [_digest(repr(v)) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"kind": "set",
                "items": sorted(_digest(repr(v)) for v in value)}
    return {"kind": "scalar", "items": _digest(repr(value))}


def _diff_entry(entry: GuardedGlobal, before: dict,
                after: dict) -> List[StateDrift]:
    """Policy-aware drift between two fingerprints of one global."""
    drifts: List[StateDrift] = []
    if before == after:
        return drifts
    if entry.policy == "volatile":
        return drifts
    if entry.policy == "frozen":
        drifts.append(StateDrift(
            entry.key, entry.policy,
            "frozen global drifted during the run"))
        return drifts
    # bounded-memo: growth ok within bound; mutation/removal never is
    if before.get("kind") != "mapping" or after.get("kind") != "mapping":
        drifts.append(StateDrift(
            entry.key, entry.policy,
            "memo changed shape (%s -> %s)"
            % (before.get("kind"), after.get("kind"))))
        return drifts
    old_items, new_items = before["items"], after["items"]
    mutated = sorted(k for k in old_items
                     if k in new_items and new_items[k] != old_items[k])
    removed = sorted(k for k in old_items if k not in new_items)
    if mutated:
        drifts.append(StateDrift(
            entry.key, entry.policy,
            "existing memo entries mutated (%s) — not a pure memo"
            % ", ".join(mutated[:3])))
    if removed:
        drifts.append(StateDrift(
            entry.key, entry.policy,
            "memo entries removed (%s) — not append-only"
            % ", ".join(removed[:3])))
    if entry.bound is not None and len(new_items) > entry.bound:
        drifts.append(StateDrift(
            entry.key, entry.policy,
            "memo grew to %d entries, past its declared bound of %d"
            % (len(new_items), entry.bound)))
    return drifts


class NullStateGuard:
    """Disabled guard: ``enabled`` False, snapshot/verify are no-ops."""

    enabled = False

    def snapshot(self):
        return None

    def verify(self, before) -> None:
        pass


#: The shared disabled handle (the telemetry/sanitizer singleton pattern).
NULL_STATE_GUARD = NullStateGuard()


class StateLeakGuard:
    """Snapshot/diff checker over the registered module globals."""

    enabled = True

    def __init__(self, registry: Optional[List[GuardedGlobal]] = None):
        self.registry = (list(registry) if registry is not None
                         else registered_globals())
        self.verifications = 0

    def snapshot(self) -> Dict[str, dict]:
        """Fingerprint every registered global as it stands now."""
        out: Dict[str, dict] = {}
        for entry in self.registry:
            try:
                module = importlib.import_module(entry.module)
                value = getattr(module, entry.attr)
            except (ImportError, AttributeError):
                out[entry.key] = {"kind": "missing", "items": None}
                continue
            out[entry.key] = _fingerprint(value)
        return out

    def verify(self, before: Dict[str, dict]) -> None:
        """Diff current state against ``before``; fail-stop on a leak."""
        self.verifications += 1
        after = self.snapshot()
        drifts: List[StateDrift] = []
        for entry in self.registry:
            drifts.extend(_diff_entry(entry, before.get(entry.key, {}),
                                      after.get(entry.key, {})))
        if drifts:
            worst = drifts[0]
            raise SanitizerViolation(
                "state-leak",
                "%d registered module global(s) drifted against policy; "
                "first: %s [%s] %s"
                % (len(drifts), worst.key, worst.policy, worst.detail),
                drifts=[(d.key, d.policy, d.detail) for d in drifts])


def state_guard_or_default(explicit=None):
    """Resolve a run's state guard, mirroring ``sanitizer_or_default``.

    ``True``/``False`` force; ``None`` defers to ``REPRO_SANITIZE``; an
    object with ``enabled`` passes through.
    """
    if explicit is None:
        explicit = env_enabled()
    if isinstance(explicit, bool):
        return StateLeakGuard() if explicit else NULL_STATE_GUARD
    if hasattr(explicit, "enabled"):
        if isinstance(explicit, (StateLeakGuard, NullStateGuard)):
            return explicit
        # a ProtocolSanitizer (or compatible) handle: inherit its switch
        return StateLeakGuard() if explicit.enabled else NULL_STATE_GUARD
    return NULL_STATE_GUARD


# -- default registrations: one per shard-safe pragma in the tree -------------

#: ``repro.core.gf256`` memoises 256-byte translate tables, one per
#: coefficient — a pure memo of ``_MUL_TABLE`` rows, at most 256 entries.
register_global("repro.core.gf256", "_TRANSLATE_TABLES",
                "bounded-memo", bound=256)

#: ``repro.sanitizer.core`` keeps process-wide activation counters for
#: the overhead gate; diagnostics only, expected to move every run.
register_global("repro.sanitizer.core", "_TOTALS", "volatile")
