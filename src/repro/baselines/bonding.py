"""Cellular bonding baseline (BONDING, §8.1.2).

SD-WAN-style bonding hashes each session's 5-tuple onto one cellular
interface and forwards UDP as-is: no proxy, no retransmission, no
aggregation.  The video stream therefore lives or dies with one link at a
time (failover re-pins the flow only after the liveness probe notices).

The client still exchanges lightweight ACKs so path liveness and RTT are
observable — standing in for mwan3's ping-based interface tracking — but
losses are never repaired and the congestion window never binds (plain
UDP has none).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.frames import XncNcFrame
from ..core.rlnc import frame_payload
from ..emulation.emulator import MultipathEmulator
from ..emulation.events import EventLoop
from ..multipath.path import PathManager, PathState
from ..multipath.scheduler.bonding import BondingScheduler, FiveTuple
from ..quic.cc.base import CongestionController
from ..transport.base import AppPacket, SentInfo, TunnelClientBase

__all__ = [
    "UnlimitedController",
    "build_bonding_paths",
    "BondingTunnelClient",
]


class UnlimitedController(CongestionController):
    """No congestion control: the window never binds (plain UDP)."""

    def __init__(self, mss: int = 1400):
        super().__init__(mss)
        self.cwnd = 1 << 40

    def _acked(self, size: int, rtt: float, now: float) -> None:
        self.cwnd = 1 << 40

    def _lost(self, size: int, now: float) -> None:
        self.cwnd = 1 << 40


def build_bonding_paths(emulator: MultipathEmulator, names: Optional[list] = None) -> PathManager:
    """Paths with unlimited windows for the bonding client."""
    manager = PathManager()
    for pid in emulator.path_ids():
        name = names[pid] if names else "path-%d" % pid  # lint: hot-ok(transport construction, once per run over N<=8 paths)
        manager.add(PathState(pid, name=name, cc=UnlimitedController()))  # lint: hot-ok(transport construction, once per run over N<=8 paths)
    return manager


class BondingTunnelClient(TunnelClientBase):
    """UDP pass-through pinned to one hashed interface."""

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        paths: Optional[PathManager] = None,
        five_tuple: Optional[FiveTuple] = None,
        telemetry=None,
        sanitizer=None,
        **kwargs,
    ):
        paths = paths or build_bonding_paths(emulator)
        super().__init__(loop, emulator, paths, BondingScheduler(five_tuple),
                         telemetry=telemetry, sanitizer=sanitizer, **kwargs)

    def _build_frame(self, pkt: AppPacket) -> XncNcFrame:
        return XncNcFrame.original(pkt.packet_id, frame_payload(pkt.payload))

    def _on_cc_lost(self, info: SentInfo, now: float) -> None:
        # plain UDP: losses are not repaired
        return
