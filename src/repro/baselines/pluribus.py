"""Pluribus baseline [26]: proactive block erasure coding over multipath.

Pluribus (Mahajan et al., ATC'12) ships web-sized loads from a bus over
two cellular links using "opportunistic erasure coding": data is grouped
into blocks, coded repair packets are generated proactively at a rate
matched to the *estimated* loss, and spare capacity carries them.  It was
built for small (<86 KB), non-real-time transfers at <1.5 Mbps.

Our implementation is a faithful-by-mechanism port to the 4-path tunnel:

* application packets flow immediately (systematic);
* packets are grouped into contiguous blocks (count or timeout bound);
* when a block closes, repair packets — random linear combinations over
  the block — are emitted proactively, their count driven by an EWMA loss
  estimate with a redundancy floor;
* the receiver is the standard RLNC decoder (repairs reference the block
  range), delivering out of order.

Against a 30 Mbps stream on bursty links its two weaknesses show exactly
as in Fig. 12: the redundancy must stay high *all the time* to cover
bursts it cannot predict, and a burst that swallows a whole block (data +
repairs) is unrecoverable — there is no reactive path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.frames import XncNcFrame
from ..core.rlnc import RlncEncoder, RlncError
from ..determinism import seeded_rng
from ..emulation.emulator import MultipathEmulator
from ..emulation.events import EventLoop
from ..multipath.path import PathManager
from ..multipath.scheduler.base import Scheduler
from ..multipath.scheduler.roundrobin import RoundRobinScheduler
from ..transport.base import AppPacket, SentInfo, TunnelClientBase

__all__ = [
    "PluribusConfig",
    "PluribusTunnelClient",
]


@dataclass
class PluribusConfig:
    """Block-coding parameters."""

    block_packets: int = 16
    block_timeout: float = 0.020
    #: redundancy floor: repairs per block even at zero estimated loss
    min_redundancy: float = 0.20
    #: cap so a loss-estimate spike cannot flood the links
    max_redundancy: float = 1.00
    #: EWMA gain for the per-connection loss estimate
    loss_ewma: float = 0.05
    seed: int = 11

    def __post_init__(self):
        if self.block_packets < 2:
            raise ValueError("block_packets must be >= 2")
        if not 0 <= self.min_redundancy <= self.max_redundancy:
            raise ValueError("redundancy bounds inverted")


class PluribusTunnelClient(TunnelClientBase):
    """Proactive block-coded multipath sender."""

    #: Repairs are pushed on every usable path when a block closes,
    #: deliberately ignoring spare congestion window (Pluribus trades
    #: window discipline for burst protection) — opt out of the
    #: sanitizer's inflight<=cwnd invariant.
    sanitize_window_discipline = False

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        paths: PathManager,
        config: Optional[PluribusConfig] = None,
        scheduler: Optional[Scheduler] = None,
        telemetry=None,
        sanitizer=None,
        **kwargs,
    ):
        super().__init__(loop, emulator, paths, scheduler or RoundRobinScheduler(),
                         telemetry=telemetry, sanitizer=sanitizer, **kwargs)
        self.config = config or PluribusConfig()
        self.encoder = RlncEncoder(simd=True)
        self._rng = seeded_rng(self.config.seed)  # lint: disable=shard-rng-provenance -- adding a derivation label would shift the stream and break golden replay; PluribusConfig.seed is unique per tunnel
        self._block_start: Optional[int] = None
        self._block_count = 0
        self._block_opened_at = 0.0
        self._block_timer = None
        self.loss_estimate = 0.02
        self.blocks_closed = 0
        self.repairs_sent = 0

    # -- ingress -------------------------------------------------------------

    def _on_app_packet_queued(self, pkt: AppPacket) -> None:
        self.encoder.register(pkt.packet_id, pkt.payload, self.loop.now)
        if self._block_start is None:
            self._block_start = pkt.packet_id
            self._block_count = 0
            self._block_opened_at = self.loop.now
            self._block_timer = self.loop.call_later(self.config.block_timeout, self._close_block)
        self._block_count += 1
        if self._block_count >= self.config.block_packets:
            self._close_block()

    def _build_frame(self, pkt: AppPacket) -> XncNcFrame:
        if not self.encoder.contains(pkt.packet_id):
            # the 1 s pool GC may have raced a long backlog; re-register
            self.encoder.register(pkt.packet_id, pkt.payload, self.loop.now)
        framed = self.encoder.encode(pkt.packet_id, 1, 0)
        return XncNcFrame.original(pkt.packet_id, framed)

    # -- loss estimation -------------------------------------------------------

    def _on_app_acked(self, app_ids, info: SentInfo) -> None:
        a = self.config.loss_ewma
        self.loss_estimate = (1 - a) * self.loss_estimate

    def _on_cc_lost(self, info: SentInfo, now: float) -> None:
        a = self.config.loss_ewma
        self.loss_estimate = (1 - a) * self.loss_estimate + a

    # -- block close / repair emission ------------------------------------------

    def _repair_count(self, block_size: int) -> int:
        p = min(max(self.loss_estimate, 0.0), 0.9)
        needed = p / (1.0 - p)
        rate = min(max(needed, self.config.min_redundancy), self.config.max_redundancy)
        return max(1, round(block_size * rate))

    def _close_block(self) -> None:
        if self._block_timer is not None:
            self._block_timer.cancel()
            self._block_timer = None
        if self._block_start is None or self._block_count < 2:
            self._block_start = None
            return
        start, count = self._block_start, self._block_count
        self._block_start = None
        repairs = self._repair_count(count)
        paths = [p for p in self.paths.usable(self.loop.now)] or self.paths.all()
        for i in range(repairs):
            seed = self._rng.randrange(1, 2 ** 32)
            try:
                payload = self.encoder.encode(start, count, seed)
            except (RlncError, ValueError):
                # the block was already released from the pool (or a packet
                # outgrew the frame width) — repairs for it are moot
                tel = self.telemetry
                if tel.enabled:
                    tel.count("pluribus.repair_encode_failed")
                return
            frame = XncNcFrame.coded(start, count, seed, payload)
            path = paths[i % len(paths)]
            self._transmit_frame(path, frame, tuple(range(start, start + count)), is_recovery=True)
            self.repairs_sent += 1
        self.blocks_closed += 1
        # pool hygiene: blocks older than a second can never be repaired
        self.loop.call_later(1.0, self.encoder.release_range, start, count)
