"""Fully reliable multipath tunnels: MPQUIC, MPTCP, and the Fig. 11
scheduler arms (minRTT / RE / XLINK / ECF).

These transports retransmit every lost packet until it is acknowledged and
deliver in order — the behaviour of stream-mode MPQUIC and MPTCP that §1
identifies as the core mismatch with real-time video: under bursty
cellular loss, retransmission queues and head-of-line blocking convert
loss into seconds of stall.

A single client class hosts all of them; the scheduler object and the
congestion-controller factory are the configuration axes (MPTCP =
minRTT + NewReno, MPQUIC = minRTT + BBR, RE/XLINK/ECF = that scheduler +
BBR).  The server delivers strictly in order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Set

from ..core.frames import XncNcFrame
from ..core.rlnc import frame_payload, unframe_payload
from ..emulation.emulator import MultipathEmulator
from ..emulation.events import EventLoop
from ..multipath.path import PathManager
from ..multipath.scheduler.base import Scheduler
from ..transport.base import AppPacket, SentInfo, TunnelClientBase, TunnelServerBase

__all__ = [
    "ReliableTunnelClient",
    "InOrderTunnelServer",
    "UnorderedTunnelServer",
]


class ReliableTunnelClient(TunnelClientBase):
    """Retransmit-until-acked multipath sender."""

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        paths: PathManager,
        scheduler: Scheduler,
        telemetry=None,
        sanitizer=None,
        **kwargs,
    ):
        super().__init__(loop, emulator, paths, scheduler, telemetry=telemetry,
                         sanitizer=sanitizer, **kwargs)
        self._payloads: Dict[int, AppPacket] = {}
        self._delivered: Set[int] = set()
        self._retx: Deque[int] = deque()
        self._retx_queued: Set[int] = set()

    def _on_app_packet_queued(self, pkt: AppPacket) -> None:
        self._payloads[pkt.packet_id] = pkt

    def _build_frame(self, pkt: AppPacket) -> XncNcFrame:
        return XncNcFrame.original(pkt.packet_id, frame_payload(pkt.payload))

    def _on_app_acked(self, app_ids, info: SentInfo) -> None:
        for app_id in app_ids:
            if app_id in self._delivered:
                continue
            self._delivered.add(app_id)
            self._payloads.pop(app_id, None)
            self._retx_queued.discard(app_id)

    def _has_pending_work(self) -> bool:
        # undelivered payloads await either first transmission or a
        # retransmit — the watchdog must see them as pending work even
        # after the base queues drain
        return bool(self._payloads) or super()._has_pending_work()

    def _on_cc_lost(self, info: SentInfo, now: float) -> None:
        for app_id in info.app_ids:
            if app_id in self._delivered or app_id in self._retx_queued:
                continue
            if app_id not in self._payloads:
                continue
            self._retx_queued.add(app_id)
            self._retx.append(app_id)

    def _pump(self) -> None:
        if self.closed:
            return
        # retransmissions first (TCP semantics), then fresh data
        while self._retx:
            app_id = self._retx[0]
            if app_id in self._delivered or app_id not in self._payloads:
                self._retx.popleft()
                self._retx_queued.discard(app_id)
                continue
            pkt = self._payloads[app_id]
            frame = self._build_frame(pkt)
            targets = self.scheduler.select(self.paths.all(), frame.wire_size + 56, self.loop.now)
            if not targets:
                return
            self._retx.popleft()
            self._retx_queued.discard(app_id)
            for i, path in enumerate(targets):
                self._transmit_frame(
                    path, frame, (app_id,), is_recovery=False, is_dup=i > 0, is_retx=i == 0
                )
        super()._pump()


class InOrderTunnelServer(TunnelServerBase):
    """Delivers application packets strictly in packet-ID order.

    Models the byte-stream semantics of MPTCP / stream-mode MPQUIC: one
    missing packet blocks everything behind it until retransmission
    arrives (head-of-line blocking).
    """

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        on_app_packet: Callable[[int, bytes, float], None],
        telemetry=None,
        sanitizer=None,
    ):
        super().__init__(loop, emulator, on_app_packet, telemetry=telemetry,
                         sanitizer=sanitizer)
        self._buffer: Dict[int, bytes] = {}
        self._expected = 0
        self.max_buffered = 0
        self.hol_blocked_deliveries = 0

    def _handle_frame(self, path_id: int, frame: XncNcFrame, now: float) -> None:
        if frame.header.packet_count != 1:
            return  # reliable tunnels never send coded frames
        app_id = frame.header.start_id
        if app_id < self._expected or app_id in self._buffer:
            return
        self._buffer[app_id] = unframe_payload(frame.payload)
        self.max_buffered = max(self.max_buffered, len(self._buffer))
        released = 0
        while self._expected in self._buffer:
            payload = self._buffer.pop(self._expected)
            self.on_app_packet(self._expected, payload, now)
            self._expected += 1
            released += 1
        if released > 1:
            self.hol_blocked_deliveries += released - 1


class UnorderedTunnelServer(TunnelServerBase):
    """Delivers packets as they arrive (datagram semantics, used by the
    BONDING baseline and by tests)."""

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        on_app_packet: Callable[[int, bytes, float], None],
        telemetry=None,
        sanitizer=None,
    ):
        super().__init__(loop, emulator, on_app_packet, telemetry=telemetry,
                         sanitizer=sanitizer)
        self._seen: Set[int] = set()

    def _handle_frame(self, path_id: int, frame: XncNcFrame, now: float) -> None:
        if frame.header.packet_count != 1:
            return
        app_id = frame.header.start_id
        if app_id in self._seen:
            return
        self._seen.add(app_id)
        self.on_app_packet(app_id, unframe_payload(frame.payload), now)
