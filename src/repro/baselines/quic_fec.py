"""Proactive FEC baseline (QUIC-FEC-style, [34]; the §4.1 strawman).

§4.1 frames the design space: a *proactive* scheme sends feed-forward
redundancy with every first transmission, a *reactive* scheme (XNC)
repairs only after detecting loss.  The paper's argument against
proactive coding on vehicular links: bursty loss forces a permanently
high redundancy rate, because you cannot predict when a burst will hit
or how long it will last — so you pay worst-case overhead all the time,
and a burst longer than a block's protection still kills the block.

This transport makes that argument measurable.  It streams systematic
blocks of ``k`` packets followed by ``r`` repair packets (RLNC over the
block, so the standard decoder consumes it), with ``r/k`` fixed at the
configured redundancy rate.  No feedback, no retransmission — pure
feed-forward protection, spread round-robin over the paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.frames import XncNcFrame
from ..core.rlnc import RlncEncoder
from ..determinism import seeded_rng
from ..emulation.emulator import MultipathEmulator
from ..emulation.events import EventLoop
from ..multipath.path import PathManager
from ..multipath.scheduler.base import Scheduler
from ..multipath.scheduler.roundrobin import RoundRobinScheduler
from ..transport.base import AppPacket, TunnelClientBase

__all__ = [
    "FecConfig",
    "FecTunnelClient",
]


@dataclass
class FecConfig:
    """Fixed-rate feed-forward protection parameters."""

    block_packets: int = 10
    #: repair packets per original packet (0.3 -> 3 repairs per 10-block)
    redundancy_rate: float = 0.30
    block_timeout: float = 0.015
    seed: int = 23

    def __post_init__(self):
        if self.block_packets < 2:
            raise ValueError("block_packets must be >= 2")
        if self.redundancy_rate < 0:
            raise ValueError("redundancy_rate must be >= 0")

    @property
    def repairs_per_block(self) -> int:
        return max(1, round(self.block_packets * self.redundancy_rate))


class FecTunnelClient(TunnelClientBase):
    """Systematic fixed-rate FEC sender (no feedback loop at all)."""

    #: Feed-forward repairs ride whatever path is usable regardless of
    #: spare window (the whole point of fixed-rate FEC) — opt out of the
    #: sanitizer's inflight<=cwnd invariant.
    sanitize_window_discipline = False

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        paths: PathManager,
        config: Optional[FecConfig] = None,
        scheduler: Optional[Scheduler] = None,
        telemetry=None,
        sanitizer=None,
        **kwargs,
    ):
        super().__init__(loop, emulator, paths, scheduler or RoundRobinScheduler(),
                         telemetry=telemetry, sanitizer=sanitizer, **kwargs)
        self.config = config or FecConfig()
        self.encoder = RlncEncoder(simd=True)
        self._rng = seeded_rng(self.config.seed)  # lint: disable=shard-rng-provenance -- adding a derivation label would shift the stream and break golden replay; FecConfig.seed is unique per tunnel
        self._block_start: Optional[int] = None
        self._block_count = 0
        self._block_timer = None
        self.blocks_protected = 0

    def _on_app_packet_queued(self, pkt: AppPacket) -> None:
        self.encoder.register(pkt.packet_id, pkt.payload, self.loop.now)
        if self._block_start is None:
            self._block_start = pkt.packet_id
            self._block_count = 0
            self._block_timer = self.loop.call_later(self.config.block_timeout, self._close_block)
        self._block_count += 1
        if self._block_count >= self.config.block_packets:
            self._close_block()

    def _build_frame(self, pkt: AppPacket) -> XncNcFrame:
        if not self.encoder.contains(pkt.packet_id):
            self.encoder.register(pkt.packet_id, pkt.payload, self.loop.now)
        return XncNcFrame.original(pkt.packet_id, self.encoder.encode(pkt.packet_id, 1, 0))

    def _on_cc_lost(self, info, now: float) -> None:
        # purely proactive: losses are never repaired reactively
        return

    def _close_block(self) -> None:
        if self._block_timer is not None:
            self._block_timer.cancel()
            self._block_timer = None
        if self._block_start is None or self._block_count < 2:
            self._block_start = None
            return
        start, count = self._block_start, self._block_count
        self._block_start = None
        paths = self.paths.usable(self.loop.now) or self.paths.all()
        for i in range(self.config.repairs_per_block):
            seed = self._rng.randrange(1, 2 ** 32)
            payload = self.encoder.encode(start, count, seed)
            frame = XncNcFrame.coded(start, count, seed, payload)
            self._transmit_frame(
                paths[i % len(paths)], frame, tuple(range(start, start + count)), is_recovery=True
            )
        self.blocks_protected += 1
        self.loop.call_later(1.0, self.encoder.release_range, start, count)
