"""Comparison transports: reliable MPQUIC/MPTCP, BONDING, Pluribus."""

from .bonding import BondingTunnelClient, UnlimitedController, build_bonding_paths
from .pluribus import PluribusConfig, PluribusTunnelClient
from .quic_fec import FecConfig, FecTunnelClient
from .reliable import InOrderTunnelServer, ReliableTunnelClient, UnorderedTunnelServer

__all__ = [
    "BondingTunnelClient",
    "UnlimitedController",
    "build_bonding_paths",
    "PluribusConfig",
    "FecConfig",
    "FecTunnelClient",
    "PluribusTunnelClient",
    "InOrderTunnelServer",
    "ReliableTunnelClient",
    "UnorderedTunnelServer",
]
