"""Discrete-event simulation core.

Everything in the reproduction — links, transports, video sources, timers —
runs on one :class:`EventLoop`.  Time is a float in seconds.  The loop is a
plain binary heap with cancellable handles; ties are broken by insertion
order so runs are fully deterministic for a given seed.

Heap entries are bare ``[time, order, callback, args]`` lists rather than
objects: the ``order`` field is unique, so heap comparisons resolve on the
first two (C-compared) elements and never reach the callback.  Cancelling
an event nulls its callback in place; the dead entry stays in the heap
until it surfaces — *or* until cancelled entries pile up, at which point
the heap is compacted in one linear pass (``_COMPACT_MIN`` live threshold,
then whenever dead entries outnumber live ones).  Without compaction a
cancel-heavy workload — timer re-arming, retransmission races — grows the
heap without bound even though almost nothing in it will ever fire.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

__all__ = [
    "SimulationError",
    "EventLoop",
    "PeriodicTimer",
]

# entry layout: [time, order, callback, args]; callback None == cancelled
_TIME, _ORDER, _CALLBACK, _ARGS = 0, 1, 2, 3

#: Compaction never triggers below this many cancelled entries — small
#: heaps are cheap to carry and the O(n) sweep would dominate.
_COMPACT_MIN = 64


class SimulationError(Exception):
    """Raised for invalid scheduling (e.g. events in the past)."""


class EventHandle:
    """Cancellation handle returned by :meth:`EventLoop.schedule`."""

    __slots__ = ("_entry", "_loop")

    def __init__(self, entry: list, loop: "EventLoop"):
        self._entry = entry
        self._loop = loop

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Cancel the event; safe to call more than once (or after firing)."""
        entry = self._entry
        if entry[_CALLBACK] is None:
            return
        entry[_CALLBACK] = None
        entry[_ARGS] = ()
        self._loop._note_cancelled()


class EventLoop:
    """A deterministic discrete-event scheduler."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: List[list] = []
        self._counter = itertools.count()
        self._cancelled = 0
        self.events_processed = 0
        #: Optional :class:`repro.obs.SimProfiler` (duck-typed: anything
        #: with ``call(callback, args, when)``).  None keeps dispatch bare
        #: — one local ``is None`` test per event, bounded by the
        #: disabled-overhead gate.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def pending_events(self) -> int:
        """Live (non-cancelled) events still in the heap."""
        return len(self._heap) - self._cancelled

    def heap_size(self) -> int:
        """Physical heap length, dead entries included (observability)."""
        return len(self._heap)

    def schedule(self, when: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        now = self._now
        if when < now:
            if when < now - 1e-12:
                raise SimulationError(
                    "cannot schedule event at %.6f before now %.6f" % (when, now))
            when = now
        entry = [when, next(self._counter), callback, args]
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    def call_later(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError("negative delay %r" % delay)
        return self.schedule(self._now + delay, callback, *args)

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        # compact when dead entries dominate: amortised O(1) per cancel,
        # keeps the heap within 2x of its live size
        if self._cancelled >= _COMPACT_MIN and self._cancelled * 2 >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (preserves (time, order)).

        In place: run_until holds a local reference to the heap list across
        callbacks, and a callback may cancel its way into a compaction.
        """
        live = [e for e in self._heap if e[_CALLBACK] is not None]
        heapq.heapify(live)
        self._heap[:] = live
        self._cancelled = 0

    def _pop_live(self) -> Optional[list]:
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[_CALLBACK] is not None:
                return entry
            self._cancelled -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        heap = self._heap
        while heap and heap[0][_CALLBACK] is None:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][_TIME] if heap else None

    def step(self) -> bool:
        """Run one event; returns False when the queue is empty."""
        entry = self._pop_live()
        if entry is None:
            return False
        self._now = entry[_TIME]
        callback, args = entry[_CALLBACK], entry[_ARGS]
        # null the popped entry so a late cancel() through a kept handle is
        # a no-op (and is not double-counted against the heap)
        entry[_CALLBACK] = None
        entry[_ARGS] = ()
        self.events_processed += 1
        if self.profiler is None:
            callback(*args)
        else:
            self.profiler.call(callback, args, self._now)
        return True

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``, then advance to it.

        This is the simulation's innermost loop (every event of every run
        goes through it), so the peek/pop sequence is fused inline rather
        than paying two method calls per event via peek_time()/step().
        """
        heap = self._heap
        profiler = self.profiler
        while heap:
            head = heap[0]
            if head[_CALLBACK] is None:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            when = head[_TIME]
            if when > end_time:
                break
            entry = heapq.heappop(heap)
            self._now = when
            callback, args = entry[_CALLBACK], entry[_ARGS]
            entry[_CALLBACK] = None
            entry[_ARGS] = ()
            self.events_processed += 1
            if profiler is None:
                callback(*args)
            else:
                profiler.call(callback, args, when)
        self._now = max(self._now, end_time)

    def run(self, max_events: int = 50_000_000) -> None:
        """Run until the event queue is exhausted."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError("event budget exhausted; runaway simulation?")


class PeriodicTimer:
    """Repeats ``callback()`` every ``interval`` seconds until stopped."""

    def __init__(self, loop: EventLoop, interval: float, callback: Callable):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._loop = loop
        self.interval = interval
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, first_delay: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = self.interval if first_delay is None else first_delay
        self._handle = self._loop.call_later(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._handle = self._loop.call_later(self.interval, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
