"""Discrete-event simulation core.

Everything in the reproduction — links, transports, video sources, timers —
runs on one :class:`EventLoop`.  Time is a float in seconds.  The loop is a
plain binary heap with cancellable handles; ties are broken by insertion
order so runs are fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "SimulationError",
    "EventLoop",
    "PeriodicTimer",
]


class SimulationError(Exception):
    """Raised for invalid scheduling (e.g. events in the past)."""


@dataclass(order=True)
class _Entry:
    time: float
    order: int
    callback: Optional[Callable] = field(compare=False)
    args: tuple = field(compare=False, default=())


class EventHandle:
    """Cancellation handle returned by :meth:`EventLoop.schedule`."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry):
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.callback is None

    def cancel(self) -> None:
        """Cancel the event; safe to call more than once."""
        self._entry.callback = None
        self._entry.args = ()


class EventLoop:
    """A deterministic discrete-event scheduler."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: List[_Entry] = []
        self._counter = itertools.count()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, when: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now - 1e-12:
            raise SimulationError("cannot schedule event at %.6f before now %.6f" % (when, self._now))
        entry = _Entry(max(when, self._now), next(self._counter), callback, args)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def call_later(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError("negative delay %r" % delay)
        return self.schedule(self._now + delay, callback, *args)

    def _pop_live(self) -> Optional[_Entry]:
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.callback is not None:
                return entry
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        while self._heap and self._heap[0].callback is None:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run one event; returns False when the queue is empty."""
        entry = self._pop_live()
        if entry is None:
            return False
        self._now = entry.time
        callback, args = entry.callback, entry.args
        entry.callback = None
        self.events_processed += 1
        callback(*args)
        return True

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``, then advance to it."""
        while True:
            t = self.peek_time()
            if t is None or t > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def run(self, max_events: int = 50_000_000) -> None:
        """Run until the event queue is exhausted."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError("event budget exhausted; runaway simulation?")


class PeriodicTimer:
    """Repeats ``callback()`` every ``interval`` seconds until stopped."""

    def __init__(self, loop: EventLoop, interval: float, callback: Callable):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._loop = loop
        self.interval = interval
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, first_delay: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = self.interval if first_delay is None else first_delay
        self._handle = self._loop.call_later(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._handle = self._loop.call_later(self.interval, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
