"""Trace formats for the trace-driven link emulator.

The controlled experiments of §8.3 replay cellular traces through an
mpshell-style emulator.  A :class:`LinkTrace` follows Mahimahi's semantics:
a sorted array of *delivery opportunities* — timestamps at which the link
may transmit one MTU-sized packet — plus, in our extension, a base one-way
propagation delay and a piecewise-constant random-loss process (Appx. D's
collector records arrivals of constant-rate UDP probes; capacity and loss
are what that measurement recovers).

Traces can be serialised to/from Mahimahi's integer-millisecond text format
(losing the loss/delay extensions) or to a JSON side-car that keeps
everything.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "MTU_BYTES",
    "TraceError",
    "LossProcess",
    "LinkTrace",
    "opportunities_from_rate",
    "opportunities_from_capacity",
    "save_mahimahi",
    "load_mahimahi",
    "save_json",
    "load_json",
]

#: Bytes carried by one delivery opportunity (Mahimahi's assumption).
MTU_BYTES = 1500


class TraceError(Exception):
    """Malformed or inconsistent trace data."""


@dataclass
class LossProcess:
    """Piecewise-constant per-packet random loss probability.

    ``bucket_times[i]`` is the start of bucket ``i``; ``loss_prob[i]``
    applies until the next bucket (the last bucket extends forever and the
    process loops with the trace).  Probability 1.0 models a full outage.
    """

    bucket_times: np.ndarray
    loss_prob: np.ndarray

    def __post_init__(self):
        self.bucket_times = np.asarray(self.bucket_times, dtype=np.float64)
        self.loss_prob = np.asarray(self.loss_prob, dtype=np.float64)
        if self.bucket_times.shape != self.loss_prob.shape:
            raise TraceError("bucket_times/loss_prob length mismatch")
        if self.bucket_times.size == 0:
            raise TraceError("loss process needs at least one bucket")
        if np.any(np.diff(self.bucket_times) <= 0):
            raise TraceError("bucket_times must be strictly increasing")
        if np.any((self.loss_prob < 0) | (self.loss_prob > 1)):
            raise TraceError("loss probabilities must lie in [0, 1]")
        # plain-list mirrors: probability_at is called once per drained
        # packet, where bisect over a list beats numpy's scalar searchsorted
        # (same float64 values, so lookups are bit-identical)
        self._times = self.bucket_times.tolist()
        self._probs = self.loss_prob.tolist()

    @classmethod
    def zero(cls) -> "LossProcess":
        return cls(np.array([0.0]), np.array([0.0]))

    @classmethod
    def constant(cls, prob: float) -> "LossProcess":
        return cls(np.array([0.0]), np.array([float(prob)]))

    def probability_at(self, t: float, duration: Optional[float] = None) -> float:
        """Loss probability at time ``t`` (looping if ``duration`` given)."""
        if duration is not None and duration > 0:
            t = t % duration
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            idx = 0
        return self._probs[idx]


@dataclass
class LinkTrace:
    """One direction of one cellular link, Mahimahi-style.

    ``opportunities`` is a sorted float array of times (seconds) at which
    one MTU-sized packet may leave the queue.  ``duration`` is the replay
    period; the emulator loops the trace beyond it.
    """

    name: str
    opportunities: np.ndarray
    duration: float
    base_delay: float = 0.030
    loss: LossProcess = field(default_factory=LossProcess.zero)

    def __post_init__(self):
        self.opportunities = np.asarray(self.opportunities, dtype=np.float64)
        if self.duration <= 0:
            raise TraceError("duration must be positive")
        if self.base_delay < 0:
            raise TraceError("base_delay must be >= 0")
        if self.opportunities.size and (
            np.any(self.opportunities < 0) or np.any(self.opportunities >= self.duration)
        ):
            raise TraceError("opportunities must lie in [0, duration)")
        if self.opportunities.size > 1 and np.any(np.diff(self.opportunities) < 0):
            raise TraceError("opportunities must be sorted")

    @property
    def mean_capacity_mbps(self) -> float:
        """Average capacity implied by the delivery opportunities."""
        return self.opportunities.size * MTU_BYTES * 8 / self.duration / 1e6

    def capacity_series(self, bucket: float = 1.0) -> np.ndarray:
        """Per-bucket capacity in Mbps (used by plots and tests)."""
        edges = np.arange(0.0, self.duration + bucket, bucket)
        counts, _ = np.histogram(self.opportunities, bins=edges)
        return counts * MTU_BYTES * 8 / bucket / 1e6


def opportunities_from_rate(rate_mbps: float, duration: float, start: float = 0.0) -> np.ndarray:
    """Evenly spaced delivery opportunities for a constant-rate link."""
    if rate_mbps <= 0:
        return np.array([], dtype=np.float64)
    interval = MTU_BYTES * 8 / (rate_mbps * 1e6)
    n = int(duration / interval)
    return start + np.arange(n) * interval


def opportunities_from_capacity(
    bucket_times: Sequence[float], capacity_mbps: Sequence[float], duration: float
) -> np.ndarray:
    """Delivery opportunities for a piecewise-constant capacity series.

    Within each bucket the opportunities are evenly spaced at the bucket's
    rate; fractional packet budget carries over between buckets so the
    long-run rate is exact.
    """
    times = np.asarray(bucket_times, dtype=np.float64)
    caps = np.asarray(capacity_mbps, dtype=np.float64)
    if times.shape != caps.shape:
        raise TraceError("bucket_times/capacity length mismatch")
    out: List[float] = []
    credit = 0.0
    for i, t0 in enumerate(times):
        t1 = times[i + 1] if i + 1 < times.size else duration
        if t1 <= t0:
            continue
        rate_pkts = caps[i] * 1e6 / 8 / MTU_BYTES
        budget = rate_pkts * (t1 - t0) + credit
        n = int(budget + 1e-9)  # guard against 0.6+0.4 -> 0.999... float dust
        credit = budget - n
        if n > 0:
            out.extend(np.linspace(t0, t1, n, endpoint=False))
    arr = np.array(out, dtype=np.float64)
    return arr[arr < duration]


def save_mahimahi(trace: LinkTrace, path: Union[str, Path]) -> None:
    """Write Mahimahi's one-integer-millisecond-per-line uplink format."""
    ms = np.round(trace.opportunities * 1000).astype(np.int64)
    with open(path, "w") as f:
        for value in ms:
            f.write("%d\n" % value)


def load_mahimahi(
    path: Union[str, Path], name: Optional[str] = None, base_delay: float = 0.030
) -> LinkTrace:
    """Read a Mahimahi trace file into a LinkTrace (loss defaults to zero)."""
    values: List[int] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            values.append(int(line))
    if not values:
        raise TraceError("empty mahimahi trace %s" % path)
    opportunities = np.array(sorted(values), dtype=np.float64) / 1000.0
    duration = float(opportunities[-1]) + 0.001
    return LinkTrace(
        name=name or str(path), opportunities=opportunities, duration=duration, base_delay=base_delay
    )


def save_json(trace: LinkTrace, path: Union[str, Path]) -> None:
    """Write the full extended trace (opportunities + delay + loss)."""
    doc = {
        "name": trace.name,
        "duration": trace.duration,
        "base_delay": trace.base_delay,
        "opportunities": trace.opportunities.tolist(),
        "loss_bucket_times": trace.loss.bucket_times.tolist(),
        "loss_prob": trace.loss.loss_prob.tolist(),
    }
    with open(path, "w") as f:
        json.dump(doc, f)


def load_json(path: Union[str, Path]) -> LinkTrace:
    """Read a trace written by :func:`save_json`."""
    with open(path) as f:
        doc = json.load(f)
    return LinkTrace(
        name=doc["name"],
        opportunities=np.array(doc["opportunities"], dtype=np.float64),
        duration=float(doc["duration"]),
        base_delay=float(doc["base_delay"]),
        loss=LossProcess(
            np.array(doc["loss_bucket_times"], dtype=np.float64),
            np.array(doc["loss_prob"], dtype=np.float64),
        ),
    )
