"""The 4-path tunnel emulator (mpshell extended to multipath, §8.3.1).

A :class:`MultipathEmulator` wires a tunnel-client and a tunnel-server
through N emulated cellular channels, each with an uplink (video direction)
and a downlink (ACK direction) driven by traces.  Endpoints interact with
it through two callbacks:

* the client calls :meth:`send_uplink`, and packets that survive the link
  arrive at the server's ``on_uplink(path_id, payload, time)``;
* the server calls :meth:`send_downlink`, arriving at the client's
  ``on_downlink(path_id, payload, time)``.

Payloads are opaque; only an explicit wire size is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .cellular import generate_downlink_trace
from .events import EventLoop
from .link import DEFAULT_QUEUE_LIMIT_BYTES, EmulatedLink, LinkStats
from .trace import LinkTrace

__all__ = [
    "MultipathEmulator",
]


@dataclass
class PathChannel:
    """One cellular interface: paired uplink and downlink."""

    path_id: int
    uplink: EmulatedLink
    downlink: EmulatedLink

    @property
    def name(self) -> str:
        return self.uplink.name


class MultipathEmulator:
    """Connects one client and one server across N trace-driven paths."""

    def __init__(
        self,
        loop: EventLoop,
        uplink_traces: Sequence[LinkTrace],
        downlink_traces: Optional[Sequence[LinkTrace]] = None,
        queue_limit_bytes: int = DEFAULT_QUEUE_LIMIT_BYTES,
        seed: int = 0,
        telemetry=None,
    ):
        if not uplink_traces:
            raise ValueError("need at least one uplink trace")
        if downlink_traces is None:
            downlink_traces = [
                generate_downlink_trace(t, seed=seed + 1000 + i) for i, t in enumerate(uplink_traces)
            ]
        if len(downlink_traces) != len(uplink_traces):
            raise ValueError("uplink/downlink trace count mismatch")
        self.loop = loop
        self._on_uplink: Optional[Callable[[int, Any, float], None]] = None
        self._on_downlink: Optional[Callable[[int, Any, float], None]] = None
        self.channels: List[PathChannel] = []
        for i, (up, down) in enumerate(zip(uplink_traces, downlink_traces)):
            up_link = EmulatedLink(  # lint: hot-ok(emulator construction, once per run over N<=8 paths)
                loop, up, self._make_deliver(i, "up"), queue_limit_bytes,
                seed=seed * 17 + i, telemetry=telemetry, path_id=i, direction="up"
            )
            down_link = EmulatedLink(  # lint: hot-ok(emulator construction, once per run over N<=8 paths)
                loop, down, self._make_deliver(i, "down"), queue_limit_bytes,
                seed=seed * 31 + i + 7, telemetry=telemetry, path_id=i, direction="down"
            )
            self.channels.append(PathChannel(i, up_link, down_link))  # lint: hot-ok(emulator construction, once per run over N<=8 paths)

    @property
    def path_count(self) -> int:
        return len(self.channels)

    def path_ids(self) -> List[int]:
        return [c.path_id for c in self.channels]

    def links_for(self, path_id: int = -1, direction: str = "both") -> List[EmulatedLink]:
        """Fault-injection surface: the links matched by a path/direction
        selector (``path_id`` -1 = every path; direction up|down|both)."""
        if direction not in ("up", "down", "both"):
            raise ValueError("direction must be up, down, or both")
        out: List[EmulatedLink] = []
        for c in self.channels:
            if path_id >= 0 and c.path_id != path_id:
                continue
            if direction in ("up", "both"):
                out.append(c.uplink)
            if direction in ("down", "both"):
                out.append(c.downlink)
        if path_id >= 0 and not out:
            raise ValueError("unknown path_id %d" % path_id)
        return out

    def attach_server(self, on_uplink: Callable[[int, Any, float], None]) -> None:
        """Register the tunnel-server's uplink receive callback."""
        self._on_uplink = on_uplink

    def attach_client(self, on_downlink: Callable[[int, Any, float], None]) -> None:
        """Register the tunnel-client's downlink receive callback."""
        self._on_downlink = on_downlink

    def _make_deliver(self, path_id: int, direction: str) -> Callable[[Any, float], None]:
        def deliver(payload: Any, arrive_time: float) -> None:
            sink = self._on_uplink if direction == "up" else self._on_downlink
            if sink is not None:
                sink(path_id, payload, arrive_time)

        return deliver

    def send_uplink(self, path_id: int, payload: Any, size: int) -> bool:
        """Client -> server; returns False on immediate tail drop."""
        return self.channels[path_id].uplink.send(payload, size)

    def send_downlink(self, path_id: int, payload: Any, size: int) -> bool:
        """Server -> client; returns False on immediate tail drop."""
        return self.channels[path_id].downlink.send(payload, size)

    def uplink_stats(self) -> Dict[int, LinkStats]:
        return {c.path_id: c.uplink.stats for c in self.channels}

    def downlink_stats(self) -> Dict[int, LinkStats]:
        return {c.path_id: c.downlink.stats for c in self.channels}

    def total_uplink_bytes(self) -> int:
        """Bytes that entered uplink queues (sent, not necessarily delivered)."""
        return sum(
            c.uplink.stats.bytes_delivered + c.uplink.stats.bytes_dropped for c in self.channels
        )
