"""Trace-driven multipath emulator (mpshell-style) and cellular synthesis."""

from .cellular import (
    CellularTrace,
    PROFILE_5G,
    PROFILE_LEO_SAT,
    PROFILE_LTE,
    TechnologyProfile,
    generate_cellular_trace,
    generate_downlink_trace,
    generate_fleet_traces,
    generate_rural_traces,
    profile_for,
)
from .emulator import MultipathEmulator, PathChannel
from .events import EventLoop, EventHandle, PeriodicTimer, SimulationError
from .link import EmulatedLink, LinkStats
from .trace import (
    LinkTrace,
    LossProcess,
    MTU_BYTES,
    load_json,
    load_mahimahi,
    opportunities_from_capacity,
    opportunities_from_rate,
    save_json,
    save_mahimahi,
)

__all__ = [
    "CellularTrace",
    "PROFILE_5G",
    "PROFILE_LEO_SAT",
    "PROFILE_LTE",
    "TechnologyProfile",
    "generate_cellular_trace",
    "generate_downlink_trace",
    "generate_fleet_traces",
    "generate_rural_traces",
    "profile_for",
    "MultipathEmulator",
    "PathChannel",
    "EventLoop",
    "EventHandle",
    "PeriodicTimer",
    "SimulationError",
    "EmulatedLink",
    "LinkStats",
    "LinkTrace",
    "LossProcess",
    "MTU_BYTES",
    "load_json",
    "load_mahimahi",
    "opportunities_from_capacity",
    "opportunities_from_rate",
    "save_json",
    "save_mahimahi",
]
