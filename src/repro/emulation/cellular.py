"""Synthetic cellular drive-trace generator.

The paper's evaluation replays traces collected from real drives (Appx. D).
Without access to those traces we synthesise statistically similar ones,
calibrated to the envelope of Fig. 3:

* RSRP/SINR fluctuating more than 30 dB within seconds, 5G swinging harder
  than LTE (smaller cells, higher frequency);
* heavy bursty loss — outage "dead spots" where loss hits 100 % and can
  persist for tens of seconds;
* latency spikes up to seconds (these *emerge* in the emulator from queue
  build-up when capacity collapses, so the generator only has to produce
  realistic capacity collapses);
* geographical carrier diversity — each carrier has an independent tower
  grid, so outages across carriers are largely uncorrelated.

The physical model is deliberately simple and documented: a vehicle moves
at constant speed along a line; each carrier has towers on a jittered grid;
RSRP = reference power − log-distance path loss + shadow fading (an
Ornstein–Uhlenbeck process); SINR follows RSRP minus an interference term;
capacity maps from SINR through a clipped Shannon curve scaled to the
technology's peak uplink rate; random loss rises steeply once SINR drops
below a decode threshold; hard outages (tunnels/blockage) zero the capacity
outright.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .trace import LinkTrace, LossProcess, opportunities_from_capacity

__all__ = [
    "PROFILE_5G",
    "PROFILE_LTE",
    "PROFILE_LEO_SAT",
    "profile_for",
    "CellularTrace",
    "generate_cellular_trace",
    "generate_fleet_traces",
    "generate_rural_traces",
    "generate_downlink_trace",
]

#: Sampling interval for the RF processes (seconds).
RF_SAMPLE_INTERVAL = 0.1


@dataclass
class TechnologyProfile:
    """Radio-technology parameters for trace synthesis.

    The 5G profile has higher peak rate but smaller cells, stronger
    shadowing, and more frequent outages — reproducing the paper's finding
    that 5G loss/delay can be *worse* than LTE while driving (§2.2).
    """

    name: str
    peak_uplink_mbps: float
    tower_spacing_m: float
    shadow_sigma_db: float
    shadow_tau_s: float
    pathloss_exponent: float
    ref_power_dbm: float
    outage_rate_per_min: float
    outage_mean_s: float
    sinr_decode_threshold_db: float
    base_delay: float

    def __post_init__(self):
        if self.peak_uplink_mbps <= 0:
            raise ValueError("peak_uplink_mbps must be positive")
        if self.tower_spacing_m <= 0:
            raise ValueError("tower_spacing_m must be positive")


#: Appx. D sets the probe rates to 100 Mbps (5G) and 50 Mbps (LTE uplink).
PROFILE_5G = TechnologyProfile(
    name="5G",
    peak_uplink_mbps=100.0,
    tower_spacing_m=450.0,
    shadow_sigma_db=9.0,
    shadow_tau_s=4.0,
    pathloss_exponent=3.6,
    ref_power_dbm=-55.0,
    outage_rate_per_min=1.1,
    outage_mean_s=6.0,
    sinr_decode_threshold_db=3.0,
    base_delay=0.016,
)

PROFILE_LTE = TechnologyProfile(
    name="LTE",
    peak_uplink_mbps=50.0,
    tower_spacing_m=1100.0,
    shadow_sigma_db=6.0,
    shadow_tau_s=6.0,
    pathloss_exponent=2.9,
    ref_power_dbm=-52.0,
    outage_rate_per_min=0.6,
    outage_mean_s=5.0,
    sinr_decode_threshold_db=1.0,
    base_delay=0.025,
)


#: LEO satellite uplink (§10, "venturing beyond cellular"): coverage is
#: position-independent, so the cell geometry is made effectively flat
#: (huge spacing, tiny path-loss slope); instead the link has a high
#: propagation delay and brief but regular outages at satellite handover.
PROFILE_LEO_SAT = TechnologyProfile(
    name="LEO-SAT",
    peak_uplink_mbps=20.0,
    tower_spacing_m=1e7,
    shadow_sigma_db=3.0,
    shadow_tau_s=8.0,
    pathloss_exponent=0.01,
    ref_power_dbm=-78.0,
    outage_rate_per_min=0.4,  # satellite handovers
    outage_mean_s=1.5,
    sinr_decode_threshold_db=2.0,
    base_delay=0.045,
)


def profile_for(tech: str) -> TechnologyProfile:
    """Look up the built-in profile for a technology name."""
    table = {"5G": PROFILE_5G, "LTE": PROFILE_LTE, "LEO-SAT": PROFILE_LEO_SAT}
    if tech not in table:
        raise ValueError("unknown technology %r (use '5G', 'LTE' or 'LEO-SAT')" % tech)
    return table[tech]


@dataclass
class CellularTrace:
    """A synthesised link trace plus its underlying RF observables."""

    tech: str
    carrier: int
    times: np.ndarray
    rsrp_dbm: np.ndarray
    sinr_db: np.ndarray
    capacity_mbps: np.ndarray
    loss_prob: np.ndarray
    outage_mask: np.ndarray
    duration: float
    base_delay: float

    def to_link_trace(self, name: Optional[str] = None) -> LinkTrace:
        """Convert to the emulator's delivery-opportunity representation."""
        opportunities = opportunities_from_capacity(self.times, self.capacity_mbps, self.duration)
        return LinkTrace(
            name=name or ("%s-carrier%d" % (self.tech, self.carrier)),
            opportunities=opportunities,
            duration=self.duration,
            base_delay=self.base_delay,
            loss=LossProcess(self.times, self.loss_prob),
        )

    def rf_per_second(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, RSRP, SINR) downsampled to 1 Hz — the Fig. 3(a) series."""
        step = max(1, int(round(1.0 / RF_SAMPLE_INTERVAL)))
        return self.times[::step], self.rsrp_dbm[::step], self.sinr_db[::step]


def _ou_process(n: int, sigma: float, tau: float, dt: float, rng: np.random.Generator) -> np.ndarray:
    """Ornstein–Uhlenbeck shadow-fading samples (mean 0, std sigma)."""
    x = np.zeros(n)
    alpha = math.exp(-dt / tau)
    noise_scale = sigma * math.sqrt(max(1e-12, 1 - alpha * alpha))
    x[0] = rng.normal(0, sigma)
    white = rng.normal(0, 1, n)
    for i in range(1, n):
        x[i] = alpha * x[i - 1] + noise_scale * white[i]
    return x


def _outage_mask(
    n: int, dt: float, rate_per_min: float, mean_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Boolean mask of hard-outage samples (dead spots, tunnels)."""
    mask = np.zeros(n, dtype=bool)
    t = 0.0
    duration = n * dt
    while True:
        gap = rng.exponential(60.0 / rate_per_min) if rate_per_min > 0 else float("inf")
        t += gap
        if t >= duration:
            break
        length = rng.exponential(mean_s)
        start = int(t / dt)
        end = min(n, int((t + length) / dt) + 1)
        mask[start:end] = True
        t += length
    return mask


def generate_cellular_trace(
    tech: str = "5G",
    carrier: int = 0,
    duration: float = 180.0,
    speed_mps: float = 14.0,
    seed: int = 0,
    profile: Optional[TechnologyProfile] = None,
) -> CellularTrace:
    """Synthesise one carrier's uplink as seen from a moving vehicle.

    ``carrier`` shifts the tower grid, giving each carrier independent
    coverage geometry — the geographical diversity CellFusion exploits.
    """
    prof = profile or profile_for(tech)
    # zlib.crc32, not hash(): str hashes are randomised per process and
    # would make "same seed" mean different traces across runs
    name_tag = zlib.crc32(prof.name.encode()) & 0xFFFF
    rng = np.random.default_rng((seed * 1_000_003 + carrier * 7919 + name_tag) & 0xFFFFFFFF)
    dt = RF_SAMPLE_INTERVAL
    n = int(round(duration / dt))
    times = np.arange(n) * dt

    # vehicle path and serving-tower distance (nearest tower on a jittered
    # grid; the grid offset is carrier-specific)
    positions = times * speed_mps
    grid_offset = rng.uniform(0, prof.tower_spacing_m)
    tower_jitter = rng.uniform(-0.25, 0.25) * prof.tower_spacing_m
    within_cell = np.abs(
        ((positions + grid_offset + tower_jitter) % prof.tower_spacing_m) - prof.tower_spacing_m / 2
    )
    distance = np.maximum(within_cell, 20.0)

    # RSRP: log-distance path loss + OU shadowing
    shadow = _ou_process(n, prof.shadow_sigma_db, prof.shadow_tau_s, dt, rng)
    rsrp = prof.ref_power_dbm - 10 * prof.pathloss_exponent * np.log10(distance / 20.0) + shadow

    # interference fluctuates independently; SINR tracks the SNR implied
    # by RSRP over the noise-plus-interference floor
    interference = _ou_process(n, 4.0, 2.0, dt, rng)
    noise_floor = -102.0
    sinr = (rsrp - noise_floor) + interference - 3.0
    sinr = np.clip(sinr, -10.0, 32.0)

    # hard outages crush both observables
    outage = _outage_mask(n, dt, prof.outage_rate_per_min, prof.outage_mean_s, rng)
    rsrp = np.where(outage, np.minimum(rsrp, -115.0), np.clip(rsrp, -125.0, -50.0))
    sinr = np.where(outage, np.minimum(sinr, -8.0), sinr)

    # clipped-Shannon capacity mapping scaled to the technology peak
    spectral = np.log2(1.0 + np.power(10.0, sinr / 10.0))
    spectral_max = math.log2(1.0 + 10.0 ** (30.0 / 10.0))
    capacity = prof.peak_uplink_mbps * np.clip(spectral / spectral_max, 0.0, 1.0)
    capacity = np.where(outage, 0.0, capacity)

    # random loss: negligible at good SINR, steep once below the decode
    # threshold; outages are 100 %
    margin = prof.sinr_decode_threshold_db - sinr
    loss = 0.6 / (1.0 + np.exp(-margin / 0.8))
    loss = np.clip(loss, 0.0, 0.6)
    loss[sinr > prof.sinr_decode_threshold_db + 2.0] = 0.0
    loss = np.where(outage, 1.0, loss)

    return CellularTrace(
        tech=prof.name,
        carrier=carrier,
        times=times,
        rsrp_dbm=rsrp,
        sinr_db=sinr,
        capacity_mbps=capacity,
        loss_prob=loss,
        outage_mask=outage,
        duration=duration,
        base_delay=prof.base_delay,
    )


def generate_fleet_traces(
    duration: float = 60.0, seed: int = 0, speed_mps: float = 14.0
) -> List[LinkTrace]:
    """The CellFusion CPE's four links: 2x5G + 2xLTE across carriers (§1)."""
    configs = [("5G", 0), ("5G", 1), ("LTE", 1), ("LTE", 2)]
    traces = []
    for idx, (tech, carrier) in enumerate(configs):
        cell = generate_cellular_trace(
            tech=tech, carrier=carrier, duration=duration, speed_mps=speed_mps, seed=seed + idx * 101
        )
        traces.append(cell.to_link_trace())
    return traces


def generate_rural_traces(
    duration: float = 60.0, seed: int = 0, speed_mps: float = 22.0
) -> List[LinkTrace]:
    """A sparse-coverage mix (§10): one weak LTE link plus a LEO uplink.

    Models the "areas where cellular infrastructure is sparse" scenario
    the discussion motivates: the LTE carrier has stretched cells (weak
    edges, long outages) and the satellite link compensates with
    position-independent coverage but higher delay and handover gaps.
    """
    sparse_lte = TechnologyProfile(
        name="LTE",
        peak_uplink_mbps=30.0,
        tower_spacing_m=2600.0,
        shadow_sigma_db=7.0,
        shadow_tau_s=6.0,
        pathloss_exponent=3.0,
        ref_power_dbm=-56.0,
        outage_rate_per_min=1.2,
        outage_mean_s=8.0,
        sinr_decode_threshold_db=1.0,
        base_delay=0.030,
    )
    lte = generate_cellular_trace(
        "LTE", carrier=0, duration=duration, speed_mps=speed_mps, seed=seed, profile=sparse_lte
    )
    sat = generate_cellular_trace(
        "LEO-SAT", carrier=9, duration=duration, speed_mps=speed_mps, seed=seed + 77,
        profile=PROFILE_LEO_SAT,
    )
    return [lte.to_link_trace("LTE-rural"), sat.to_link_trace("LEO-sat")]


def generate_downlink_trace(
    uplink: LinkTrace, rate_scale: float = 2.0, loss_scale: float = 0.4, seed: int = 0
) -> LinkTrace:
    """A matching downlink (ACK path) for an uplink trace.

    Cellular downlinks are faster and cleaner than uplinks but share the
    same coverage, so outages persist while random loss shrinks.
    """
    rng = np.random.default_rng(seed)
    if uplink.opportunities.size:
        reps = max(1, int(round(rate_scale)))
        jitter = rng.uniform(0, 0.0005, uplink.opportunities.size * reps)
        opps = np.sort((np.repeat(uplink.opportunities, reps) + jitter) % uplink.duration)
    else:
        opps = uplink.opportunities
    loss = LossProcess(
        uplink.loss.bucket_times.copy(),
        np.where(uplink.loss.loss_prob >= 0.999, 1.0, uplink.loss.loss_prob * loss_scale),
    )
    return LinkTrace(
        name=uplink.name + "-down",
        opportunities=opps,
        duration=uplink.duration,
        base_delay=uplink.base_delay,
        loss=loss,
    )
