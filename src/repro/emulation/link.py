"""Trace-driven emulated link (mpshell semantics).

One :class:`EmulatedLink` models one direction of one cellular interface:
a drop-tail queue drained by the trace's delivery opportunities (one MTU
per opportunity, looping beyond the trace duration), followed by the base
propagation delay.  Random loss is sampled per packet from the trace's
loss process at drain time.

Latency spikes emerge naturally: when capacity collapses (an outage bucket
with no opportunities) the queue builds and every queued packet inherits
seconds of delay — exactly the behaviour measured in Fig. 3(c).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Deque
from collections import deque

from ..determinism import seeded_rng
from .events import EventLoop
from .trace import LinkTrace, MTU_BYTES

__all__ = [
    "DEFAULT_QUEUE_LIMIT_BYTES",
    "LinkStats",
    "LinkFaultState",
    "EmulatedLink",
]

#: Default drop-tail queue limit; ~0.5 s of 30 Mbps video, deep enough for
#: bufferbloat-style delay spikes, small enough to convert sustained
#: outage into burst loss (both appear in Fig. 3).
DEFAULT_QUEUE_LIMIT_BYTES = 2_000_000


@dataclass
class LinkStats:
    """Counters for one link direction."""

    enqueued: int = 0
    delivered: int = 0
    dropped_queue: int = 0
    dropped_loss: int = 0
    bytes_delivered: int = 0
    bytes_dropped: int = 0

    @property
    def loss_rate(self) -> float:
        total = self.delivered + self.dropped_loss
        return self.dropped_loss / total if total else 0.0

    def as_dict(self) -> dict:
        from dataclasses import asdict

        d = asdict(self)
        d["loss_rate"] = self.loss_rate
        return d


@dataclass
class _Queued:
    payload: Any
    size: int
    enqueue_time: float


class LinkFaultState:
    """The aggregate fault overlay one injector applies to one link.

    Owned and recomputed by :class:`repro.faults.engine.FaultInjector`;
    the link reads it through a single ``self.fault`` attribute that is
    ``None`` whenever no fault is active, so the un-faulted hot path pays
    one attribute load and one branch (the telemetry/sanitizer contract,
    gated by ``tools/check_faults_overhead.py``).

    ``rng`` is the injector's per-link seeded stream — fault randomness
    never touches the trace loss RNG, so arming a plan perturbs nothing
    outside its own draws.
    """

    __slots__ = ("loss_prob", "extra_delay", "bw_scale", "reorder_jitter",
                 "dup_prob", "rng")

    def __init__(self, rng):
        self.loss_prob = 0.0      #: extra per-packet drop probability
        self.extra_delay = 0.0    #: added one-way delay in seconds
        self.bw_scale = 1.0       #: fraction of delivery opportunities kept
        self.reorder_jitter = 0.0  #: uniform extra delay window (reordering)
        self.dup_prob = 0.0       #: probability of duplicating a delivery
        self.rng = rng


class EmulatedLink:
    """One direction of one emulated cellular link."""

    def __init__(
        self,
        loop: EventLoop,
        trace: LinkTrace,
        deliver: Callable[[Any, float], None],
        queue_limit_bytes: int = DEFAULT_QUEUE_LIMIT_BYTES,
        seed: int = 0,
        loss_enabled: bool = True,
        telemetry=None,
        path_id: int = -1,
        direction: str = "",
    ):
        if queue_limit_bytes <= 0:
            raise ValueError("queue_limit_bytes must be positive")
        if telemetry is None:
            from ..obs import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.loop = loop
        self.trace = trace
        self.deliver = deliver
        self.queue_limit_bytes = queue_limit_bytes
        self.loss_enabled = loss_enabled
        self.telemetry = telemetry
        self.path_id = path_id
        self.direction = direction
        self.stats = LinkStats()
        self._rng = seeded_rng(seed)  # lint: disable=shard-rng-provenance -- adding a derivation label would shift loss/delay draws and break golden replay; the caller derives a per-link seed
        self._queue: Deque[_Queued] = deque()
        self._queue_bytes = 0
        self._drain_scheduled = False
        # opportunity cursor: epoch * duration + opportunities[index].
        # The trace array is mirrored into a plain list once — the cursor
        # advances per drained packet, and list indexing + bisect beat
        # numpy scalar access there (same float64 values, identical times)
        self._opp_index = 0
        self._epoch = 0
        self._opps = trace.opportunities.tolist()
        self._duration = float(trace.duration)
        self._base_delay = float(trace.base_delay)
        self._loss = trace.loss
        # a dead link: packets only ever drop at the queue limit
        self._dead = not self._opps
        #: Fault-injection overlay; None = no active fault (the hot-path
        #: guard), written only by repro.faults.engine.FaultInjector.
        self.fault: "LinkFaultState | None" = None

    @property
    def queue_bytes(self) -> int:
        return self._queue_bytes

    @property
    def queue_packets(self) -> int:
        return len(self._queue)

    @property
    def name(self) -> str:
        return self.trace.name

    def _next_opportunity(self, after: float) -> float:
        """Absolute time of the next delivery opportunity >= ``after``."""
        opps = self._opps
        n = len(opps)
        duration = self._duration
        # jump straight to the epoch containing ``after``
        target_epoch = int(after // duration)
        if target_epoch > self._epoch:
            self._epoch = target_epoch
            self._opp_index = 0
        while True:
            base = self._epoch * duration
            if self._opp_index >= n:
                self._epoch += 1
                self._opp_index = 0
                continue
            t = base + opps[self._opp_index]
            if t >= after - 1e-12:
                return t
            # advance the cursor with a binary search within this epoch
            local = after - base
            idx = bisect_left(opps, local)
            if idx >= n:
                self._epoch += 1
                self._opp_index = 0
            else:
                self._opp_index = idx

    def send(self, payload: Any, size: int) -> bool:
        """Enqueue a packet; returns False if the queue tail-dropped it."""
        if size <= 0:
            raise ValueError("packet size must be positive")
        self.stats.enqueued += 1
        if self._queue_bytes + size > self.queue_limit_bytes:
            self.stats.dropped_queue += 1
            self.stats.bytes_dropped += size
            tel = self.telemetry
            if tel.enabled:
                tel.event(self.loop.now, "link_drop", path_id=self.path_id,
                          dir=self.direction, reason="queue", size=size)
                tel.count("link.%s.drop_queue" % (self.direction or "?"))
                sp = tel.spans
                if sp.enabled:
                    sp.instant("drop", self.loop.now, path=self.path_id,
                               dir=self.direction, reason="queue")
            return False
        self._queue.append(_Queued(payload, size, self.loop.now))
        self._queue_bytes += size
        self._schedule_drain()
        return True

    def _schedule_drain(self) -> None:
        if self._drain_scheduled or not self._queue or self._dead:
            return
        t = self._next_opportunity(self.loop.now)
        self._drain_scheduled = True
        self.loop.schedule(t, self._drain)

    def _drain(self) -> None:
        self._drain_scheduled = False
        if not self._queue:
            return
        # consume this opportunity
        self._opp_index += 1
        fault = self.fault
        if fault is not None and fault.bw_scale < 1.0 \
                and fault.rng.random() >= fault.bw_scale:
            # bandwidth cliff: the opportunity is wasted, the packet stays
            # queued (capacity collapse -> queue buildup -> inherited delay,
            # the Fig. 3(c) mechanism)
            self._schedule_drain()
            return
        item = self._queue.popleft()
        self._queue_bytes -= item.size
        lost = False
        reason = "loss"
        if self.loss_enabled:
            p = self._loss.probability_at(self.loop.now, self._duration)
            if p > 0 and self._rng.random() < p:
                lost = True
        if not lost and fault is not None and fault.loss_prob > 0.0 \
                and fault.rng.random() < fault.loss_prob:
            lost = True
            reason = "fault"
        if lost:
            self.stats.dropped_loss += 1
            self.stats.bytes_dropped += item.size
            tel = self.telemetry
            if tel.enabled:
                tel.event(self.loop.now, "link_drop", path_id=self.path_id,
                          dir=self.direction, reason=reason, size=item.size)
                tel.count("link.%s.drop_loss" % (self.direction or "?"))
                sp = tel.spans
                if sp.enabled:
                    sp.instant("drop", self.loop.now, path=self.path_id,
                               dir=self.direction, reason=reason)
        else:
            self.stats.delivered += 1
            self.stats.bytes_delivered += item.size
            arrive = self.loop.now + self._base_delay
            if fault is not None:
                if fault.extra_delay > 0.0:
                    arrive += fault.extra_delay
                if fault.reorder_jitter > 0.0:
                    arrive += fault.rng.random() * fault.reorder_jitter
            self.loop.schedule(arrive, self.deliver, item.payload, arrive)
            if fault is not None and fault.dup_prob > 0.0 \
                    and fault.rng.random() < fault.dup_prob:
                dup_arrive = arrive + self._base_delay * 0.5
                self.stats.delivered += 1
                self.stats.bytes_delivered += item.size
                self.loop.schedule(dup_arrive, self.deliver, item.payload, dup_arrive)
        self._schedule_drain()
