"""End-to-end experiment harness.

One call — :func:`run_stream` — builds the whole §8.3.1 testbed: synthetic
cellular traces, the 4-path emulator, a tunnel client/server pair for the
chosen transport, a video source feeding the client, and a video receiver
behind the server.  It runs the event loop for the session and returns a
:class:`StreamRunResult` with the QoE triple, the packet-delay
distribution, and the redundancy accounting the figures need.

Transports are selected by name; the registry covers every comparison arm
in the paper:

===============  ==============================================================
name             configuration
===============  ==============================================================
``cellfusion``   XNC: QoE loss detection + Q-RLNC one-shot recovery, minRTT,
                 BBR (aliases: ``xnc``)
``mpquic``       reliable in-order multipath QUIC, minRTT, BBR
``mptcp``        reliable in-order, minRTT, NewReno
``bonding``      5-tuple-hash single-interface UDP with failover
``minRTT``       reliable in-order, minRTT scheduler, BBR (Fig. 11 arm)
``RE``           reliable, fully redundant duplication (Fig. 11 arm)
``XLINK``        reliable, QoE-driven reinjection scheduler (Fig. 11 arm)
``ECF``          reliable, earliest-completion-first (Fig. 11 arm)
``pluribus``     proactive block erasure coding (Fig. 12 arm)
``fec``          proactive fixed-rate FEC, no feedback (the §4.1 strawman)
``xnc-no-rlnc``  XNC ablation: retransmit originals, no coding (Fig. 13a)
``xnc-pto-only`` XNC ablation: PTO-only loss detection (Fig. 13b)
===============  ==============================================================
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..baselines.bonding import BondingTunnelClient, build_bonding_paths
from ..baselines.pluribus import PluribusConfig, PluribusTunnelClient
from ..baselines.quic_fec import FecConfig, FecTunnelClient
from ..baselines.reliable import (
    InOrderTunnelServer,
    ReliableTunnelClient,
    UnorderedTunnelServer,
)
from ..core.endpoint import XncConfig, XncTunnelClient, XncTunnelServer
from ..core.loss_detection import QoeLossPolicy
from ..emulation.cellular import generate_fleet_traces
from ..emulation.emulator import MultipathEmulator
from ..emulation.events import EventLoop
from ..emulation.trace import LinkTrace
from ..multipath.path import PathManager, PathState
from ..multipath.scheduler.ecf import EcfScheduler
from ..multipath.scheduler.minrtt import MinRttScheduler
from ..multipath.scheduler.redundant import RedundantScheduler
from ..multipath.scheduler.xlink import XlinkScheduler
from ..obs import Telemetry
from ..quic.cc.bbr import BbrController
from ..quic.cc.newreno import NewRenoController
from ..video.qoe import QoeReport, _frame_status, analyze_qoe
from ..video.receiver import VideoReceiver
from ..video.source import VideoConfig, VideoSource

__all__ = [
    "TRANSPORT_NAMES",
    "StreamRunResult",
    "build_paths",
    "make_transport",
    "run_stream",
    "run_single_link_stream",
]

logger = logging.getLogger(__name__)

TRANSPORT_NAMES = (
    "cellfusion",
    "xnc",
    "mpquic",
    "mptcp",
    "bonding",
    "minRTT",
    "RE",
    "XLINK",
    "ECF",
    "pluribus",
    "fec",
    "xnc-no-rlnc",
    "xnc-pto-only",
)


@dataclass
class StreamRunResult:
    """Everything the benchmarks read off one streaming session."""

    transport: str
    qoe: QoeReport
    packet_delays: List[float]
    redundancy_ratio: float
    frames_sent: int
    packets_sent: int
    packets_received: int
    client_stats: object
    uplink_loss_rates: Dict[int, float]
    duration: float
    #: Per-frame delivery status ("normal"/"corrupt"/"missing"), frame order.
    frame_statuses: List[str] = field(default_factory=list)
    #: Per-frame fraction of packets that never arrived (1.0 = frame gone).
    frame_loss_fractions: List[float] = field(default_factory=list)
    #: The run's :class:`~repro.obs.Telemetry` when enabled, else None.
    telemetry: Optional[Telemetry] = None
    #: Set when the client's stream watchdog declared a terminal stall.
    terminal_error: Optional[str] = None
    #: Fault-injection accounting when a plan was armed (applied/lifted/
    #: nat_flushes/active_end plus health-machine counters), else None.
    fault_summary: Optional[dict] = None
    #: Structured :meth:`repro.obs.SimProfiler.report` for profile=True
    #: runs (deterministic counts + informational wall time), else None.
    profile: Optional[dict] = None

    @property
    def delivery_ratio(self) -> float:
        return self.packets_received / self.packets_sent if self.packets_sent else 0.0

    def censored_packet_delays(self, penalty: float = 1.0) -> List[float]:
        """Delay distribution with never-delivered packets censored at
        ``penalty`` seconds.

        Comparing raw delivered-only delays between transports with
        different delivery ratios is survivorship-biased: a transport that
        silently drops its slowest packets looks "faster".  Censoring
        charges each undelivered packet the deadline it missed.
        """
        missing = max(0, self.packets_sent - self.packets_received)
        return list(self.packet_delays) + [penalty] * missing


def build_paths(emulator: MultipathEmulator, cc_factory: Callable, names: Optional[Sequence[str]] = None) -> PathManager:
    """One PathState per emulator channel with the given controller."""
    manager = PathManager()
    for pid in emulator.path_ids():
        name = names[pid] if names else emulator.channels[pid].name
        manager.add(PathState(pid, name=name, cc=cc_factory(), initial_rtt=0.05))  # lint: hot-ok(transport construction, once per run over N<=8 paths)
    return manager


def make_transport(
    name: str,
    loop: EventLoop,
    emulator: MultipathEmulator,
    receiver_sink: Callable[[int, bytes, float], None],
    xnc_config: Optional[XncConfig] = None,
    telemetry: Optional[Telemetry] = None,
    sanitize=None,
) -> Tuple[object, object]:
    """Instantiate (client, server) for a registry name.

    ``sanitize`` follows :func:`repro.sanitizer.sanitizer_or_default`
    semantics: ``None`` defers to the ``REPRO_SANITIZE`` env hook,
    ``True``/``False`` force it, and a sanitizer instance is shared.
    """
    tel = telemetry
    san = sanitize
    if name in ("cellfusion", "xnc"):
        paths = build_paths(emulator, BbrController)
        client = XncTunnelClient(loop, emulator, paths, xnc_config or XncConfig(),
                                 telemetry=tel, sanitizer=san)
        server = XncTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "xnc-no-rlnc":
        paths = build_paths(emulator, BbrController)
        cfg = xnc_config or XncConfig()
        cfg.coding_enabled = False
        client = XncTunnelClient(loop, emulator, paths, cfg, telemetry=tel, sanitizer=san)
        server = XncTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "xnc-pto-only":
        paths = build_paths(emulator, BbrController)
        cfg = xnc_config or XncConfig()
        cfg.loss_policy = QoeLossPolicy(app_threshold=None)
        client = XncTunnelClient(loop, emulator, paths, cfg, telemetry=tel, sanitizer=san)
        server = XncTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "mpquic":
        paths = build_paths(emulator, BbrController)
        client = ReliableTunnelClient(loop, emulator, paths, MinRttScheduler(),
                                      telemetry=tel, sanitizer=san)
        server = InOrderTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "mptcp":
        paths = build_paths(emulator, NewRenoController)
        client = ReliableTunnelClient(loop, emulator, paths, MinRttScheduler(),
                                      telemetry=tel, sanitizer=san)
        client.rto_min = 0.200  # kernel TCP RTO_min
        server = InOrderTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "bonding":
        client = BondingTunnelClient(loop, emulator, telemetry=tel, sanitizer=san)
        server = UnorderedTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "minRTT":
        paths = build_paths(emulator, BbrController)
        client = ReliableTunnelClient(loop, emulator, paths, MinRttScheduler(),
                                      telemetry=tel, sanitizer=san)
        server = InOrderTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "RE":
        paths = build_paths(emulator, BbrController)
        client = ReliableTunnelClient(loop, emulator, paths, RedundantScheduler(),
                                      telemetry=tel, sanitizer=san)
        server = InOrderTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "XLINK":
        paths = build_paths(emulator, BbrController)
        client = ReliableTunnelClient(loop, emulator, paths, XlinkScheduler(),
                                      telemetry=tel, sanitizer=san)
        server = InOrderTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "ECF":
        paths = build_paths(emulator, BbrController)
        client = ReliableTunnelClient(loop, emulator, paths, EcfScheduler(),
                                      telemetry=tel, sanitizer=san)
        server = InOrderTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "pluribus":
        paths = build_paths(emulator, BbrController)
        client = PluribusTunnelClient(loop, emulator, paths, PluribusConfig(),
                                      telemetry=tel, sanitizer=san)
        server = XncTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    elif name == "fec":
        paths = build_paths(emulator, BbrController)
        client = FecTunnelClient(loop, emulator, paths, FecConfig(), telemetry=tel, sanitizer=san)
        server = XncTunnelServer(loop, emulator, receiver_sink, telemetry=tel, sanitizer=san)
    else:
        raise ValueError("unknown transport %r (choose from %s)" % (name, ", ".join(TRANSPORT_NAMES)))
    return client, server


def run_stream(
    transport: str,
    uplink_traces: Optional[Sequence[LinkTrace]] = None,
    video: Optional[VideoConfig] = None,
    duration: float = 30.0,
    seed: int = 0,
    xnc_config: Optional[XncConfig] = None,
    drain_time: float = 1.5,
    telemetry: Union[bool, Telemetry] = False,
    sanitize=None,
    faults=None,
    fault_seed: int = 0,
    spans: bool = False,
    profile: bool = False,
) -> StreamRunResult:
    """Run one streaming session end to end and analyse it.

    ``uplink_traces`` defaults to a fresh 2x5G + 2xLTE fleet for ``seed``.
    The loop runs ``duration`` seconds of streaming plus ``drain_time`` for
    stragglers, then QoE is computed over the emitted frames.

    ``telemetry`` opts into the observability layer: pass ``True`` for a
    fresh :class:`~repro.obs.Telemetry` (or a pre-configured instance) and
    the result's ``telemetry`` field carries the lifecycle trace, metrics,
    and per-path timelines of the run.  The default ``False`` threads the
    shared no-op handle through, costing one branch per instrumented site.

    ``sanitize`` arms the runtime protocol sanitizer
    (:mod:`repro.sanitizer`): ``True`` gives each endpoint a fresh
    checker that raises :class:`~repro.sanitizer.SanitizerViolation` on
    the first invariant breach; the default ``None`` defers to the
    ``REPRO_SANITIZE`` environment hook; ``False`` forces it off.
    Arming it also arms the module-state leak guard
    (:mod:`repro.sanitizer.stateguard`): registered module globals are
    fingerprinted before the session and verified after it, so drift
    that would diverge worker shards fails the run with a
    ``state-leak`` violation.

    ``faults`` arms deterministic fault injection: pass a
    :class:`~repro.faults.FaultPlan` and the events are compiled onto
    the loop before streaming starts (randomness drawn from
    ``fault_seed``, independent of the trace RNGs).  The result's
    ``fault_summary`` then carries the injector and health-machine
    accounting.

    ``spans`` arms causal span tracing on top of telemetry (implying
    ``telemetry=True`` when it was off): every frame, packet,
    transmission, coding range, decode, and playout event becomes a
    sim-clock span with parent/cause links, readable off
    ``result.telemetry.spans`` (export with
    :meth:`~repro.obs.SpanRecorder.export_jsonl` /
    :meth:`~repro.obs.SpanRecorder.export_chrome_trace`).

    ``profile`` attaches a :class:`~repro.obs.SimProfiler` to the event
    loop and fills the result's ``profile`` field with per-component
    callback attribution (deterministic call counts; wall time is
    informational).
    """
    from ..sanitizer.stateguard import state_guard_or_default

    state_guard = state_guard_or_default(sanitize)
    state_before = state_guard.snapshot() if state_guard.enabled else None
    loop = EventLoop()
    tel: Optional[Telemetry]
    if telemetry is True or (spans and not telemetry):
        tel = Telemetry()
    elif telemetry:
        tel = telemetry
    else:
        tel = None
    if tel is not None:
        tel.bind_clock(loop)
        if spans:
            tel.enable_spans()
    profiler = None
    if profile:
        from ..obs import SimProfiler

        profiler = SimProfiler()
        loop.profiler = profiler
    if uplink_traces is None:
        uplink_traces = generate_fleet_traces(duration=duration, seed=seed)
    emulator = MultipathEmulator(loop, uplink_traces, seed=seed, telemetry=tel)
    receiver = VideoReceiver(telemetry=tel)
    client, server = make_transport(
        transport, loop, emulator, receiver.on_app_packet, xnc_config,
        telemetry=tel, sanitize=sanitize,
    )
    if tel is not None:
        tel.start_sampling(loop, client.paths, emulator=emulator)
    injector = None
    if faults is not None:
        from ..faults.engine import FaultInjector

        injector = FaultInjector(loop, emulator, faults, seed=fault_seed, telemetry=tel)
        injector.arm()
    logger.debug("run_stream transport=%s duration=%.1fs seed=%d telemetry=%s faults=%d",  # lint: hot-ok(one setup-time line per run, not per packet; stdlib logging defers formatting)
                 transport, duration, seed, tel is not None,
                 len(faults) if faults is not None else 0)

    video_cfg = video or VideoConfig()
    source = VideoSource(loop, lambda payload, frame_id: client.send_app_packet(payload, frame_id), video_cfg,
                         telemetry=tel)
    source.start(first_delay=0.01)

    loop.run_until(duration)
    source.stop()
    loop.run_until(duration + drain_time)
    client.close()
    server.close()
    if state_guard.enabled:
        state_guard.verify(state_before)
    if tel is not None and tel.spans.enabled:
        tel.spans.finish(loop.now)
    if tel is not None:
        tel.stop_sampling()
        tel.observe_many("e2e.packet_delay", receiver.packet_delays)
        tel.record_stats("client", client.stats)
        if hasattr(server, "decoder"):
            tel.record_stats("decode", server.decoder.stats)
        for pid, s in emulator.uplink_stats().items():
            tel.record_stats("link.up.%d" % pid, s)
        for pid, s in emulator.downlink_stats().items():
            tel.record_stats("link.down.%d" % pid, s)

    frames = receiver.frame_records(total_frames=source.frames_emitted)
    qoe = analyze_qoe(frames, video_cfg.fps, duration=duration)
    statuses = [_frame_status(f) for f in frames]
    frame_loss = [
        (1.0 - f.received_fraction) if f.expected_packets else 1.0 for f in frames
    ]
    uplink_loss = {pid: s.loss_rate for pid, s in emulator.uplink_stats().items()}
    fault_summary = None
    if injector is not None:
        fault_summary = {
            "applied": injector.applied,
            "lifted": injector.lifted,
            "nat_flushes": injector.nat_flushes,
            "active_end": injector.active_count(),
            "health_transitions": getattr(getattr(client, "health", None),
                                          "transitions", 0),
            "final_health": [getattr(p, "health", "active")
                             for p in getattr(client, "paths", [])],
        }
    return StreamRunResult(
        transport=transport,
        qoe=qoe,
        packet_delays=receiver.packet_delays,
        redundancy_ratio=client.stats.redundancy_ratio,
        frames_sent=source.frames_emitted,
        packets_sent=source.packets_emitted,
        packets_received=receiver.packets_received,
        client_stats=client.stats,
        uplink_loss_rates=uplink_loss,
        duration=duration,
        frame_statuses=statuses,
        frame_loss_fractions=frame_loss,
        telemetry=tel,
        terminal_error=getattr(client, "terminal_error", None),
        fault_summary=fault_summary,
        profile=profiler.report() if profiler is not None else None,
    )


def run_single_link_stream(
    trace: LinkTrace,
    video: Optional[VideoConfig] = None,
    duration: float = 30.0,
    seed: int = 0,
) -> StreamRunResult:
    """Stream over one cellular link only (the §2.2 / Fig. 3 setup).

    Uses the plain-UDP bonding client pinned to the single path — i.e. the
    'today's single-carrier connectivity' baseline.
    """
    return run_stream("bonding", [trace], video=video, duration=duration, seed=seed)
