"""One harness per paper figure (§2.2 and §8).

Each ``fig*`` function runs the corresponding experiment at a configurable
scale and returns structured results; the ``benchmarks/`` tree wraps them
in pytest-benchmark targets and prints the same rows the paper reports.

Scale note: the paper's numbers come from 5000 km of driving and 100
traces per controlled experiment.  The defaults here are laptop-sized
(tens of simulated seconds, a handful of trace seeds); pass larger
``duration`` / ``seeds`` for tighter confidence intervals.  Shapes — who
wins, by roughly what factor — are stable at the default scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import SeriesSummary, cdf, reduction_pct, tail_percentiles
from ..emulation.cellular import generate_cellular_trace, generate_fleet_traces
from ..video.source import VideoConfig
from .runner import StreamRunResult, run_single_link_stream, run_stream

__all__ = [
    "fig3_single_link",
    "fig8_frame_timeline",
    "compare_transports",
    "fig9_road_test",
    "fig10a_delay_cdf",
    "fig10b_redundancy",
    "fig11_schedulers",
    "fig12_pluribus",
    "fig13a_qrlnc_ablation",
    "fig13b_loss_detection_ablation",
]

DEFAULT_DURATION = 15.0
DEFAULT_SEEDS = (0, 1, 2)


# ---------------------------------------------------------------------------
# Fig. 3 — single-link characterisation (§2.2)
# ---------------------------------------------------------------------------


@dataclass
class SingleLinkResult:
    """One (technology, bitrate) cell of Fig. 3."""

    label: str
    tech: str
    bitrate_mbps: float
    rf_times: np.ndarray
    rsrp_dbm: np.ndarray
    sinr_db: np.ndarray
    loss_rate: float
    delay_p50: float
    delay_p99: float
    delay_max: float
    qoe: object


def fig3_single_link(
    duration: float = DEFAULT_DURATION, seed: int = 0
) -> Dict[str, SingleLinkResult]:
    """Fig. 3: stream 10/30 Mbps over a single LTE or 5G link.

    Returns one entry per configuration (LTE-10, LTE-30, 5G-10, 5G-30) with
    the RF series (3a), loss (3b), delay (3c), and QoE (3d).
    """
    out: Dict[str, SingleLinkResult] = {}
    for tech in ("LTE", "5G"):
        cell = generate_cellular_trace(tech=tech, carrier=0, duration=duration, seed=seed)
        link = cell.to_link_trace()
        times, rsrp, sinr = cell.rf_per_second()
        for bitrate in (10.0, 30.0):
            label = "%s-%d" % (tech, int(bitrate))
            result = run_single_link_stream(
                link,
                video=VideoConfig(bitrate_mbps=bitrate, seed=seed + 1),
                duration=duration,
                seed=seed,
            )
            delays = np.array(result.packet_delays) if result.packet_delays else np.array([duration])
            out[label] = SingleLinkResult(
                label=label,
                tech=tech,
                bitrate_mbps=bitrate,
                rf_times=times,
                rsrp_dbm=rsrp,
                sinr_db=sinr,
                loss_rate=1.0 - result.delivery_ratio,
                delay_p50=float(np.percentile(delays, 50)),
                delay_p99=float(np.percentile(delays, 99)),
                delay_max=float(delays.max()),
                qoe=result.qoe,
            )
    return out


# ---------------------------------------------------------------------------
# Fig. 8 — received-frame timeline sample
# ---------------------------------------------------------------------------


@dataclass
class FrameTimeline:
    """Per-frame status stream for one transport (Fig. 8's film strip)."""

    transport: str
    statuses: List[str]  # "normal" / "corrupt" / "missing" per frame
    stall_ratio: float

    @property
    def lost_frames(self) -> int:
        return sum(1 for s in self.statuses if s == "missing")

    @property
    def blocky_frames(self) -> int:
        return sum(1 for s in self.statuses if s == "corrupt")


def fig8_frame_timeline(
    duration: float = DEFAULT_DURATION, seed: int = 1
) -> Dict[str, FrameTimeline]:
    """Fig. 8: aligned frame-status traces, MPQUIC vs CellFusion."""
    out: Dict[str, FrameTimeline] = {}
    traces = generate_fleet_traces(duration=duration, seed=seed)
    for transport in ("mpquic", "cellfusion"):
        result = run_stream(transport, uplink_traces=traces, duration=duration, seed=seed)
        out[transport] = FrameTimeline(transport, result.frame_statuses, result.qoe.stall_ratio)
    return out


# ---------------------------------------------------------------------------
# Fig. 9 — end-to-end road-test QoE
# ---------------------------------------------------------------------------


@dataclass
class ComparisonResult:
    """QoE summary across seeds for a set of transports."""

    transports: List[str]
    stall: Dict[str, SeriesSummary]
    fps: Dict[str, SeriesSummary]
    ssim: Dict[str, SeriesSummary]
    redundancy: Dict[str, SeriesSummary]
    runs: Dict[str, List[StreamRunResult]] = field(default_factory=dict)

    def stall_reduction_vs(self, ours: str, baseline: str) -> float:
        return reduction_pct(self.stall[baseline].mean, self.stall[ours].mean)


def compare_transports(
    transports: Sequence[str],
    duration: float = DEFAULT_DURATION,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    bitrate_mbps: float = 30.0,
) -> ComparisonResult:
    """Run each transport over the same traces (fair comparison, §8.1.2)."""
    runs: Dict[str, List[StreamRunResult]] = {t: [] for t in transports}
    for seed in seeds:
        traces = generate_fleet_traces(duration=duration, seed=seed)
        for t in transports:
            runs[t].append(
                run_stream(
                    t,
                    uplink_traces=traces,
                    video=VideoConfig(bitrate_mbps=bitrate_mbps, seed=seed + 1),
                    duration=duration,
                    seed=seed,
                )
            )
    return ComparisonResult(
        transports=list(transports),
        stall={t: SeriesSummary.of([r.qoe.stall_ratio for r in rs]) for t, rs in runs.items()},
        fps={t: SeriesSummary.of([r.qoe.avg_fps for r in rs]) for t, rs in runs.items()},
        ssim={t: SeriesSummary.of([r.qoe.ssim for r in rs]) for t, rs in runs.items()},
        redundancy={t: SeriesSummary.of([r.redundancy_ratio for r in rs]) for t, rs in runs.items()},
        runs=runs,
    )


def fig9_road_test(
    duration: float = DEFAULT_DURATION, seeds: Sequence[int] = DEFAULT_SEEDS
) -> ComparisonResult:
    """Fig. 9: MPQUIC vs MPTCP vs BONDING vs CellFusion."""
    return compare_transports(["mpquic", "mptcp", "bonding", "cellfusion"], duration, seeds)


# ---------------------------------------------------------------------------
# Fig. 10(a) — deployment packet-delay CDF
# ---------------------------------------------------------------------------


@dataclass
class DelayCdfResult:
    """CDFs and tail percentiles of video packet delay (Fig. 10a)."""

    delays: Dict[str, List[float]]
    percentiles: Dict[str, Dict[str, float]]

    def reduction_vs(self, baseline: str, ours: str = "cellfusion") -> Dict[str, float]:
        return {
            k: reduction_pct(self.percentiles[baseline][k], self.percentiles[ours][k])
            for k in self.percentiles[ours]
        }


def fig10a_delay_cdf(
    duration: float = DEFAULT_DURATION, seeds: Sequence[int] = DEFAULT_SEEDS
) -> DelayCdfResult:
    """Fig. 10(a): CellFusion vs LTE-only vs 5G-only packet delays."""
    delays: Dict[str, List[float]] = {"cellfusion": [], "5G-only": [], "LTE-only": []}
    for seed in seeds:
        traces = generate_fleet_traces(duration=duration, seed=seed)
        r = run_stream("cellfusion", uplink_traces=traces, duration=duration, seed=seed)
        delays["cellfusion"].extend(r.packet_delays)
        for label, trace in (("5G-only", traces[0]), ("LTE-only", traces[2])):
            r = run_single_link_stream(trace, duration=duration, seed=seed)
            delays[label].extend(r.packet_delays)
    percentiles = {
        k: tail_percentiles(v) if v else {} for k, v in delays.items()
    }
    return DelayCdfResult(delays, percentiles)


# ---------------------------------------------------------------------------
# Fig. 10(b) — daily traffic redundancy
# ---------------------------------------------------------------------------


def fig10b_redundancy(
    days: int = 10, duration: float = 10.0, base_seed: int = 100
) -> List[Tuple[int, float]]:
    """Fig. 10(b): daily redundancy cost of a deployed vehicle.

    Each "day" is a run under a different seed (the vehicle drives a
    different route through different network conditions).  The paper's
    trace varies between 1 % and 9 %.
    """
    out = []
    for day in range(days):
        r = run_stream("cellfusion", duration=duration, seed=base_seed + day * 13)
        out.append((day, r.redundancy_ratio))
    return out


# ---------------------------------------------------------------------------
# Fig. 11 / Fig. 12 — controlled benchmarks
# ---------------------------------------------------------------------------


def fig11_schedulers(
    duration: float = DEFAULT_DURATION, seeds: Sequence[int] = DEFAULT_SEEDS
) -> ComparisonResult:
    """Fig. 11: XNC vs minRTT / RE / XLINK / ECF."""
    return compare_transports(["minRTT", "RE", "XLINK", "ECF", "cellfusion"], duration, seeds)


def fig12_pluribus(
    duration: float = DEFAULT_DURATION, seeds: Sequence[int] = DEFAULT_SEEDS
) -> ComparisonResult:
    """Fig. 12: XNC vs Pluribus."""
    return compare_transports(["pluribus", "cellfusion"], duration, seeds)


# ---------------------------------------------------------------------------
# Fig. 13 — ablations
# ---------------------------------------------------------------------------


@dataclass
class AblationResult:
    """Residual-loss and delay comparisons for the Fig. 13 ablations."""

    metric_a: Dict[str, List[float]]
    summary: Dict[str, Dict[str, float]]


def fig13a_qrlnc_ablation(
    duration: float = DEFAULT_DURATION, seeds: Sequence[int] = DEFAULT_SEEDS
) -> AblationResult:
    """Fig. 13(a): residual loss with vs without Q-RLNC.

    The ablation arm retransmits original packets instead of coded ones
    (same budget, no rateless protection), so the loss of a retransmission
    is unrecoverable within the shot.
    """
    losses: Dict[str, List[float]] = {"Q-RLNC": [], "w/o Q-RLNC": []}
    for seed in seeds:
        traces = generate_fleet_traces(duration=duration, seed=seed)
        with_rlnc = run_stream("cellfusion", uplink_traces=traces, duration=duration, seed=seed)
        without = run_stream("xnc-no-rlnc", uplink_traces=traces, duration=duration, seed=seed)
        # per-frame residual loss pooled across seeds: the CDF of Fig. 13(a)
        losses["Q-RLNC"].extend(with_rlnc.frame_loss_fractions)
        losses["w/o Q-RLNC"].extend(without.frame_loss_fractions)
    summary = {}
    for k, v in losses.items():
        arr = np.array(v)
        summary[k] = {
            "mean": float(arr.mean()),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()),
        }
    return AblationResult(losses, summary)


def fig13b_loss_detection_ablation(
    duration: float = DEFAULT_DURATION, seeds: Sequence[int] = DEFAULT_SEEDS
) -> Dict[str, Dict[str, float]]:
    """Fig. 13(b): packet-delay percentiles, QoE-aware vs PTO-only.

    Returns percentiles for both arms plus the per-percentile reduction.
    """
    delays: Dict[str, List[float]] = {"qoe-aware": [], "pto-only": []}
    for seed in seeds:
        traces = generate_fleet_traces(duration=duration, seed=seed)
        a = run_stream("cellfusion", uplink_traces=traces, duration=duration, seed=seed)
        b = run_stream("xnc-pto-only", uplink_traces=traces, duration=duration, seed=seed)
        # censored delays: a packet that never arrives is charged the 1 s
        # deadline it missed — otherwise the slower detector "wins" by
        # silently expiring its worst packets
        delays["qoe-aware"].extend(a.censored_packet_delays())
        delays["pto-only"].extend(b.censored_packet_delays())
    pcts = {}
    for arm, values in delays.items():
        arr = np.array(values)
        pcts[arm] = {
            "p25": float(np.percentile(arr, 25)),
            "p50": float(np.percentile(arr, 50)),
            "p75": float(np.percentile(arr, 75)),
            "p90": float(np.percentile(arr, 90)),
            "p99": float(np.percentile(arr, 99)),
        }
    pcts["reduction_pct"] = {
        k: reduction_pct(pcts["pto-only"][k], pcts["qoe-aware"][k]) for k in pcts["qoe-aware"]
    }
    return pcts
