"""Fleet-deployment simulation (§8.2's statistical setting).

The paper's deployment numbers come from 100 vehicles running daily for
six months against 50 PoPs.  :func:`simulate_deployment` reproduces that
setting at configurable scale: each vehicle-day is one streaming session
over fresh traces (a different route), vehicles authenticate and get
orchestrated onto PoPs, the autoscaler reacts to load, and the aggregate
telemetry — packet-delay percentiles and daily redundancy — is exactly
what §8.2 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.stats import tail_percentiles
from ..cloud.autoscaler import ProxyAutoscaler
from ..cloud.controller import Controller
from ..cloud.pop import PopNode, default_pop_grid
from ..cpe.box import CpeBox
from ..video.source import VideoConfig
from .runner import run_stream

__all__ = [
    "simulate_deployment",
]


@dataclass
class VehicleDayRecord:
    """Telemetry of one vehicle-day."""

    vehicle: str
    day: int
    pop_id: str
    redundancy: float
    stall_ratio: float
    delay_p99: float


@dataclass
class DeploymentReport:
    """Aggregated §8.2-style statistics."""

    records: List[VehicleDayRecord]
    delay_percentiles: Dict[str, float]
    daily_redundancy: List[float]
    scaling_actions: int
    failovers: int

    @property
    def vehicle_days(self) -> int:
        return len(self.records)

    def mean_redundancy(self) -> float:
        return float(np.mean([r.redundancy for r in self.records])) if self.records else 0.0


def simulate_deployment(
    vehicles: int = 5,
    days: int = 3,
    session_seconds: float = 8.0,
    bitrate_mbps: float = 20.0,
    base_seed: int = 500,
    pops: Optional[Sequence[PopNode]] = None,
) -> DeploymentReport:
    """Run a miniature fleet deployment and aggregate its telemetry.

    Scaled down from the paper's 100 vehicles x ~180 days, but the same
    structure: provisioning, orchestration, per-day sessions on fresh
    routes, autoscaling on load.
    """
    controller = Controller()
    pop_list = list(pops) if pops is not None else default_pop_grid()
    for pop in pop_list:
        controller.register_pop(pop)
        controller.heartbeat(pop.pop_id, 0, now=0.0)
    autoscaler = ProxyAutoscaler()

    boxes: List[CpeBox] = []
    for v in range(vehicles):
        cpe = CpeBox("fleet-%03d" % v, modems=[])
        cpe.provision(controller)
        cpe.vehicle_location = ((v * 53) % 800, (v * 29) % 120)
        cpe.connect(controller)
        boxes.append(cpe)

    all_delays: List[float] = []
    records: List[VehicleDayRecord] = []
    daily_redundancy: List[float] = []
    for day in range(days):
        day_redundancies = []
        for v, cpe in enumerate(boxes):
            seed = base_seed + day * 101 + v * 7
            result = run_stream(
                "cellfusion",
                duration=session_seconds,
                seed=seed,
                video=VideoConfig(bitrate_mbps=bitrate_mbps, seed=seed + 1),
            )
            delays = result.packet_delays or [session_seconds]
            records.append(
                VehicleDayRecord(
                    vehicle=cpe.device_id,
                    day=day,
                    pop_id=cpe.connected_pop or "?",
                    redundancy=result.redundancy_ratio,
                    stall_ratio=result.qoe.stall_ratio,
                    delay_p99=float(np.percentile(delays, 99)),
                )
            )
            all_delays.extend(delays)
            day_redundancies.append(result.redundancy_ratio)
        daily_redundancy.append(float(np.mean(day_redundancies)))
        autoscaler.evaluate_fleet(pop_list, now=float(day) * 86400.0)

    return DeploymentReport(
        records=records,
        delay_percentiles=tail_percentiles(all_delays) if all_delays else {},
        daily_redundancy=daily_redundancy,
        scaling_actions=len(autoscaler.decisions),
        failovers=controller.failovers,
    )
