"""Experiment harness: one call per paper figure."""

from .runner import (
    StreamRunResult,
    TRANSPORT_NAMES,
    build_paths,
    make_transport,
    run_single_link_stream,
    run_stream,
)

__all__ = [
    "StreamRunResult",
    "TRANSPORT_NAMES",
    "build_paths",
    "make_transport",
    "run_single_link_stream",
    "run_stream",
]
