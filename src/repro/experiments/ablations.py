"""Design-knob ablations beyond the paper's Fig. 13 (DESIGN.md §5).

Each sweep isolates one XNC design choice and measures its effect on the
QoE/redundancy trade-off over a fixed set of traces:

* ``sweep_extra_packets`` — k in n' = n + k (paper: 3, Theorem 4.1);
* ``sweep_rho`` — the per-path spread bound (paper: 1 < rho < 1.2);
* ``sweep_spread_mode`` — proportional-capped vs exact vs single-path vs
  flood one-shot spreading;
* ``sweep_expiry`` — t_expire (paper: 700 ms);
* ``sweep_range_size`` — r, the packets-per-range cap (paper: 10);
* ``sweep_app_threshold`` — the QoE loss-detection threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.endpoint import XncConfig
from ..core.loss_detection import QoeLossPolicy
from ..core.ranges import RangePolicy
from ..core.recovery import RecoveryPolicy
from ..emulation.cellular import generate_fleet_traces
from .runner import run_stream

__all__ = [
    "HARSH_SEEDS",
    "ROW_HEADERS",
    "sweep_extra_packets",
    "sweep_rho",
    "sweep_spread_mode",
    "sweep_expiry",
    "sweep_range_size",
    "sweep_app_threshold",
]

#: Default ablation seeds: chosen so the traces include real outages and
#: loss bursts (benign drives make every knob look identical).
HARSH_SEEDS = (0, 7, 8)


@dataclass
class AblationPoint:
    """One configuration's outcome, averaged over the trace seeds."""

    label: str
    stall_ratio: float
    residual_loss: float
    redundancy: float
    delay_p99: float

    def as_row(self) -> list:
        return [
            self.label,
            "%.2f" % (self.stall_ratio * 100),
            "%.3f" % (self.residual_loss * 100),
            "%.2f" % (self.redundancy * 100),
            "%.0f" % (self.delay_p99 * 1000),
        ]


ROW_HEADERS = ["config", "stall %", "residual loss %", "redundancy %", "delay P99 ms"]


def _evaluate(
    label: str,
    config: XncConfig,
    duration: float,
    seeds: Sequence[int],
) -> AblationPoint:
    stalls, losses, redundancies, delays = [], [], [], []
    for seed in seeds:
        traces = generate_fleet_traces(duration=duration, seed=seed)
        # fresh config per run: endpoints keep per-run state out of it, but
        # dataclasses are mutable and the runner may adjust copies
        cfg = XncConfig(
            loss_policy=config.loss_policy,
            range_policy=config.range_policy,
            recovery_policy=config.recovery_policy,
            simd=config.simd,
            seed=config.seed,
            coding_enabled=config.coding_enabled,
        )
        r = run_stream("cellfusion", uplink_traces=traces, duration=duration, seed=seed, xnc_config=cfg)
        stalls.append(r.qoe.stall_ratio)
        losses.append(1.0 - r.delivery_ratio)
        redundancies.append(r.redundancy_ratio)
        delays.append(float(np.percentile(r.censored_packet_delays(), 99)))
    return AblationPoint(
        label,
        float(np.mean(stalls)),
        float(np.mean(losses)),
        float(np.mean(redundancies)),
        float(np.mean(delays)),
    )


def sweep_extra_packets(
    values: Sequence[int] = (0, 1, 3, 6),
    duration: float = 10.0,
    seeds: Sequence[int] = HARSH_SEEDS,
) -> List[AblationPoint]:
    """k = 0 risks undecodable ranges; large k wastes bandwidth."""
    return [
        _evaluate(
            "k=%d" % k,
            XncConfig(recovery_policy=RecoveryPolicy(extra_packets=k)),
            duration,
            seeds,
        )
        for k in values
    ]


def sweep_rho(
    values: Sequence[float] = (1.01, 1.1, 1.19),
    duration: float = 10.0,
    seeds: Sequence[int] = HARSH_SEEDS,
) -> List[AblationPoint]:
    return [
        _evaluate(
            "rho=%.2f" % rho,
            XncConfig(recovery_policy=RecoveryPolicy(rho=rho)),
            duration,
            seeds,
        )
        for rho in values
    ]


def sweep_spread_mode(
    modes: Sequence[str] = ("proportional_capped", "exact", "single_path", "flood"),
    duration: float = 10.0,
    seeds: Sequence[int] = HARSH_SEEDS,
) -> List[AblationPoint]:
    """Spreading across paths vs dumping the shot on one path vs flooding."""
    return [
        _evaluate(
            mode,
            XncConfig(recovery_policy=RecoveryPolicy(spread_mode=mode)),
            duration,
            seeds,
        )
        for mode in modes
    ]


def sweep_expiry(
    values: Sequence[float] = (0.2, 0.7, 2.0),
    duration: float = 10.0,
    seeds: Sequence[int] = HARSH_SEEDS,
) -> List[AblationPoint]:
    """Short expiry abandons recoverable video; long expiry wastes
    bandwidth on stale frames."""
    return [
        _evaluate(
            "t_expire=%.1fs" % t,
            XncConfig(range_policy=RangePolicy(t_expire=t)),
            duration,
            seeds,
        )
        for t in values
    ]


def sweep_range_size(
    values: Sequence[int] = (2, 10, 40),
    duration: float = 10.0,
    seeds: Sequence[int] = HARSH_SEEDS,
) -> List[AblationPoint]:
    """r bounds coding delay and matrix size (§4.4.2)."""
    return [
        _evaluate(
            "r=%d" % r,
            XncConfig(range_policy=RangePolicy(max_packets=r)),
            duration,
            seeds,
        )
        for r in values
    ]


def sweep_app_threshold(
    values: Sequence[Optional[float]] = (0.06, 0.12, 0.3, None),
    duration: float = 10.0,
    seeds: Sequence[int] = HARSH_SEEDS,
) -> List[AblationPoint]:
    """Aggressive thresholds recover earlier but fire spuriously; None is
    PTO-only (the Fig. 13(b) arm)."""
    return [
        _evaluate(
            "thresh=%s" % ("PTO-only" if v is None else "%dms" % int(v * 1000)),
            XncConfig(loss_policy=QoeLossPolicy(app_threshold=v)),
            duration,
            seeds,
        )
        for v in values
    ]
