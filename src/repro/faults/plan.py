"""Declarative fault plans: typed adversity on a schedule.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records —
*what* breaks, *where* (path/direction), *when*, and *how hard* — that the
:class:`repro.faults.engine.FaultInjector` compiles onto the event loop.
Plans are data: they serialise to a small JSON document
(``repro run --faults plan.json``), compose through
:class:`FaultPlanBuilder`, and :func:`random_plan` draws a seeded random
plan for chaos soaks, so one integer reproduces an entire adverse run.

The taxonomy covers what §2.2 measured on the road plus the middlebox
failures a vehicle-to-cloud tunnel meets in practice:

================  ==============================================================
kind              effect
================  ==============================================================
``blackout``      100 % loss on the selected links for ``duration``
``brownout``      random loss at ``severity`` for ``duration``
``burst_loss``    short uplink loss burst at ``severity`` (default 1.0)
``rtt_spike``     ``delay`` seconds added one-way for ``duration``
``bandwidth_cliff``  capacity scaled to ``scale`` (queue builds, delay inherits)
``reorder``       uniform extra delay in [0, ``jitter``] per packet
``duplicate``     each delivery duplicated with probability ``prob``
``ack_blackout``  downlink-only blackout (the ACK path dies)
``nat_rebind``    instantaneous: every registered SnatTable is flushed
``pop_handover``  ``duration`` all-path blackout + NAT flush (proxy switch)
================  ==============================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from typing import List, Optional

from ..determinism import seeded_rng

__all__ = [
    "FAULT_KINDS",
    "DESTRUCTIVE_KINDS",
    "FaultPlanError",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanBuilder",
    "random_plan",
]

FAULT_KINDS = (
    "blackout",
    "brownout",
    "burst_loss",
    "rtt_spike",
    "bandwidth_cliff",
    "reorder",
    "duplicate",
    "ack_blackout",
    "nat_rebind",
    "pop_handover",
)

#: Kinds that fire once rather than spanning a window.
INSTANT_KINDS = ("nat_rebind",)

_DIRECTIONS = ("up", "down", "both")

#: Plan JSON schema version (docs/robustness.md documents v1).
PLAN_VERSION = 1


class FaultPlanError(ValueError):
    """Malformed fault plan or event."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``path_id`` -1 targets every path; ``direction`` selects the uplink,
    downlink, or both (ignored by kinds with a fixed surface, e.g.
    ``ack_blackout`` is always downlink).  Unused knobs stay at their
    defaults and are omitted from JSON.
    """

    kind: str
    start: float
    duration: float = 0.0
    path_id: int = -1
    direction: str = "both"
    severity: float = 1.0   #: loss probability (brownout/burst_loss)
    delay: float = 0.0      #: extra one-way delay in seconds (rtt_spike)
    scale: float = 1.0      #: capacity fraction kept (bandwidth_cliff)
    jitter: float = 0.0     #: reorder window in seconds (reorder)
    prob: float = 0.0       #: duplication probability (duplicate)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError("unknown fault kind %r (choose from %s)"
                                 % (self.kind, ", ".join(FAULT_KINDS)))
        if self.start < 0.0:
            raise FaultPlanError("%s: start must be >= 0" % self.kind)
        if self.kind in INSTANT_KINDS:
            if self.duration != 0.0:
                raise FaultPlanError("%s is instantaneous; duration must be 0" % self.kind)
        elif self.duration <= 0.0:
            raise FaultPlanError("%s: duration must be positive" % self.kind)
        if self.direction not in _DIRECTIONS:
            raise FaultPlanError("direction must be up, down, or both")
        if self.path_id < -1:
            raise FaultPlanError("path_id must be >= 0, or -1 for all paths")
        if not 0.0 <= self.severity <= 1.0:
            raise FaultPlanError("severity must lie in [0, 1]")
        if not 0.0 <= self.scale <= 1.0:
            raise FaultPlanError("scale must lie in [0, 1]")
        if self.delay < 0.0 or self.jitter < 0.0:
            raise FaultPlanError("delay/jitter must be >= 0")
        if not 0.0 <= self.prob <= 1.0:
            raise FaultPlanError("prob must lie in [0, 1]")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> dict:
        """JSON form with default-valued knobs omitted."""
        d = asdict(self)
        defaults = {"duration": 0.0, "path_id": -1, "direction": "both",
                    "severity": 1.0, "delay": 0.0, "scale": 1.0,
                    "jitter": 0.0, "prob": 0.0}
        return {k: v for k, v in d.items()
                if k in ("kind", "start") or defaults.get(k) != v}


@dataclass
class FaultPlan:
    """An ordered, validated schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self):
        self.events = sorted(self.events, key=lambda e: (e.start, e.kind, e.path_id))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Time by which every scheduled fault has ended."""
        return max((e.end for e in self.events), default=0.0)

    def validate(self, path_count: Optional[int] = None) -> None:
        """Re-check every event; with ``path_count``, also the targets."""
        for e in self.events:
            FaultEvent(**asdict(e))  # re-runs __post_init__ validation
            if path_count is not None and e.path_id >= path_count:
                raise FaultPlanError(
                    "%s at t=%g targets path %d but the emulator has %d paths"
                    % (e.kind, e.start, e.path_id, path_count))

    # -- JSON ------------------------------------------------------------

    def to_json(self) -> str:
        doc = {"version": PLAN_VERSION,
               "events": [e.as_dict() for e in self.events]}
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError("plan is not valid JSON: %s" % exc)
        if not isinstance(doc, dict) or "events" not in doc:
            raise FaultPlanError("plan JSON needs an object with an 'events' list")
        if doc.get("version", PLAN_VERSION) != PLAN_VERSION:
            raise FaultPlanError("unsupported plan version %r" % doc.get("version"))
        events = []
        for i, raw in enumerate(doc["events"]):
            if not isinstance(raw, dict):
                raise FaultPlanError("event %d is not an object" % i)
            unknown = set(raw) - {f for f in FaultEvent.__dataclass_fields__}
            if unknown:
                raise FaultPlanError("event %d has unknown fields %s"
                                     % (i, ", ".join(sorted(unknown))))
            try:
                events.append(FaultEvent(**raw))
            except TypeError as exc:
                raise FaultPlanError("event %d: %s" % (i, exc))
        return cls(events)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class FaultPlanBuilder:
    """Small fluent API for composing plans in code.

    >>> plan = (FaultPlanBuilder()
    ...         .blackout(2.0, 1.5, path_id=0)
    ...         .rtt_spike(4.0, 2.0, delay=0.4)
    ...         .nat_rebind(6.0)
    ...         .build())
    """

    def __init__(self):
        self._events: List[FaultEvent] = []

    def add(self, event: FaultEvent) -> "FaultPlanBuilder":
        self._events.append(event)
        return self

    def blackout(self, start: float, duration: float, path_id: int = -1,
                 direction: str = "both") -> "FaultPlanBuilder":
        return self.add(FaultEvent("blackout", start, duration,
                                   path_id=path_id, direction=direction))

    def brownout(self, start: float, duration: float, severity: float,
                 path_id: int = -1, direction: str = "both") -> "FaultPlanBuilder":
        return self.add(FaultEvent("brownout", start, duration, path_id=path_id,
                                   direction=direction, severity=severity))

    def burst_loss(self, start: float, duration: float, severity: float = 1.0,
                   path_id: int = -1) -> "FaultPlanBuilder":
        return self.add(FaultEvent("burst_loss", start, duration, path_id=path_id,
                                   direction="up", severity=severity))

    def rtt_spike(self, start: float, duration: float, delay: float,
                  path_id: int = -1, direction: str = "both") -> "FaultPlanBuilder":
        return self.add(FaultEvent("rtt_spike", start, duration, path_id=path_id,
                                   direction=direction, delay=delay))

    def bandwidth_cliff(self, start: float, duration: float, scale: float,
                        path_id: int = -1, direction: str = "up") -> "FaultPlanBuilder":
        return self.add(FaultEvent("bandwidth_cliff", start, duration,
                                   path_id=path_id, direction=direction, scale=scale))

    def reorder(self, start: float, duration: float, jitter: float,
                path_id: int = -1, direction: str = "up") -> "FaultPlanBuilder":
        return self.add(FaultEvent("reorder", start, duration, path_id=path_id,
                                   direction=direction, jitter=jitter))

    def duplicate(self, start: float, duration: float, prob: float,
                  path_id: int = -1, direction: str = "up") -> "FaultPlanBuilder":
        return self.add(FaultEvent("duplicate", start, duration, path_id=path_id,
                                   direction=direction, prob=prob))

    def ack_blackout(self, start: float, duration: float,
                     path_id: int = -1) -> "FaultPlanBuilder":
        return self.add(FaultEvent("ack_blackout", start, duration,
                                   path_id=path_id, direction="down"))

    def nat_rebind(self, at: float) -> "FaultPlanBuilder":
        return self.add(FaultEvent("nat_rebind", at))

    def pop_handover(self, at: float, outage: float = 0.3) -> "FaultPlanBuilder":
        return self.add(FaultEvent("pop_handover", at, outage))

    def build(self) -> FaultPlan:
        return FaultPlan(list(self._events))


#: Kinds that destroy capacity on the targeted path (spared-path set).
DESTRUCTIVE_KINDS = ("blackout", "ack_blackout", "bandwidth_cliff", "burst_loss")


def random_plan(
    seed: int,
    duration: float,
    path_count: int = 4,
    events_per_10s: float = 6.0,
    spare_path: bool = True,
    weights: Optional[dict] = None,
) -> FaultPlan:
    """A seeded random fault plan for chaos soaks.

    Draws a Poisson-ish mix of every windowed fault kind plus occasional
    NAT rebinds and PoP handovers over ``[0.5, duration)``.  With
    ``spare_path`` (default), the highest-numbered path never receives a
    capacity-destroying fault (blackout / ack_blackout / bandwidth_cliff
    / burst_loss), so the tunnel always retains *some* surviving capacity
    and "delivers what the surviving capacity admits" is a meaningful
    assertion; set it False for total-loss torture runs.

    ``weights`` switches to weighted drawing: a ``{kind: mass}`` dict
    over any subset of :data:`FAULT_KINDS` — including the middlebox
    kinds ``nat_rebind`` / ``pop_handover``, which the default mix only
    appends as a fixed tail — so campaigns can steer coverage toward
    any fault family.  The default (``weights=None``) keeps the legacy
    draw sequence byte for byte: regression-pinned soak digests depend
    on it.
    """
    if duration <= 1.0:
        raise FaultPlanError("chaos plans need at least 1 s of run time")
    if path_count < 1:
        raise FaultPlanError("path_count must be >= 1")
    rng = seeded_rng(seed, "fault-plan")
    b = FaultPlanBuilder()
    n_events = max(1, int(events_per_10s * duration / 10.0))
    destructive = DESTRUCTIVE_KINDS
    if weights is not None:
        return _weighted_plan(rng, b, n_events, duration, path_count,
                              spare_path, weights)
    kinds = ("blackout", "brownout", "burst_loss", "rtt_spike",
             "bandwidth_cliff", "reorder", "duplicate", "ack_blackout")
    for _ in range(n_events):
        kind = rng.choice(kinds)
        limit = path_count - 1 if (spare_path and path_count > 1
                                   and kind in destructive) else path_count
        pid = rng.randrange(limit)
        start = 0.5 + rng.random() * max(0.1, duration - 1.5)
        span = min(0.3 + rng.random() * 2.5, max(0.2, duration - start))
        if kind == "blackout":
            b.blackout(start, span, path_id=pid)
        elif kind == "brownout":
            b.brownout(start, span, severity=0.1 + 0.6 * rng.random(), path_id=pid)
        elif kind == "burst_loss":
            b.burst_loss(start, min(span, 0.8), severity=1.0, path_id=pid)
        elif kind == "rtt_spike":
            b.rtt_spike(start, span, delay=0.05 + 0.5 * rng.random(), path_id=pid)
        elif kind == "bandwidth_cliff":
            b.bandwidth_cliff(start, span, scale=0.05 + 0.3 * rng.random(), path_id=pid)
        elif kind == "reorder":
            b.reorder(start, span, jitter=0.02 + 0.1 * rng.random(), path_id=pid)
        elif kind == "duplicate":
            b.duplicate(start, span, prob=0.1 + 0.4 * rng.random(), path_id=pid)
        else:
            b.ack_blackout(start, min(span, 1.0), path_id=pid)
    # middlebox events: one NAT rebind always, a PoP handover on longer runs
    b.nat_rebind(0.5 + rng.random() * (duration - 1.0))
    if duration >= 8.0:
        b.pop_handover(0.5 + rng.random() * (duration - 1.0),
                       outage=0.1 + 0.3 * rng.random())
    return b.build()


def _weighted_plan(
    rng,
    b: FaultPlanBuilder,
    n_events: int,
    duration: float,
    path_count: int,
    spare_path: bool,
    weights: dict,
) -> FaultPlan:
    """Weighted-draw body of :func:`random_plan` (``weights`` mode).

    Every one of the 10 :data:`FAULT_KINDS` is reachable; generated
    events always satisfy :meth:`FaultPlan.validate` for ``path_count``.
    """
    unknown = set(weights) - set(FAULT_KINDS)
    if unknown:
        raise FaultPlanError("unknown fault kinds in weights: %s"
                             % ", ".join(sorted(unknown)))
    if any(w < 0 for w in weights.values()):
        raise FaultPlanError("fault weights must be >= 0")
    kinds = tuple(k for k in FAULT_KINDS if weights.get(k, 0.0) > 0.0)
    if not kinds:
        raise FaultPlanError("weights must give at least one kind positive mass")
    mass = tuple(float(weights[k]) for k in kinds)
    for _ in range(n_events):
        kind = rng.choices(kinds, weights=mass, k=1)[0]
        start = 0.5 + rng.random() * max(0.1, duration - 1.5)
        if kind == "nat_rebind":
            b.nat_rebind(start)
            continue
        if kind == "pop_handover":
            b.pop_handover(start, outage=0.1 + 0.3 * rng.random())
            continue
        limit = path_count - 1 if (spare_path and path_count > 1
                                   and kind in DESTRUCTIVE_KINDS) else path_count
        pid = rng.randrange(limit)
        span = min(0.3 + rng.random() * 2.5, max(0.2, duration - start))
        if kind == "blackout":
            b.blackout(start, span, path_id=pid)
        elif kind == "brownout":
            b.brownout(start, span, severity=0.1 + 0.6 * rng.random(), path_id=pid)
        elif kind == "burst_loss":
            b.burst_loss(start, min(span, 0.8), severity=1.0, path_id=pid)
        elif kind == "rtt_spike":
            b.rtt_spike(start, span, delay=0.05 + 0.5 * rng.random(), path_id=pid)
        elif kind == "bandwidth_cliff":
            b.bandwidth_cliff(start, span, scale=0.05 + 0.3 * rng.random(), path_id=pid)
        elif kind == "reorder":
            b.reorder(start, span, jitter=0.02 + 0.1 * rng.random(), path_id=pid)
        elif kind == "duplicate":
            b.duplicate(start, span, prob=0.1 + 0.4 * rng.random(), path_id=pid)
        else:
            b.ack_blackout(start, min(span, 1.0), path_id=pid)
    return b.build()
