"""Chaos-soak harness: a seeded random fault plan against a full tunnel.

One call — :func:`run_chaos_soak` — builds the standard 4-path testbed,
draws :func:`~repro.faults.plan.random_plan` for the seed, arms the
injector, streams video through the adversity, and returns a
:class:`SoakReport` with the three guarantees a robustness suite asserts:

* **delivery**: the tunnel kept delivering what surviving capacity admits
  (the random plan spares one path by default);
* **bounded state**: every fault window was lifted (the link overlay
  drained back to ``fault is None``) and sent-packet maps were GC'd;
* **determinism**: :attr:`SoakReport.digest` hashes the run's observable
  outcome — the same ``seed`` must reproduce it byte for byte.

``tools/chaos_soak.py`` runs this from the command line and CI stage 5
runs one short seeded soak as a smoke test.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional

from .plan import FaultPlan, random_plan

__all__ = [
    "SoakError",
    "SoakReport",
    "run_chaos_soak",
]


class SoakError(AssertionError):
    """A chaos-soak guarantee (delivery / bounded state) was violated."""


@dataclass
class SoakReport:
    """Everything one chaos-soak run exposes for assertions."""

    seed: int
    transport: str
    duration: float
    plan_events: int
    packets_sent: int
    packets_received: int
    delivery_ratio: float
    faults_applied: int
    faults_lifted: int
    nat_flushes: int
    overlay_drained: bool
    health_transitions: int
    probe_packets: int
    watchdog_closes: int
    terminal_error: Optional[str]
    #: Health states of every path at the end of the run, path-id order.
    final_health: List[str] = field(default_factory=list)
    #: sha256 over the run's observable outcome (rerun must match).
    digest: str = ""
    #: Whether the runtime protocol sanitizer was armed for the run.
    sanitizer_armed: bool = False
    #: Sanitizer check / violation deltas over the run (decode-integrity
    #: oracle input; a completed sanitized run implies zero violations).
    sanitizer_checks: int = 0
    sanitizer_violations: int = 0
    #: Delivered-packet delay samples (seconds); digested rounded, kept
    #: raw here so differential runs can render CDFs without re-running.
    packet_delays: List[float] = field(default_factory=list)
    #: The plan the soak ran under (oracle input; not part of the digest
    #: payload beyond its event list, which already participates).
    plan: Optional[FaultPlan] = None
    #: The run's :class:`~repro.obs.Telemetry` when requested, else None.
    telemetry: Optional[object] = None

    def assert_healthy(self, min_delivery: float = 0.2) -> None:
        """Raise :class:`SoakError` unless the soak guarantees held."""
        if self.terminal_error is not None:
            raise SoakError("tunnel hit terminal error: %s" % self.terminal_error)
        if self.packets_sent == 0:
            raise SoakError("source emitted nothing — harness misconfigured")
        if self.delivery_ratio < min_delivery:
            raise SoakError(
                "delivery ratio %.3f under the %.3f floor despite a spared path"
                % (self.delivery_ratio, min_delivery))
        if not self.overlay_drained:
            raise SoakError("fault overlay still active after the horizon")
        if self.faults_lifted > self.faults_applied:
            raise SoakError("lifted more fault windows than were applied")


def _digest(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


def run_chaos_soak(
    seed: int,
    duration: float = 8.0,
    transport: str = "cellfusion",
    path_count: int = 4,
    plan: Optional[FaultPlan] = None,
    telemetry: bool = False,
    sanitize=None,
) -> SoakReport:
    """Run one seeded chaos soak end to end and summarise it.

    ``plan`` defaults to :func:`random_plan` for the seed (sparing the
    highest path so the delivery assertion is meaningful); pass an
    explicit plan to soak a hand-written scenario instead.
    """
    from ..emulation.cellular import generate_fleet_traces
    from ..experiments.runner import run_stream
    from ..sanitizer import totals

    if plan is None:
        plan = random_plan(seed, duration, path_count=path_count)
    traces = list(generate_fleet_traces(duration=duration, seed=seed))[:path_count]
    san_before = totals()
    result = run_stream(
        transport,
        traces,
        duration=duration,
        seed=seed,
        faults=plan,
        fault_seed=seed,
        telemetry=telemetry,
        sanitize=sanitize,
    )
    faults = result.fault_summary or {}
    stats = result.client_stats
    san_after = totals()
    if sanitize is None:
        from ..sanitizer import env_enabled

        armed = env_enabled()
    else:
        armed = bool(getattr(sanitize, "enabled", sanitize))
    report = SoakReport(
        seed=seed,
        transport=transport,
        duration=duration,
        plan_events=len(plan),
        packets_sent=result.packets_sent,
        packets_received=result.packets_received,
        delivery_ratio=result.delivery_ratio,
        faults_applied=faults.get("applied", 0),
        faults_lifted=faults.get("lifted", 0),
        nat_flushes=faults.get("nat_flushes", 0),
        overlay_drained=faults.get("active_end", 0) == 0,
        health_transitions=faults.get("health_transitions", 0),
        probe_packets=getattr(stats, "probe_packets", 0),
        watchdog_closes=getattr(stats, "watchdog_closes", 0),
        terminal_error=result.terminal_error,
        final_health=faults.get("final_health", []),
        sanitizer_armed=armed,
        sanitizer_checks=san_after["checks"] - san_before["checks"],
        sanitizer_violations=san_after["violations"] - san_before["violations"],
        packet_delays=list(result.packet_delays),
        plan=plan,
        telemetry=result.telemetry,
    )
    report.digest = _digest({
        "seed": seed,
        "transport": transport,
        "plan": [e.as_dict() for e in plan],
        "packets_sent": report.packets_sent,
        "packets_received": report.packets_received,
        "delays": [round(d, 9) for d in result.packet_delays],
        "client_stats": stats.as_dict(),
        "uplink_loss": {str(k): round(v, 9) for k, v in result.uplink_loss_rates.items()},
        "faults": {k: v for k, v in faults.items()},
        "terminal_error": report.terminal_error,
    })
    return report
