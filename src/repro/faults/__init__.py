"""Deterministic fault injection for the emulated testbed.

``plan`` declares *what* goes wrong and when (typed events, JSON-loadable,
seeded random plans); ``engine`` compiles a plan onto the event loop and
maintains the per-link fault overlays and NAT flushes; ``soak`` runs a
whole tunnel under a seeded random plan and asserts the robustness
guarantees.  See docs/robustness.md for the taxonomy, the JSON schema,
and the path-health state machine the faults exercise.
"""

from .engine import FaultInjector
from .plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanBuilder,
    FaultPlanError,
    random_plan,
)
from .soak import SoakError, SoakReport, run_chaos_soak

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanBuilder",
    "FaultPlanError",
    "FaultInjector",
    "SoakError",
    "SoakReport",
    "random_plan",
    "run_chaos_soak",
]
