"""Compile a :class:`~repro.faults.plan.FaultPlan` onto the event loop.

The :class:`FaultInjector` owns every piece of mutable fault state so the
data plane stays clean: links expose one ``fault`` attribute (``None``
when healthy — see :class:`repro.emulation.link.LinkFaultState`), NAT
tables expose :meth:`~repro.cloud.nat.SnatTable.flush`, and the injector
schedules begin/end callbacks that maintain them.

Overlapping windows compose on each link through the usual independence
algebra — loss ``1-∏(1-lᵢ)``, delay ``Σ``, bandwidth ``∏ scaleᵢ``,
reorder jitter ``max``, duplication ``1-∏(1-pᵢ)`` — recomputed whenever
an event begins or ends, so lifting one brownout under a blackout leaves
the blackout intact.

Fault randomness draws from per-link streams seeded by
``(fault_seed, "link", path_id, direction)``: arming a plan never
perturbs the trace-loss RNGs, and the same ``--fault-seed`` replays the
same adversity byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..determinism import seeded_rng
from ..emulation.emulator import MultipathEmulator
from ..emulation.events import EventLoop
from ..emulation.link import EmulatedLink, LinkFaultState
from .plan import FaultEvent, FaultPlan

__all__ = [
    "FaultInjector",
]


class _Effect:
    """One event's contribution to one link, alive while the window is."""

    __slots__ = ("loss", "delay", "bw_scale", "jitter", "dup")

    def __init__(self, loss=0.0, delay=0.0, bw_scale=1.0, jitter=0.0, dup=0.0):
        self.loss = loss
        self.delay = delay
        self.bw_scale = bw_scale
        self.jitter = jitter
        self.dup = dup


def _effect_for(event: FaultEvent) -> Optional[_Effect]:
    """The link-level effect of one event; None for pure middlebox kinds."""
    k = event.kind
    if k in ("blackout", "ack_blackout", "pop_handover"):
        return _Effect(loss=1.0)
    if k in ("brownout", "burst_loss"):
        return _Effect(loss=event.severity)
    if k == "rtt_spike":
        return _Effect(delay=event.delay)
    if k == "bandwidth_cliff":
        return _Effect(bw_scale=event.scale)
    if k == "reorder":
        return _Effect(jitter=event.jitter)
    if k == "duplicate":
        return _Effect(dup=event.prob)
    return None  # nat_rebind


class FaultInjector:
    """Applies a fault plan to a :class:`MultipathEmulator` (and NATs).

    Build it after the emulator, :meth:`register_nat` any SNAT tables
    that should die on ``nat_rebind``/``pop_handover``, then :meth:`arm`
    before running the loop.  Counters (``applied``/``lifted``/
    ``nat_flushes``) and :meth:`active_count` let soak harnesses assert
    the overlay drains back to nothing.
    """

    def __init__(
        self,
        loop: EventLoop,
        emulator: MultipathEmulator,
        plan: FaultPlan,
        seed: int = 0,
        telemetry=None,
    ):
        if telemetry is None:
            from ..obs import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.loop = loop
        self.emulator = emulator
        self.plan = plan
        self.seed = seed
        self.telemetry = telemetry
        self.applied = 0
        self.lifted = 0
        self.nat_flushes = 0
        self._armed = False
        self._nats: List[object] = []
        self._active: Dict[EmulatedLink, List[_Effect]] = {}
        self._states: Dict[EmulatedLink, LinkFaultState] = {}
        # the live _Effect of each in-window event, keyed by event identity
        # (begin and end receive the same FaultEvent instance from arm())
        self._event_effects: Dict[int, _Effect] = {}
        # open causal fault span per in-window event, same key
        self._event_spans: Dict[int, int] = {}
        plan.validate(path_count=emulator.path_count)

    def register_nat(self, table) -> None:
        """NAT tables flushed by ``nat_rebind``/``pop_handover`` events."""
        self._nats.append(table)

    def arm(self) -> None:
        """Schedule every plan event's begin (and end) on the loop."""
        if self._armed:
            raise RuntimeError("fault injector is already armed")
        self._armed = True
        for event in self.plan:
            self.loop.schedule(event.start, self._begin, event)
            if event.duration > 0.0:
                self.loop.schedule(event.end, self._end, event)

    def active_count(self) -> int:
        """Currently-applied windowed effects across all links."""
        return sum(len(v) for v in self._active.values())

    # -- internals -------------------------------------------------------

    def _links_for(self, event: FaultEvent) -> List[EmulatedLink]:
        if event.kind == "ack_blackout":
            return self.emulator.links_for(event.path_id, "down")
        if event.kind == "pop_handover":
            return self.emulator.links_for(-1, "both")
        return self.emulator.links_for(event.path_id, event.direction)

    def _state_for(self, link: EmulatedLink) -> LinkFaultState:
        state = self._states.get(link)
        if state is None:
            rng = seeded_rng(self.seed, "link", link.path_id, link.direction)
            state = LinkFaultState(rng)
            self._states[link] = state
        return state

    def _recompute(self, link: EmulatedLink) -> None:
        effects = self._active.get(link)
        if not effects:
            link.fault = None
            return
        state = self._state_for(link)
        keep_loss = 1.0
        keep_dup = 1.0
        delay = 0.0
        bw = 1.0
        jitter = 0.0
        for e in effects:
            keep_loss *= 1.0 - e.loss
            keep_dup *= 1.0 - e.dup
            delay += e.delay
            bw *= e.bw_scale
            if e.jitter > jitter:
                jitter = e.jitter
        state.loss_prob = 1.0 - keep_loss
        state.dup_prob = 1.0 - keep_dup
        state.extra_delay = delay
        state.bw_scale = bw
        state.reorder_jitter = jitter
        link.fault = state

    def _flush_nats(self) -> int:
        n = 0
        for table in self._nats:
            n += table.flush()
        self.nat_flushes += 1
        return n

    def _emit(self, event: FaultEvent, phase: str, **extra) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.event(self.loop.now, "fault", path_id=event.path_id,
                      fault=event.kind, phase=phase, direction=event.direction,
                      **extra)
            tel.count("fault.%s.%s" % (event.kind, phase))

    def _begin(self, event: FaultEvent) -> None:
        self.applied += 1
        if event.kind in ("nat_rebind", "pop_handover"):
            dropped = self._flush_nats()
            self._emit(event, "begin", nat_mappings_dropped=dropped)
        else:
            self._emit(event, "begin")
        tel = self.telemetry
        if tel.enabled:
            sp = tel.spans
            if sp.enabled:
                attrs = {"fault": event.kind, "direction": event.direction}
                if event.path_id >= 0:
                    attrs["path"] = event.path_id
                if event.duration > 0.0:
                    self._event_spans[id(event)] = sp.open(
                        "fault", self.loop.now, **attrs)
                else:
                    sp.instant("fault", self.loop.now, **attrs)
        effect = _effect_for(event)
        if effect is None:
            return
        self._event_effects[id(event)] = effect
        for link in self._links_for(event):
            self._active.setdefault(link, []).append(effect)
            self._recompute(link)

    def _end(self, event: FaultEvent) -> None:
        self.lifted += 1
        touched = 0
        effect = self._event_effects.pop(id(event), None)
        if effect is not None:
            for link in self._links_for(event):
                effects = self._active.get(link)
                if effects is None:
                    continue
                effects[:] = [e for e in effects if e is not effect]
                if not effects:
                    del self._active[link]
                self._recompute(link)
                touched += 1
        self._emit(event, "end", links=touched)
        sid = self._event_spans.pop(id(event), 0)
        if sid:
            self.telemetry.spans.close(sid, self.loop.now, lifted=True)
