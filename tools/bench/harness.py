"""Trial runner for the microbenchmark subsystem.

Every benchmark is a *deterministic* workload — seeded inputs, sim-clock
event patterns, fixed iteration counts — timed with the wall clock.  The
harness removes the two classic sources of flakiness:

* **warmup trials** absorb import costs, allocator warm-up, and branch
  predictor training before anything is recorded;
* **repeated measured trials** are summarised by their *median* (robust
  to one slow trial from a scheduler hiccup) with the stddev reported
  alongside so a noisy environment is visible in the artifact.

A benchmark callable receives a :class:`Workload` scale ("smoke" or
"full") and returns ``(units_done, unit)`` — e.g. ``(1_000_000, "bytes")``
— while the harness times it.  Throughput = units_done / elapsed.

Schema v2 adds one allocation metric per benchmark: ``allocs_per_op``,
the *net* live-block growth across one complete workload invocation,
normalised per unit.  It is measured on a dedicated **untimed** rep after
warmup — ``sys.getallocatedblocks()`` before/after with the cyclic GC
parked — so the timed trials stay undisturbed (no tracemalloc, no GC
pauses injected into the measurement window).  Net growth is a retention
gauge: transient per-iteration churn that the allocator reclaims
immediately is the static analyzer's job (``repro lint --perf``); what
the bench gates is memory the workload *keeps* per unit of work.
"""

from __future__ import annotations

import gc
import math
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = [
    "Workload",
    "TrialStats",
    "BenchResult",
    "Benchmark",
    "measure_allocs_per_op",
    "run_benchmark",
]

#: Measured trials per benchmark at full scale (median is reported).
DEFAULT_TRIALS = 5
#: Warmup (discarded) trials at full scale.
DEFAULT_WARMUP = 2


@dataclass(frozen=True)
class Workload:
    """Scale knobs handed to each benchmark body."""

    #: "smoke" (tiny, CI-budget) or "full" (the trajectory numbers).
    mode: str = "full"
    #: Multiplier the bodies apply to their iteration counts.
    scale: float = 1.0

    def __post_init__(self):
        if self.mode not in ("full", "smoke"):
            raise ValueError("mode must be 'full' or 'smoke', got %r" % self.mode)
        if not (self.scale > 0):
            raise ValueError("scale must be positive, got %r" % self.scale)

    @property
    def smoke(self) -> bool:
        return self.mode == "smoke"


@dataclass
class TrialStats:
    """Throughput summary over the measured trials."""

    values: List[float]

    @property
    def median(self) -> float:
        return statistics.median(self.values)

    @property
    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def rel_stddev(self) -> float:
        m = self.median
        return self.stddev / m if m else 0.0


@dataclass
class BenchResult:
    """One benchmark's outcome, JSON-ready."""

    name: str
    family: str
    unit: str
    value: float
    stddev: float
    trials: List[float]
    #: Net retained allocator blocks per unit of work (schema v2).
    allocs_per_op: Optional[float] = None
    #: Pre-optimization value merged in via ``--baseline`` (None until then).
    baseline_value: Optional[float] = None
    baseline_stddev: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        if not self.baseline_value:
            return None
        return self.value / self.baseline_value

    def as_dict(self) -> dict:
        d = {
            "name": self.name,
            "family": self.family,
            "unit": self.unit,
            "value": self.value,
            "stddev": self.stddev,
            "trials": list(self.trials),
        }
        if self.allocs_per_op is not None:
            d["allocs_per_op"] = self.allocs_per_op
        if self.baseline_value is not None:
            d["baseline"] = {
                "value": self.baseline_value,
                "stddev": self.baseline_stddev or 0.0,
            }
            d["speedup"] = self.speedup
        return d


@dataclass
class Benchmark:
    """A registered benchmark: name, family, unit, and the workload body.

    ``body(workload)`` must perform the complete workload once and return
    the number of abstract units processed (events, bytes, packets,
    sim-seconds...).  The body is re-invoked per trial; it must be
    side-effect free between invocations (fresh loop/encoder per call).
    """

    name: str
    family: str
    unit: str
    body: Callable[[Workload], float]
    #: Trial-count overrides (smoke mode always uses 1 warmup / 2 trials).
    trials: int = DEFAULT_TRIALS
    warmup: int = DEFAULT_WARMUP


def measure_allocs_per_op(body: Callable[[Workload], float],
                          workload: Workload) -> float:
    """Net live-block growth of one workload invocation, per unit.

    Runs the body once *untimed* with the cyclic GC disabled (so cycle
    collection doesn't race the block count) after a full collection (so
    pre-existing garbage isn't charged to the body).  The result is
    clamped at zero: a body that *frees* more than it retains (e.g. by
    shrinking an interned-object cache) reports 0, not a negative budget.
    """
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        before = sys.getallocatedblocks()
        units = body(workload)
        after = sys.getallocatedblocks()
    finally:
        if gc_was_enabled:
            gc.enable()
    if not units or units <= 0:
        return 0.0
    return max(0, after - before) / units


def run_benchmark(bench: Benchmark, workload: Workload) -> BenchResult:
    """Run warmup + measured trials; return the median-throughput result."""
    warmup = 1 if workload.smoke else bench.warmup
    trials = 2 if workload.smoke else bench.trials
    for _ in range(warmup):
        bench.body(workload)
    # allocation rep: after warmup (module/class caches are primed) and
    # before the timed trials so it can never perturb the clock readings
    allocs_per_op = measure_allocs_per_op(bench.body, workload)
    throughputs: List[float] = []
    for _ in range(trials):
        t0 = time.perf_counter()
        units = bench.body(workload)
        elapsed = time.perf_counter() - t0
        if elapsed <= 0 or not math.isfinite(elapsed):
            elapsed = 1e-9
        throughputs.append(units / elapsed)
    stats = TrialStats(throughputs)
    return BenchResult(
        name=bench.name,
        family=bench.family,
        unit=bench.unit,
        value=stats.median,
        stddev=stats.stddev,
        trials=throughputs,
        allocs_per_op=allocs_per_op,
    )
