"""repro-bench: the zero-flakiness microbenchmark subsystem.

Run it as ``python -m tools.bench`` from the repo root (with
``PYTHONPATH=src``), or via the ``repro bench`` CLI subcommand.  It
measures the four hot-path families (events, gf, wire, tunnel) with
deterministic seeded workloads, warmup, and median-of-trials reporting,
and emits a schema-versioned JSON artifact (``BENCH_PR8.json`` at the
repo root is the current committed trajectory point; the v1-era
``BENCH_PR4.json`` stays readable as a baseline).

Regression gating::

    repro bench --compare old.json --max-regression 10

runs the suite and exits non-zero if any benchmark's throughput dropped
more than 10 % versus ``old.json`` **or** its ``allocs_per_op``
allocation budget grew beyond ``--max-alloc-regression`` (plus a
half-block absolute slack).  ``--no-time-gate`` keeps only the
allocation gate — for CI smoke runs compared against a committed
full-mode artifact, where wall-clock numbers aren't comparable but
per-unit allocation budgets are.  ``--input FILE`` substitutes an
existing results file for the fresh run (offline comparison), and
``--validate FILE`` only schema-checks an artifact.  See
``docs/performance.md`` for the full recipe.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import List, Optional

from .harness import BenchResult, Benchmark, Workload, run_benchmark
from .schema import (
    REQUIRED_FAMILIES,
    SCHEMA_VERSION,
    compare_documents,
    merge_baseline,
    validate_document,
)
from .suites import WORKLOAD_SEED, all_benchmarks, families

__all__ = [
    "BenchResult",
    "Benchmark",
    "Workload",
    "run_benchmark",
    "all_benchmarks",
    "families",
    "run_suite",
    "build_document",
    "SCHEMA_VERSION",
    "REQUIRED_FAMILIES",
    "compare_documents",
    "merge_baseline",
    "validate_document",
    "main",
]


def _matches(bench: Benchmark, targets: List[str]) -> bool:
    if not targets:
        return True
    return any(t == bench.family or t == bench.name or bench.name.startswith(t + ".")
               for t in targets)


def run_suite(workload: Workload, targets: Optional[List[str]] = None,
              echo=None) -> List[BenchResult]:
    """Run every (matching) benchmark; returns results in registry order."""
    results: List[BenchResult] = []
    for bench in all_benchmarks():
        if not _matches(bench, targets or []):
            continue
        if echo:
            echo("  %-24s running..." % bench.name)
        result = run_benchmark(bench, workload)
        if echo:
            echo("  %-24s %12.4g %-10s (±%.1f%%, %d trials, %.3g allocs/op)"
                 % (result.name, result.value, result.unit,
                    100.0 * (result.stddev / result.value if result.value else 0.0),
                    len(result.trials),
                    result.allocs_per_op if result.allocs_per_op is not None else 0.0))
        results.append(result)
    return results


def build_document(results: List[BenchResult], mode: str) -> dict:
    """Assemble the current-schema-version artifact for a set of results."""
    return {
        "schema_version": SCHEMA_VERSION,
        "meta": {
            "tool": "repro bench",
            "mode": mode,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": _numpy_version(),
            "workload_seed": WORKLOAD_SEED,
        },
        "benchmarks": [r.as_dict() for r in results],
    }


def _numpy_version() -> str:
    try:
        import numpy

        return numpy.__version__
    except Exception:
        return "unavailable"


def main(argv=None) -> int:
    """CLI entry point shared by ``python -m tools.bench`` and ``repro bench``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="deterministic hot-path microbenchmarks with regression gating")
    parser.add_argument("targets", nargs="*",
                        help="benchmark families or names to run (default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads + 2 trials (CI budget, <60 s)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale multiplier (default 1.0)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the results JSON artifact to FILE")
    parser.add_argument("--baseline", metavar="FILE",
                        help="merge FILE's values into the output as "
                             "per-benchmark before/after baselines")
    parser.add_argument("--compare", metavar="FILE",
                        help="compare results against FILE and gate on "
                             "--max-regression")
    parser.add_argument("--max-regression", type=float, default=10.0,
                        metavar="PCT",
                        help="allowed per-benchmark slowdown in percent "
                             "(default 10)")
    parser.add_argument("--max-alloc-regression", type=float, default=10.0,
                        metavar="PCT",
                        help="allowed allocs_per_op growth in percent, "
                             "plus a 0.5 block/op absolute slack "
                             "(default 10)")
    parser.add_argument("--no-time-gate", action="store_true",
                        help="with --compare, gate only on allocs_per_op "
                             "(smoke-vs-full comparisons where wall-clock "
                             "isn't comparable)")
    parser.add_argument("--input", metavar="FILE",
                        help="use an existing results JSON instead of "
                             "running benchmarks (offline compare/merge)")
    parser.add_argument("--validate", metavar="FILE",
                        help="schema-validate FILE and exit")
    parser.add_argument("--list", action="store_true", dest="list_benchmarks",
                        help="list the benchmark registry and exit")
    args = parser.parse_args(argv)

    if args.list_benchmarks:
        for b in all_benchmarks():
            print("%-24s %-8s %s" % (b.name, b.family, b.unit))
        return 0

    if args.validate:
        with open(args.validate) as f:
            doc = json.load(f)
        problems = validate_document(doc)
        if problems:
            for p in problems:
                print("schema: %s" % p, file=sys.stderr)
            return 1
        print("%s: valid (schema_version %s, %d benchmarks)"
              % (args.validate, doc.get("schema_version"),
                 len(doc["benchmarks"])))
        return 0

    if args.input:
        with open(args.input) as f:
            doc = json.load(f)
        problems = validate_document(doc, require_families=False)
        if problems:
            for p in problems:
                print("schema (%s): %s" % (args.input, p), file=sys.stderr)
            return 1
    else:
        mode = "smoke" if args.smoke else "full"
        workload = Workload(mode=mode, scale=args.scale)
        print("repro bench: %s workload (scale %.2g)" % (mode, args.scale))
        results = run_suite(workload, args.targets, echo=print)
        if not results:
            print("no benchmarks matched %r" % (args.targets,), file=sys.stderr)
            return 2
        doc = build_document(results, mode)

    if args.baseline:
        with open(args.baseline) as f:
            baseline_doc = json.load(f)
        n = merge_baseline(doc, baseline_doc)
        print("merged %d baseline values from %s" % (n, args.baseline))

    exit_code = 0
    if args.compare:
        with open(args.compare) as f:
            old_doc = json.load(f)
        regressions, notes = compare_documents(
            old_doc, doc, args.max_regression,
            max_alloc_regression_pct=args.max_alloc_regression,
            time_gate=not args.no_time_gate)
        for note in notes:
            print("compare: %s" % note)
        for reg in regressions:
            print("REGRESSION %s" % reg, file=sys.stderr)
        if regressions:
            print("repro bench: %d regression(s) beyond the %.1f%% budget"
                  % (len(regressions), args.max_regression), file=sys.stderr)
            exit_code = 1
        else:
            print("compare: no regressions beyond the %.1f%% budget"
                  % args.max_regression)

    if args.out:
        # full runs must carry all four families before they become a
        # trajectory point; partial runs can still be written for iteration
        problems = validate_document(
            doc, require_families=not (args.targets or args.input))
        if problems:
            for p in problems:
                print("schema: %s" % p, file=sys.stderr)
            return 1
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=False)
            f.write("\n")
        print("wrote %s (%d benchmarks)" % (args.out, len(doc["benchmarks"])))

    return exit_code
