"""BENCH_*.json document schema, validation, and regression comparison.

The artifact is schema-versioned so the trajectory stays machine-readable
across PRs.  Version 2 layout::

    {
      "schema_version": 2,
      "meta": {
        "tool": "repro bench",
        "mode": "full" | "smoke",
        "python": "3.11.7",
        "platform": "Linux-...",
        "numpy": "2.4.6",
        "workload_seed": 1234
      },
      "benchmarks": [
        {
          "name": "tunnel.fig10a_4path",
          "family": "tunnel",
          "unit": "app_MB/s",
          "value": 12.3,              # median trial throughput
          "stddev": 0.4,
          "trials": [12.1, 12.3, 12.5],
          "allocs_per_op": 0.08,      # v2: net retained blocks per unit
          "baseline": {"value": 7.9, "stddev": 0.3},   # optional: pre-opt
          "speedup": 1.56                              # optional, with baseline
        }, ...
      ]
    }

Version 1 documents (no ``allocs_per_op``; ``BENCH_PR4.json`` is one)
remain valid inputs everywhere a document is read — ``--input``,
``--baseline``, ``--compare``, ``--validate`` — so old trajectory points
never have to be regenerated.  Only *newly written* artifacts carry the
current version.

Throughput units — bigger is better — gate as
``(old - new) / old * 100 > max_regression_pct``.  Allocation budgets —
smaller is better — gate as ``new > old + max(old * pct / 100, 0.5)``;
the half-block absolute slack keeps near-zero budgets from tripping on
one stray interned object.  A benchmark pair where either side lacks
``allocs_per_op`` (a v1 artifact) is reported as *not gated* rather than
failed: schema migration must not manufacture regressions.

Validation is hand-rolled (no jsonschema dependency in the image); it
returns a list of human-readable problems, empty when the document
conforms.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "ACCEPTED_VERSIONS",
    "ALLOC_ABS_SLACK",
    "REQUIRED_FAMILIES",
    "validate_document",
    "compare_documents",
    "merge_baseline",
]

#: Version stamped on newly built documents.
SCHEMA_VERSION = 2

#: Versions accepted when *reading* a document (v1 = pre-allocation era).
ACCEPTED_VERSIONS = (1, 2)

#: The four hot-path families every trajectory point must cover.
REQUIRED_FAMILIES = ("events", "gf", "tunnel", "wire")

_META_REQUIRED = ("tool", "mode", "python", "platform")
_BENCH_REQUIRED = ("name", "family", "unit", "value", "stddev", "trials")


def _is_num(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate_document(doc, require_families: bool = True) -> List[str]:
    """Check ``doc`` against the schema; returns problems found.

    Accepts every version in :data:`ACCEPTED_VERSIONS`.  Version 2 adds a
    required numeric ``allocs_per_op`` per benchmark; version 1 documents
    are checked against the version-1 shape (no allocation field).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    version = doc.get("schema_version")
    if version not in ACCEPTED_VERSIONS:
        problems.append(
            "schema_version must be one of %s (got %r)"
            % (list(ACCEPTED_VERSIONS), version)
        )
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        problems.append("meta must be an object")
    else:
        for key in _META_REQUIRED:
            if not isinstance(meta.get(key), str):
                problems.append("meta.%s must be a string" % key)
        if meta.get("mode") not in ("full", "smoke", None):
            problems.append("meta.mode must be 'full' or 'smoke'")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        problems.append("benchmarks must be a non-empty array")
        return problems
    seen_names = set()
    for i, b in enumerate(benches):
        where = "benchmarks[%d]" % i
        if not isinstance(b, dict):
            problems.append("%s must be an object" % where)
            continue
        for key in _BENCH_REQUIRED:
            if key not in b:
                problems.append("%s missing key %r" % (where, key))
        name = b.get("name")
        if isinstance(name, str):
            if name in seen_names:
                problems.append("%s duplicate name %r" % (where, name))
            seen_names.add(name)
        for key in ("value", "stddev"):
            if key in b and not _is_num(b[key]):
                problems.append("%s.%s must be a number" % (where, key))
        if "value" in b and _is_num(b["value"]) and b["value"] <= 0:
            problems.append("%s.value must be positive" % where)
        if version == 2:
            allocs = b.get("allocs_per_op")
            if allocs is None:
                problems.append("%s missing key 'allocs_per_op' "
                                "(required at schema_version 2)" % where)
            elif not _is_num(allocs) or allocs < 0:
                problems.append(
                    "%s.allocs_per_op must be a non-negative number" % where)
        elif "allocs_per_op" in b:
            problems.append(
                "%s.allocs_per_op requires schema_version 2" % where)
        trials = b.get("trials")
        if trials is not None and (
            not isinstance(trials, list) or not all(_is_num(t) for t in trials)
        ):
            problems.append("%s.trials must be an array of numbers" % where)
        baseline = b.get("baseline")
        if baseline is not None:
            if not isinstance(baseline, dict) or not _is_num(baseline.get("value", None)):
                problems.append("%s.baseline must be {value, stddev}" % where)
    if require_families:
        got = {b.get("family") for b in benches if isinstance(b, dict)}
        for fam in REQUIRED_FAMILIES:
            if fam not in got:
                problems.append("missing benchmark family %r" % fam)
    return problems


#: Absolute slack in the allocation gate: budgets within half a block per
#: op of the old value never trip, whatever the percentage says.
ALLOC_ABS_SLACK = 0.5


def compare_documents(
    old: dict, new: dict, max_regression_pct: float,
    max_alloc_regression_pct: float = 10.0,
    time_gate: bool = True,
) -> Tuple[List[str], List[str]]:
    """Compare two documents benchmark-by-benchmark.

    Returns ``(regressions, notes)``: ``regressions`` lists benchmarks
    whose throughput dropped more than ``max_regression_pct`` percent
    versus ``old``, or whose ``allocs_per_op`` grew beyond
    ``max_alloc_regression_pct`` plus the half-block absolute slack
    (non-empty means the gate fails); ``notes`` describes everything
    else (improvements, new/missing benchmarks, ungated pairs).

    ``time_gate=False`` demotes throughput regressions to notes — for CI
    smoke runs compared against a committed full-mode artifact, where the
    workloads differ so wall-clock deltas are meaningless but allocation
    budgets (normalised per unit) still compare.  Benchmark pairs where
    either side lacks ``allocs_per_op`` (v1 artifacts) are noted as
    *not gated* rather than failed.
    """
    old_by_name: Dict[str, dict] = {
        b["name"]: b for b in old.get("benchmarks", []) if isinstance(b, dict)
    }
    regressions: List[str] = []
    notes: List[str] = []
    for b in new.get("benchmarks", []):
        name = b.get("name")
        prev = old_by_name.pop(name, None)
        if prev is None:
            notes.append("%s: new benchmark (no old value)" % name)
            continue
        old_v, new_v = prev.get("value", 0.0), b.get("value", 0.0)
        if not old_v:
            notes.append("%s: old value is zero; skipped" % name)
            continue
        delta_pct = (old_v - new_v) / old_v * 100.0
        if delta_pct > max_regression_pct and time_gate:
            regressions.append(
                "%s: %.4g -> %.4g %s (-%.1f%% > %.1f%% budget)"
                % (name, old_v, new_v, b.get("unit", ""), delta_pct,
                   max_regression_pct)
            )
        else:
            notes.append(
                "%s: %.4g -> %.4g %s (%+.1f%%)%s"
                % (name, old_v, new_v, b.get("unit", ""), -delta_pct,
                   " [time not gated]" if not time_gate else "")
            )
        old_a, new_a = prev.get("allocs_per_op"), b.get("allocs_per_op")
        if not (_is_num(old_a) and _is_num(new_a)):
            notes.append(
                "%s: allocs_per_op not gated (missing on %s side; v1 artifact?)"
                % (name,
                   "both" if not (_is_num(old_a) or _is_num(new_a))
                   else ("old" if not _is_num(old_a) else "new"))
            )
            continue
        budget = old_a + max(old_a * max_alloc_regression_pct / 100.0,
                             ALLOC_ABS_SLACK)
        if new_a > budget:
            regressions.append(
                "%s: allocs_per_op %.3g -> %.3g (> budget %.3g: "
                "+%.1f%% with %.2g abs slack)"
                % (name, old_a, new_a, budget, max_alloc_regression_pct,
                   ALLOC_ABS_SLACK)
            )
        else:
            notes.append(
                "%s: allocs_per_op %.3g -> %.3g (within budget %.3g)"
                % (name, old_a, new_a, budget)
            )
    for name in sorted(old_by_name):
        notes.append("%s: present in old run only" % name)
    return regressions, notes


def merge_baseline(doc: dict, baseline_doc: dict) -> int:
    """Fold ``baseline_doc`` values into ``doc`` as per-benchmark baselines.

    Matches benchmarks by name; returns how many were annotated.  Used to
    record before/after pairs in one artifact: run the bench on the old
    code, optimize, re-run with ``--baseline old.json``.
    """
    base_by_name = {
        b["name"]: b for b in baseline_doc.get("benchmarks", [])
        if isinstance(b, dict) and "name" in b
    }
    annotated = 0
    for b in doc.get("benchmarks", []):
        prev = base_by_name.get(b.get("name"))
        if prev is None or not _is_num(prev.get("value", None)):
            continue
        b["baseline"] = {
            "value": prev["value"],
            "stddev": prev.get("stddev", 0.0),
        }
        if prev["value"]:
            b["speedup"] = b["value"] / prev["value"]
        annotated += 1
    return annotated
