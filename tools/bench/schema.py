"""BENCH_*.json document schema, validation, and regression comparison.

The artifact is schema-versioned so the trajectory stays machine-readable
across PRs.  Version 1 layout::

    {
      "schema_version": 1,
      "meta": {
        "tool": "repro bench",
        "mode": "full" | "smoke",
        "python": "3.11.7",
        "platform": "Linux-...",
        "numpy": "2.4.6",
        "workload_seed": 1234
      },
      "benchmarks": [
        {
          "name": "tunnel.fig10a_4path",
          "family": "tunnel",
          "unit": "app_MB/s",
          "value": 12.3,              # median trial throughput
          "stddev": 0.4,
          "trials": [12.1, 12.3, 12.5],
          "baseline": {"value": 7.9, "stddev": 0.3},   # optional: pre-opt
          "speedup": 1.56                              # optional, with baseline
        }, ...
      ]
    }

All units are throughputs — bigger is better — so regression checking is
uniform: ``(old - new) / old * 100 > max_regression_pct`` fails.

Validation is hand-rolled (no jsonschema dependency in the image); it
returns a list of human-readable problems, empty when the document
conforms.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "REQUIRED_FAMILIES",
    "validate_document",
    "compare_documents",
    "merge_baseline",
]

SCHEMA_VERSION = 1

#: The four hot-path families every trajectory point must cover.
REQUIRED_FAMILIES = ("events", "gf", "tunnel", "wire")

_META_REQUIRED = ("tool", "mode", "python", "platform")
_BENCH_REQUIRED = ("name", "family", "unit", "value", "stddev", "trials")


def _is_num(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate_document(doc, require_families: bool = True) -> List[str]:
    """Check ``doc`` against schema version 1; returns problems found."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            "schema_version must be %d (got %r)"
            % (SCHEMA_VERSION, doc.get("schema_version"))
        )
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        problems.append("meta must be an object")
    else:
        for key in _META_REQUIRED:
            if not isinstance(meta.get(key), str):
                problems.append("meta.%s must be a string" % key)
        if meta.get("mode") not in ("full", "smoke", None):
            problems.append("meta.mode must be 'full' or 'smoke'")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        problems.append("benchmarks must be a non-empty array")
        return problems
    seen_names = set()
    for i, b in enumerate(benches):
        where = "benchmarks[%d]" % i
        if not isinstance(b, dict):
            problems.append("%s must be an object" % where)
            continue
        for key in _BENCH_REQUIRED:
            if key not in b:
                problems.append("%s missing key %r" % (where, key))
        name = b.get("name")
        if isinstance(name, str):
            if name in seen_names:
                problems.append("%s duplicate name %r" % (where, name))
            seen_names.add(name)
        for key in ("value", "stddev"):
            if key in b and not _is_num(b[key]):
                problems.append("%s.%s must be a number" % (where, key))
        if "value" in b and _is_num(b["value"]) and b["value"] <= 0:
            problems.append("%s.value must be positive" % where)
        trials = b.get("trials")
        if trials is not None and (
            not isinstance(trials, list) or not all(_is_num(t) for t in trials)
        ):
            problems.append("%s.trials must be an array of numbers" % where)
        baseline = b.get("baseline")
        if baseline is not None:
            if not isinstance(baseline, dict) or not _is_num(baseline.get("value", None)):
                problems.append("%s.baseline must be {value, stddev}" % where)
    if require_families:
        got = {b.get("family") for b in benches if isinstance(b, dict)}
        for fam in REQUIRED_FAMILIES:
            if fam not in got:
                problems.append("missing benchmark family %r" % fam)
    return problems


def compare_documents(
    old: dict, new: dict, max_regression_pct: float
) -> Tuple[List[str], List[str]]:
    """Compare two documents benchmark-by-benchmark.

    Returns ``(regressions, notes)``: ``regressions`` lists benchmarks
    whose throughput dropped more than ``max_regression_pct`` percent
    versus ``old`` (non-empty means the gate fails); ``notes`` describes
    everything else (improvements, new/missing benchmarks).
    """
    old_by_name: Dict[str, dict] = {
        b["name"]: b for b in old.get("benchmarks", []) if isinstance(b, dict)
    }
    regressions: List[str] = []
    notes: List[str] = []
    for b in new.get("benchmarks", []):
        name = b.get("name")
        prev = old_by_name.pop(name, None)
        if prev is None:
            notes.append("%s: new benchmark (no old value)" % name)
            continue
        old_v, new_v = prev.get("value", 0.0), b.get("value", 0.0)
        if not old_v:
            notes.append("%s: old value is zero; skipped" % name)
            continue
        delta_pct = (old_v - new_v) / old_v * 100.0
        if delta_pct > max_regression_pct:
            regressions.append(
                "%s: %.4g -> %.4g %s (-%.1f%% > %.1f%% budget)"
                % (name, old_v, new_v, b.get("unit", ""), delta_pct,
                   max_regression_pct)
            )
        else:
            notes.append(
                "%s: %.4g -> %.4g %s (%+.1f%%)"
                % (name, old_v, new_v, b.get("unit", ""), -delta_pct)
            )
    for name in sorted(old_by_name):
        notes.append("%s: present in old run only" % name)
    return regressions, notes


def merge_baseline(doc: dict, baseline_doc: dict) -> int:
    """Fold ``baseline_doc`` values into ``doc`` as per-benchmark baselines.

    Matches benchmarks by name; returns how many were annotated.  Used to
    record before/after pairs in one artifact: run the bench on the old
    code, optimize, re-run with ``--baseline old.json``.
    """
    base_by_name = {
        b["name"]: b for b in baseline_doc.get("benchmarks", [])
        if isinstance(b, dict) and "name" in b
    }
    annotated = 0
    for b in doc.get("benchmarks", []):
        prev = base_by_name.get(b.get("name"))
        if prev is None or not _is_num(prev.get("value", None)):
            continue
        b["baseline"] = {
            "value": prev["value"],
            "stddev": prev.get("stddev", 0.0),
        }
        if prev["value"]:
            b["speedup"] = b["value"] / prev["value"]
        annotated += 1
    return annotated
