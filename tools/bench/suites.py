"""The benchmark families: events, gf, wire, tunnel, fleet.

Four hot paths, one family each (§4.3.1/§5.2 motivate the GF(2^8) focus;
Fig. 14 reports CPU load as a first-class result), plus the fleet-scale
family (ROADMAP item 1):

* ``events``  — :class:`~repro.emulation.events.EventLoop` events/sec on
  a schedule/fire workload and on a cancellation-heavy churn workload
  (the pattern that used to leak cancelled heap entries);
* ``gf``      — GF(2^8) kernel and Q-RLNC encode/decode MB/s, large and
  sub-256-byte buffers (the two regimes the SIMD stand-in must cover);
* ``wire``    — byte-level QUIC serialize/parse packets/sec;
* ``tunnel``  — end-to-end application throughput of a fig10a-style
  4-path CellFusion session (delivered app MB per wall-second, the
  number the ≥1.5x regression gate watches);
* ``fleet``   — vehicles per core-second through the fleet runner:
  the full lite-mode pipeline (control plane + per-vehicle synthesis +
  lossless merge) at paper scale, the control plane alone at 1k
  vehicles, and the parent's aggregate-merge fold.  All run inline
  (``shards=1``) so the number is per-core and machine-comparable.

Workloads are pure functions of their seeds: same inputs every trial,
every machine, every run — the wall clock is the only nondeterminism,
and the harness's median-of-trials absorbs it.
"""

from __future__ import annotations

import numpy as np

from .harness import Benchmark, Workload

__all__ = [
    "all_benchmarks",
    "families",
]

#: Deterministic workload seed shared by every family.
WORKLOAD_SEED = 1234


def _scaled(workload: Workload, full: int, smoke: int) -> int:
    n = smoke if workload.smoke else full
    return max(1, int(n * workload.scale))


# -- events -----------------------------------------------------------------


def _bench_events_schedule_fire(workload: Workload) -> float:
    from repro.determinism import seeded_rng
    from repro.emulation.events import EventLoop

    n = _scaled(workload, 150_000, 15_000)
    rng = seeded_rng(WORKLOAD_SEED, "events")
    loop = EventLoop()
    # half the events are pre-scheduled at seeded times, half are chained
    # from callbacks (the pattern transports actually produce)
    chain_every = 4

    def on_fire(depth: int) -> None:
        if depth > 0:
            loop.call_later(0.001, on_fire, depth - 1)

    for i in range(n // 2):
        t = rng.random() * 10.0
        if i % chain_every == 0:
            loop.schedule(t, on_fire, 1)
        else:
            loop.schedule(t, on_fire, 0)
    loop.run()
    return float(loop.events_processed)


def _bench_events_cancel_churn(workload: Workload) -> float:
    from repro.determinism import seeded_rng
    from repro.emulation.events import EventLoop

    n = _scaled(workload, 120_000, 12_000)
    rng = seeded_rng(WORKLOAD_SEED, "churn")
    loop = EventLoop()
    # timer-rearm churn: schedule far-future timers and cancel ~87% of
    # them before they fire, exactly what restarted PeriodicTimers do
    handles = []
    ops = 0
    for i in range(n):
        h = loop.schedule(100.0 + rng.random(), lambda: None)
        handles.append(h)
        ops += 1
        if i % 8 != 7:
            handles[rng.randrange(len(handles))].cancel()
            ops += 1
    loop.run()
    return float(ops)


# -- gf ---------------------------------------------------------------------


def _bench_gf_addmul_large(workload: Workload) -> float:
    from repro.core.gf256 import gf_addmul_vec
    from repro.determinism import seeded_rng

    size = 1 << 20  # 1 MiB rows
    iters = _scaled(workload, 48, 6)
    rng = seeded_rng(WORKLOAD_SEED, "gf-large")
    data = np.frombuffer(
        bytes(rng.getrandbits(8) for _ in range(size)), dtype=np.uint8
    )
    acc = np.zeros(size, dtype=np.uint8)
    for i in range(iters):
        gf_addmul_vec(acc, data, (i * 37 + 3) % 255 + 1)
    return iters * size / 1e6  # MB


def _bench_gf_addmul_small(workload: Workload) -> float:
    from repro.core.gf256 import gf_addmul_vec
    from repro.determinism import seeded_rng

    size = 64  # sub-256-byte regime: coefficient vectors, short payloads
    iters = _scaled(workload, 120_000, 12_000)
    rng = seeded_rng(WORKLOAD_SEED, "gf-small")
    data = np.frombuffer(
        bytes(rng.getrandbits(8) for _ in range(size)), dtype=np.uint8
    )
    acc = np.zeros(size, dtype=np.uint8)
    for i in range(iters):
        gf_addmul_vec(acc, data, (i * 37 + 3) % 255 + 1)
    return iters * size / 1e6  # MB


def _bench_rlnc_roundtrip(workload: Workload) -> float:
    from repro.core.rlnc import RlncDecoder, RlncEncoder
    from repro.determinism import seeded_rng

    n, extra, payload_len = 10, 3, 1188  # one paper-default range
    rounds = _scaled(workload, 300, 30)
    rng = seeded_rng(WORKLOAD_SEED, "rlnc")
    payloads = [
        bytes(rng.getrandbits(8) for _ in range(payload_len)) for _ in range(n)
    ]
    total_bytes = 0
    for r in range(rounds):
        encoder = RlncEncoder()
        start = r * n
        for i, p in enumerate(payloads):
            encoder.register(start + i, p)
        decoder = RlncDecoder()
        for k in range(n + extra):
            seed = r * 1000 + k + 1
            coded = encoder.encode(start, n, seed)
            decoder.push(start, n, seed, coded)
            total_bytes += len(coded)
        if decoder.stats.ranges_completed < 1:
            raise AssertionError("rlnc roundtrip failed to decode")
    return total_bytes / 1e6  # MB


# -- wire -------------------------------------------------------------------


def _wire_corpus():
    """A deterministic mix of data and ACK packets (built once per trial)."""
    from repro.core.frames import XncNcFrame
    from repro.determinism import seeded_rng
    from repro.quic.packet import AckFrame, QuicPacket

    rng = seeded_rng(WORKLOAD_SEED, "wire")
    payload = bytes(rng.getrandbits(8) for _ in range(1188))
    packets = []
    for i in range(8):
        if i % 4 == 3:
            ack = AckFrame(
                path_id=i % 4,
                largest=1000 + i,
                ack_delay=0.001,
                ranges=((990 + i, 1000 + i), (970 + i, 980 + i), (950 + i, 960 + i)),
            )
            packets.append(QuicPacket(path_id=i % 4, packet_number=2000 + i,
                                      frames=[ack], connection_id=7))
        elif i % 4 == 2:
            frame = XncNcFrame.coded(i * 10, 10, 42 + i, payload)
            packets.append(QuicPacket(path_id=i % 4, packet_number=2000 + i,
                                      frames=[frame], connection_id=7))
        else:
            frame = XncNcFrame.original(i, payload)
            packets.append(QuicPacket(path_id=i % 4, packet_number=2000 + i,
                                      frames=[frame], connection_id=7))
    return packets


def _bench_wire_serialize(workload: Workload) -> float:
    from repro.quic.wire import serialize_packet

    iters = _scaled(workload, 20_000, 2_000)
    packets = _wire_corpus()
    for _ in range(iters):
        for pkt in packets:
            serialize_packet(pkt)
    return float(iters * len(packets))


def _bench_wire_parse(workload: Workload) -> float:
    from repro.quic.wire import parse_packet, serialize_packet

    iters = _scaled(workload, 20_000, 2_000)
    blobs = [serialize_packet(p) for p in _wire_corpus()]
    for _ in range(iters):
        for blob in blobs:
            parse_packet(blob)
    return float(iters * len(blobs))


# -- tunnel -----------------------------------------------------------------


def _bench_tunnel_fig10a(workload: Workload) -> float:
    from repro.experiments.runner import run_stream

    duration = 1.0 if workload.smoke else 4.0
    result = run_stream("cellfusion", duration=duration, seed=0)
    if result.packets_sent == 0:
        raise AssertionError("tunnel benchmark produced no traffic")
    mean_payload = result.client_stats.app_bytes_in / result.client_stats.app_packets_in
    return result.packets_received * mean_payload / 1e6  # delivered app MB


# -- fleet ------------------------------------------------------------------


def _bench_fleet_lite(workload: Workload) -> float:
    from repro.fleet import FleetConfig, run_fleet

    vehicles = _scaled(workload, 400, 40)
    report = run_fleet(FleetConfig(vehicles=vehicles, shards=1,
                                   seed=WORKLOAD_SEED, duration=2.0,
                                   mode="lite"))
    if len(report.vehicles) != vehicles:
        raise AssertionError("fleet run lost vehicles")
    return float(vehicles)


def _bench_fleet_plan(workload: Workload) -> float:
    from repro.fleet import FleetConfig, plan_fleet

    vehicles = _scaled(workload, 1000, 100)
    plan = plan_fleet(FleetConfig(vehicles=vehicles, shards=1,
                                  seed=WORKLOAD_SEED, duration=1.0,
                                  mode="lite"))
    if len(plan.vehicles) != vehicles:
        raise AssertionError("fleet plan lost vehicles")
    return float(vehicles)


def _bench_fleet_merge(workload: Workload) -> float:
    from repro.fleet import FleetConfig, simulate_vehicle
    from repro.fleet.vehicle import VehicleSpec
    from repro.determinism import derive_seed
    from repro.obs.aggregate import RunAggregate

    config = FleetConfig(vehicles=1, shards=1, seed=WORKLOAD_SEED,
                         duration=2.0, mode="lite")
    # a small pool of distinct shipped states, folded many times — the
    # parent's merge loop is the hot path, not the synthesis
    states = []
    for vid in range(8):
        spec = VehicleSpec(vid=vid,
                           seed=derive_seed(WORKLOAD_SEED, "vehicle", vid),
                           device_id="veh-%05d" % vid, join_time=0.0,
                           location=(0.0, 0.0), pop_id=None,
                           access_delay=0.01)
        states.append(simulate_vehicle(spec, config)["aggregate"])
    merges = _scaled(workload, 4000, 400)
    fleet = RunAggregate()
    for i in range(merges):
        fleet.merge(RunAggregate.from_state(states[i % len(states)]))
    if fleet.runs != merges:
        raise AssertionError("merge fold lost runs")
    return float(merges)


# -- registry ---------------------------------------------------------------


def all_benchmarks():
    """Every benchmark, family-ordered (the BENCH_*.json order)."""
    return [
        Benchmark("events.schedule_fire", "events", "events/s",
                  _bench_events_schedule_fire),
        Benchmark("events.cancel_churn", "events", "ops/s",
                  _bench_events_cancel_churn),
        Benchmark("gf256.addmul_1MiB", "gf", "MB/s", _bench_gf_addmul_large),
        Benchmark("gf256.addmul_64B", "gf", "MB/s", _bench_gf_addmul_small),
        Benchmark("rlnc.roundtrip_n10", "gf", "MB/s", _bench_rlnc_roundtrip),
        Benchmark("wire.serialize", "wire", "packets/s", _bench_wire_serialize),
        Benchmark("wire.parse", "wire", "packets/s", _bench_wire_parse),
        Benchmark("tunnel.fig10a_4path", "tunnel", "app_MB/s",
                  _bench_tunnel_fig10a, trials=3, warmup=1),
        Benchmark("fleet.lite_e2e", "fleet", "vehicles/s",
                  _bench_fleet_lite, trials=3, warmup=1),
        Benchmark("fleet.plan_control", "fleet", "vehicles/s",
                  _bench_fleet_plan, trials=3, warmup=1),
        Benchmark("fleet.merge_fold", "fleet", "merges/s",
                  _bench_fleet_merge, trials=3, warmup=1),
    ]


def families():
    """Sorted family names (schema requires at least these four)."""
    return sorted({b.family for b in all_benchmarks()})
