#!/usr/bin/env bash
# Repo static-analysis + sanitizer CI gate.
#
# Stages, each fail-fast:
#   1. `repro lint` over the whole tree (tools/lint rules; exit 1 on any
#      violation, including unjustified suppressions);
#   1b. `repro lint --deep` — the whole-program pass (import graph, units
#      dataflow, paper-constants registry) emitting SARIF for CI
#      annotation, with a 10 s wall-clock budget so the deep pass can
#      never become the slow stage;
#   1c. `repro lint --shard-safety` — the fleet-sharding pass (mutable
#      globals, event-loop ownership, RNG provenance, spawn safety)
#      emitting its own SARIF artifact under the same 10 s budget;
#   1d. `repro lint --perf` — the hot-path pass (call-graph hotness
#      propagation: alloc-in-hot-loop, slow idioms, hidden quadratics,
#      unguarded observability calls) emitting its own SARIF artifact
#      under the same 10 s budget;
#   2. the linter/sanitizer self-tests plus the protocol-heavy slice of
#      the suite re-run with REPRO_SANITIZE=1, so every transmit, range
#      build, recovery plan, decode, and state transition in those runs
#      is checked against the paper's invariants;
#   3. the disabled-overhead gates: both the telemetry layer and the
#      sanitizer must keep their off-mode cost bound under 5 % of the
#      streaming hot path;
#   4. the benchmark harness smoke run: `repro bench --smoke` (tiny
#      deterministic workloads, 60 s budget) plus schema validation of
#      the emitted artifact and of the committed BENCH_*.json trajectory
#      points, and the allocation gate: the smoke run's allocs_per_op
#      compared against the committed full-mode artifact with
#      --no-time-gate (wall-clock isn't comparable across modes, but
#      per-unit retention budgets are);
#   5. the chaos-soak smoke: one seeded random fault plan against the
#      full sanitized tunnel (tools/chaos_soak.py, 30 s budget) asserting
#      delivery, drained fault state, and a byte-identical rerun digest;
#   6. the HTML report artifact: `repro report` over a short seeded
#      spans-enabled run (20 s budget) into a gitignored file, checked
#      for the sections a healthy run must produce — so the whole
#      spans -> decomposition -> report pipeline is exercised end to end
#      on every CI run;
#   7. the fleet smoke: a small sanitized sharded fleet run through the
#      `repro fleet` CLI (30 s budget) — JSON + HTML artifacts written,
#      then `--check-digest` re-runs the same config at a *different*
#      shard count and demands the stored digest reproduces byte for
#      byte, plus the fleet.* smoke benches compared against the
#      committed BENCH_PR9.json under the allocation gate;
#   8. the scenario zoo + chaos campaign (45 s budget): every named
#      scenario runs sanitized at smoke duration with `--rerun`, so each
#      scenario must pass its invariant oracles twice with byte-identical
#      digests, then a small derandomized hypothesis campaign asserts the
#      oracles over generated fault plans (a failure would shrink to a
#      minimal replayable plan in the gitignored chaos-shrunk.json).
#
# Usage: tools/ci_checks.sh [--fast]
#   --fast skips stage 3 (the overhead micro-benchmarks).

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

echo "== stage 1: repro lint =============================================="
python -m tools.lint

echo "== stage 1b: repro lint --deep (SARIF, 10 s budget) ================="
SARIF_OUT="${SARIF_OUT:-lint-deep.sarif}"
t0=$(date +%s%N)
if ! python -m tools.lint --deep --format sarif > "$SARIF_OUT"; then
    echo "deep lint found violations:" >&2
    python -m tools.lint --deep >&2 || true
    exit 1
fi
t1=$(date +%s%N)
elapsed_ms=$(( (t1 - t0) / 1000000 ))
echo "deep pass clean in ${elapsed_ms} ms -> ${SARIF_OUT}"
if [ "$elapsed_ms" -ge 10000 ]; then
    echo "deep lint blew its 10 s wall-clock budget (${elapsed_ms} ms)" >&2
    exit 1
fi

echo "== stage 1c: repro lint --shard-safety (SARIF, 10 s budget) ========="
SHARD_SARIF_OUT="${SHARD_SARIF_OUT:-lint-shard.sarif}"
t0=$(date +%s%N)
if ! python -m tools.lint --shard-safety --format sarif > "$SHARD_SARIF_OUT"; then
    echo "shard-safety lint found violations:" >&2
    python -m tools.lint --shard-safety >&2 || true
    exit 1
fi
t1=$(date +%s%N)
elapsed_ms=$(( (t1 - t0) / 1000000 ))
echo "shard-safety pass clean in ${elapsed_ms} ms -> ${SHARD_SARIF_OUT}"
if [ "$elapsed_ms" -ge 10000 ]; then
    echo "shard-safety lint blew its 10 s wall-clock budget (${elapsed_ms} ms)" >&2
    exit 1
fi

echo "== stage 1d: repro lint --perf (SARIF, 10 s budget) ================="
PERF_SARIF_OUT="${PERF_SARIF_OUT:-lint-perf.sarif}"
t0=$(date +%s%N)
if ! python -m tools.lint --perf --format sarif > "$PERF_SARIF_OUT"; then
    echo "perf lint found violations:" >&2
    python -m tools.lint --perf >&2 || true
    exit 1
fi
t1=$(date +%s%N)
elapsed_ms=$(( (t1 - t0) / 1000000 ))
echo "perf pass clean in ${elapsed_ms} ms -> ${PERF_SARIF_OUT}"
if [ "$elapsed_ms" -ge 10000 ]; then
    echo "perf lint blew its 10 s wall-clock budget (${elapsed_ms} ms)" >&2
    exit 1
fi

echo "== stage 2a: linter + sanitizer self-tests =========================="
python -m pytest tests/test_lint.py tests/test_deep_lint.py \
    tests/test_shard_lint.py tests/test_perf_lint.py \
    tests/test_incremental_lint.py \
    tests/test_sanitizer.py tests/test_stateguard.py -q

echo "== stage 2b: integration slice with REPRO_SANITIZE=1 ================"
REPRO_SANITIZE=1 python -m pytest -q \
    tests/test_integration.py \
    tests/test_xnc_endpoint.py \
    tests/test_transport_base.py \
    tests/test_ranges.py \
    tests/test_recovery.py \
    tests/test_rlnc.py \
    tests/test_connection.py \
    tests/test_runner.py \
    tests/test_schedulers.py

if [ "$FAST" = "1" ]; then
    echo "== stage 3 skipped (--fast) ========================================="
else
    echo "== stage 3: disabled-overhead gates ================================="
    python tools/check_sanitizer_overhead.py
    python tools/check_telemetry_overhead.py
    python tools/check_faults_overhead.py
fi

echo "== stage 4: bench smoke + schema validation ========================="
python -m pytest tests/test_bench.py -q
SMOKE_OUT="${SMOKE_OUT:-bench-smoke.json}"
t0=$(date +%s%N)
python -m tools.bench --smoke --out "$SMOKE_OUT"
t1=$(date +%s%N)
elapsed_ms=$(( (t1 - t0) / 1000000 ))
echo "bench smoke in ${elapsed_ms} ms -> ${SMOKE_OUT}"
if [ "$elapsed_ms" -ge 60000 ]; then
    echo "bench smoke blew its 60 s wall-clock budget (${elapsed_ms} ms)" >&2
    exit 1
fi
python -m tools.bench --validate "$SMOKE_OUT"
for artifact in BENCH_*.json; do
    [ -e "$artifact" ] || continue
    python -m tools.bench --validate "$artifact"
done
if [ -e BENCH_PR8.json ]; then
    # Allocation gate: smoke retention vs the committed full-mode run.
    # Wall-clock is not comparable across modes (--no-time-gate), and
    # smoke's per-run fixed retention amortizes over ~10x smaller
    # workloads, so allocs_per_op sits up to ~10x above full mode.  The
    # 1200 % budget clears that mode ratio with margin while genuine
    # retention leaks -- which show up as 100x-5000x jumps -- still trip.
    python -m tools.bench --input "$SMOKE_OUT" --compare BENCH_PR8.json \
        --no-time-gate --max-alloc-regression 1200
fi

echo "== stage 5: chaos-soak smoke (seeded, 30 s budget) =================="
t0=$(date +%s%N)
python tools/chaos_soak.py --seeds 1 --duration 4 --sanitize
t1=$(date +%s%N)
elapsed_ms=$(( (t1 - t0) / 1000000 ))
echo "chaos soak in ${elapsed_ms} ms"
if [ "$elapsed_ms" -ge 30000 ]; then
    echo "chaos soak blew its 30 s wall-clock budget (${elapsed_ms} ms)" >&2
    exit 1
fi

echo "== stage 6: HTML report artifact (seeded, 20 s budget) =============="
REPORT_OUT="${REPORT_OUT:-report-ci.html}"
t0=$(date +%s%N)
python -m repro report cellfusion --duration 3 --seed 1 --out "$REPORT_OUT"
t1=$(date +%s%N)
elapsed_ms=$(( (t1 - t0) / 1000000 ))
echo "report in ${elapsed_ms} ms -> ${REPORT_OUT}"
if [ "$elapsed_ms" -ge 20000 ]; then
    echo "report stage blew its 20 s wall-clock budget (${elapsed_ms} ms)" >&2
    exit 1
fi
for section in "Delay CDFs" "Per-path timelines" "Frame delay decomposition" \
               "Worst frames (span waterfall)"; do
    if ! grep -q "$section" "$REPORT_OUT"; then
        echo "report artifact is missing its '$section' section" >&2
        exit 1
    fi
done

echo "== stage 7: fleet smoke + shard-invariant digest (30 s budget) ======"
FLEET_OUT="${FLEET_OUT:-fleet-ci.json}"
FLEET_HTML="${FLEET_HTML:-fleet-ci.html}"
t0=$(date +%s%N)
python -m repro fleet --vehicles 6 --shards 2 --seed 1 --duration 1.0 \
    --sanitize --out "$FLEET_OUT" --html "$FLEET_HTML"
# rerun the saved config inline (1 shard): the digest must reproduce
python -m repro fleet --check-digest "$FLEET_OUT" --shards 1
t1=$(date +%s%N)
elapsed_ms=$(( (t1 - t0) / 1000000 ))
echo "fleet smoke in ${elapsed_ms} ms -> ${FLEET_OUT}, ${FLEET_HTML}"
if [ "$elapsed_ms" -ge 30000 ]; then
    echo "fleet smoke blew its 30 s wall-clock budget (${elapsed_ms} ms)" >&2
    exit 1
fi
for section in "Fleet delay CDFs" "Fleet concurrency" "Control plane"; do
    if ! grep -q "$section" "$FLEET_HTML"; then
        echo "fleet HTML artifact is missing its '$section' section" >&2
        exit 1
    fi
done
if [ -e BENCH_PR9.json ]; then
    # fleet.* allocation gate vs the committed full-mode artifact (same
    # smoke-vs-full rationale and budget as stage 4)
    FLEET_BENCH_OUT="${FLEET_BENCH_OUT:-bench-fleet-smoke.json}"
    python -m tools.bench fleet --smoke --out "$FLEET_BENCH_OUT"
    python -m tools.bench --input "$FLEET_BENCH_OUT" --compare BENCH_PR9.json \
        --no-time-gate --max-alloc-regression 1200
fi

echo "== stage 8: scenario zoo + chaos campaign (45 s budget) ============="
CHAOS_ARTIFACT="${CHAOS_ARTIFACT:-chaos-shrunk.json}"
t0=$(date +%s%N)
python -m repro chaos zoo --smoke --sanitize --rerun
python -m repro chaos campaign --examples 4 --duration 2.0 --derandomize \
    --sanitize --artifact "$CHAOS_ARTIFACT"
t1=$(date +%s%N)
elapsed_ms=$(( (t1 - t0) / 1000000 ))
echo "scenario zoo + campaign in ${elapsed_ms} ms"
if [ "$elapsed_ms" -ge 45000 ]; then
    echo "scenario stage blew its 45 s wall-clock budget (${elapsed_ms} ms)" >&2
    exit 1
fi

echo "ci_checks: all stages passed"
