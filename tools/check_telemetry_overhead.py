#!/usr/bin/env python3
"""Verify that disabled telemetry stays within its overhead budget.

The observability layer promises a near-zero cost when disabled: every
instrumented call site guards with ``if tel.enabled:`` against the shared
``NULL_TELEMETRY`` singleton, so the disabled cost per site is one
attribute load plus one branch.  This script turns that promise into a
regression check:

1. **Micro-benchmark** the guard: time a tight loop over the disabled
   fast path (``if NULL_TELEMETRY.enabled: ...``) against the same loop
   with no telemetry statement at all, yielding ns/site.
2. **Count call-site activations** for a representative streaming run by
   running it once with telemetry enabled: every trace event and every
   metric update corresponds to one guarded site that fired.  (Event
   sites usually also bump a counter, so counting both overestimates —
   the bound is conservative.)
3. **Bound the disabled overhead**: activations x guard cost, as a
   fraction of the measured telemetry-off wall time.  Fail if the bound
   exceeds the threshold (default 5 %, ``--threshold`` or
   ``REPRO_TELEMETRY_OVERHEAD_PCT``).

4. **Bound spans + profiler the same way**: span recording guards with
   ``if spans.enabled:`` against ``NULL_SPANS`` and the event loop pays
   one local ``profiler is None`` test per dispatched event, so their
   combined disabled cost is (span sites x guard cost) + (dispatches x
   branch cost) — gated against the same threshold.

The enabled-mode cost is also measured and reported — it is expected to
be substantial (it records every packet's lifecycle) and is informational
only.

Usage::

    PYTHONPATH=src python tools/check_telemetry_overhead.py
    PYTHONPATH=src python tools/check_telemetry_overhead.py --duration 6 --runs 5
"""

import argparse
import os
import sys
import time

from repro.experiments.runner import run_stream
from repro.obs import NULL_SPANS, NULL_TELEMETRY

DEFAULT_THRESHOLD_PCT = float(os.environ.get("REPRO_TELEMETRY_OVERHEAD_PCT", "5.0"))


def measure_guard_ns(iterations: int = 2_000_000) -> float:
    """Per-call cost of the disabled-telemetry guard, in nanoseconds."""
    tel = NULL_TELEMETRY

    def guarded(n):
        acc = 0
        for i in range(n):
            acc += i
            if tel.enabled:
                tel.count("x")
        return acc

    def bare(n):
        acc = 0
        for i in range(n):
            acc += i
        return acc

    guarded(iterations // 10)  # warm up
    bare(iterations // 10)
    t0 = time.perf_counter()
    guarded(iterations)
    with_guard = time.perf_counter() - t0
    t0 = time.perf_counter()
    bare(iterations)
    without = time.perf_counter() - t0
    return max(0.0, (with_guard - without) / iterations * 1e9)


def measure_span_guard_ns(iterations: int = 2_000_000) -> float:
    """Per-site cost of the disabled-span guard (``if sp.enabled:``)."""
    sp = NULL_SPANS

    def guarded(n):
        acc = 0
        for i in range(n):
            acc += i
            if sp.enabled:
                sp.instant("x", 0.0)
        return acc

    def bare(n):
        acc = 0
        for i in range(n):
            acc += i
        return acc

    guarded(iterations // 10)  # warm up
    bare(iterations // 10)
    t0 = time.perf_counter()
    guarded(iterations)
    with_guard = time.perf_counter() - t0
    t0 = time.perf_counter()
    bare(iterations)
    without = time.perf_counter() - t0
    return max(0.0, (with_guard - without) / iterations * 1e9)


def measure_dispatch_branch_ns(iterations: int = 2_000_000) -> float:
    """Per-event cost of the loop's ``profiler is None`` fast path."""
    profiler = None

    def branched(n):
        acc = 0
        for i in range(n):
            acc += i
            if profiler is not None:
                profiler.call(int, (), 0.0)
        return acc

    def bare(n):
        acc = 0
        for i in range(n):
            acc += i
        return acc

    branched(iterations // 10)  # warm up
    bare(iterations // 10)
    t0 = time.perf_counter()
    branched(iterations)
    with_branch = time.perf_counter() - t0
    t0 = time.perf_counter()
    bare(iterations)
    without = time.perf_counter() - t0
    return max(0.0, (with_branch - without) / iterations * 1e9)


def count_span_profiler_activations(duration: float, seed: int):
    """(span sites fired, events dispatched) for one instrumented run.

    One run with spans and the profiler both armed yields both counts:
    every span open pairs with a close (instants open+close at once) and
    a bind/annotate at most once each per open in the current wiring, so
    4x opens bounds the guarded span sites from above; the profiler's
    call counter is exactly the loop's dispatch count.
    """
    result = run_stream("cellfusion", duration=duration, seed=seed,
                        spans=True, profile=True)
    span_sites = 4 * result.telemetry.spans.opened
    dispatches = result.profile["calls"]
    return span_sites, dispatches


def best_wall_time(telemetry: bool, duration: float, seed: int, runs: int) -> float:
    """Best-of-N wall time of one streaming run (min filters scheduler noise)."""
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        run_stream("cellfusion", duration=duration, seed=seed, telemetry=telemetry)
        times.append(time.perf_counter() - t0)
    return min(times)


def count_activations(duration: float, seed: int) -> int:
    """How many guarded call sites fire during one run (telemetry on)."""
    result = run_stream("cellfusion", duration=duration, seed=seed, telemetry=True)
    tel = result.telemetry
    hits = tel.trace.emitted
    for metric in tel.metrics.snapshot():
        # counters report their sum; histograms their sample count; each
        # gauge set is at least one hit per recorded update
        hits += int(metric.get("count", metric.get("value", 1)) or 1)
    for samples in tel.timelines.values():
        hits += len(samples)
    return hits


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds of simulated streaming per run")
    parser.add_argument("--seed", type=int, default=1, help="trace seed")
    parser.add_argument("--runs", type=int, default=3, help="best-of-N runs")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
                        help="max disabled overhead in percent")
    args = parser.parse_args(argv)

    guard_ns = measure_guard_ns()
    print("disabled guard cost: %.0f ns/site" % guard_ns)

    activations = count_activations(args.duration, args.seed)
    print("guarded call sites fired per %.0fs run: %d" % (args.duration, activations))

    off = best_wall_time(False, args.duration, args.seed, args.runs)
    on = best_wall_time(True, args.duration, args.seed, args.runs)
    print("wall time: telemetry off %.3fs, on %.3fs (+%.1f%%, informational)"
          % (off, on, (on - off) / off * 100.0))

    bound_s = activations * guard_ns * 1e-9
    bound_pct = bound_s / off * 100.0
    print("disabled overhead bound: %d sites x %.0f ns = %.1f ms = %.2f%% of %.3fs"
          % (activations, guard_ns, bound_s * 1000.0, bound_pct, off))

    if bound_pct > args.threshold:
        print("FAIL: disabled telemetry overhead bound %.2f%% exceeds %.1f%%"
              % (bound_pct, args.threshold))
        return 1
    print("OK: disabled telemetry overhead bound %.2f%% <= %.1f%%"
          % (bound_pct, args.threshold))

    span_guard_ns = measure_span_guard_ns()
    branch_ns = measure_dispatch_branch_ns()
    print("disabled span guard: %.0f ns/site; dispatch branch: %.0f ns/event"
          % (span_guard_ns, branch_ns))
    span_sites, dispatches = count_span_profiler_activations(args.duration, args.seed)
    sp_bound_s = span_sites * span_guard_ns * 1e-9 + dispatches * branch_ns * 1e-9
    sp_bound_pct = sp_bound_s / off * 100.0
    print("spans+profiler disabled bound: %d span sites + %d dispatches "
          "= %.1f ms = %.2f%% of %.3fs"
          % (span_sites, dispatches, sp_bound_s * 1000.0, sp_bound_pct, off))
    if sp_bound_pct > args.threshold:
        print("FAIL: disabled spans+profiler overhead bound %.2f%% exceeds %.1f%%"
              % (sp_bound_pct, args.threshold))
        return 1
    print("OK: disabled spans+profiler overhead bound %.2f%% <= %.1f%%"
          % (sp_bound_pct, args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
