#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only`` so the quoted numbers
always match the latest measurement.
"""

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every figure in the paper's evaluation (§2.2 Fig. 3, §8 Figs. 8–14) has a
benchmark under `benchmarks/`; each prints the rows below and writes them
to `benchmarks/results/`.  Regenerate everything with:

```bash
pytest benchmarks/ --benchmark-only        # laptop scale (~15 min)
REPRO_BENCH_DURATION=60 REPRO_BENCH_SEEDS=10 pytest benchmarks/ --benchmark-only   # closer to paper scale
python tools/build_experiments_md.py       # refresh this file
```

Absolute numbers cannot match the paper — its substrate was 100 real
vehicles on live carrier networks, ours is a calibrated simulator — so
each section states the paper's claim, the measured result, and whether
the *shape* (ordering, rough factor, crossover) reproduces.

"""

SECTIONS = [
    (
        "fig03_single_link",
        "Fig. 3 — single-link streaming (§2.2)",
        """Paper: RSRP/SINR swing >30 dB within seconds; loss bursts reach
100 % and last tens of seconds; delay spikes reach seconds; neither LTE
nor 5G sustains 30 Mbps (FPS drops, stall climbs toward 10–20 %, SSIM
falls).  **Shape reproduced**: RF swings exceed 30 dB, tail delays reach
seconds, QoE degrades and 30 Mbps stresses the links more than 10 Mbps.""",
    ),
    (
        "fig08_frame_timeline",
        "Fig. 8 — received-frame timeline sample",
        """Paper: the MPQUIC strip shows blocky frames and lost frames
(stall) where CellFusion stays clear and smooth.  **Shape reproduced**
with one honest nuance: CellFusion (partially reliable) trades a few
briefly-blocky frames for a stream that keeps moving, while MPQUIC
freezes — fewer corrupt frames but an order of magnitude more stall.""",
    ),
    (
        "fig09_road_test_qoe",
        "Fig. 9 — end-to-end road-test QoE",
        """Paper: CellFusion averaged 29.11 fps / 0.99 % stall / 0.93 SSIM
at 30 Mbps and reduced stall by 66.11 % vs MPQUIC, 69.35 % vs MPTCP,
80.62 % vs BONDING, with the smallest variance.  **Shape reproduced**:
CellFusion has the lowest stall (sub-1 % mean) and smallest variance;
BONDING is the worst and most variable.  Our reductions are larger than
the paper's because the synthetic traces are harsher than the average
road segment.""",
    ),
    (
        "fig10a_delay_cdf",
        "Fig. 10(a) — deployment packet-delay CDF",
        """Paper: CellFusion P95/P99/P99.9 = 47.4/73.8/222.3 ms vs 5G-only
55.8/259.2/954.7 ms and LTE-only 76.1/267.2/791.9 ms — 71.53 % P99
reduction vs 5G.  **Shape reproduced**: CellFusion's tail sits in the
tens-of-ms range while both single links blow out to hundreds of ms or
seconds; P99 reduction vs 5G-only exceeds 20 % (typically 60–90 %).""",
    ),
    (
        "fig10b_redundancy",
        "Fig. 10(b) — daily traffic redundancy",
        """Paper: daily redundancy of a deployed vehicle varied between 1 %
and 9 % over ~70 days.  **Shape reproduced**: every simulated day stays
inside ~0–10 % with day-to-day variation driven by network conditions,
because coding is applied only to loss recovery.""",
    ),
    (
        "fig11_schedulers",
        "Fig. 11 — XNC vs multipath scheduling optimisations",
        """Paper: XNC cut average stall by 86.56 % / 82.22 % / 92.75 % vs
minRTT / XLINK / ECF; RE needed up to 300 % redundancy and lost at the
tail; XNC stayed under 10 % redundancy.  **Shape reproduced**: XNC's
stall is an order of magnitude below every scheduler arm, RE's redundancy
is ~10–100× XNC's, and XNC's tail (max) stall beats RE's.""",
    ),
    (
        "fig12_pluribus",
        "Fig. 12 — XNC vs Pluribus",
        """Paper: XNC reduced stall by >81.67 % and used 89.49 % less
redundant traffic than Pluribus.  **Shape reproduced**: XNC wins every
QoE metric and uses a fraction of Pluribus's redundancy (Pluribus's
proactive block code pays its redundancy floor all the time; XNC pays
only on loss).""",
    ),
    (
        "fig13a_qrlnc_ablation",
        "Fig. 13(a) — ablation: Q-RLNC vs plain retransmission",
        """Paper: Q-RLNC cut residual loss at the tail by 15.55 % (P95) and
41.70 % (P99).  **Shape reproduced**: per-frame residual loss at P99 is
lower with coding — coded recovery survives loss of recovery packets
(any n' of the spread decode the range), plain retransmission does not.""",
    ),
    (
        "fig13b_loss_detection",
        "Fig. 13(b) — ablation: QoE-aware loss detection vs PTO-only",
        """Paper: QoE-aware detection reduced packet delay by 8.48 % (P95)
and 28.44 % (P99).  **Shape reproduced** on censored delays (undelivered
packets charged their missed deadline): the tail benefits most because
the app threshold fires long before an RTT-inflated PTO during delay
spikes.""",
    ),
    (
        "fig14_cpu_load",
        "Fig. 14 — CPU cost: MPQUIC vs XNC vs SIMD-XNC",
        """Paper: at 30 Mbps XNC cost 43.77 % more CPU than MPQUIC; SIMD
cut that to 23.44 % (a 26.56 % saving).  **Shape reproduced** with the
expected caveat: vectorised-vs-scalar gaps are far larger in Python than
between NEON and scalar C, so we assert the ordering (MPQUIC < SIMD-XNC
< XNC, growing with bitrate) rather than the percentages.""",
    ),
    (
        "theorem41_decode_probability",
        "Theorem 4.1 — decode probability vs extra packets",
        """Paper: with k extra coded packets, decode success ≥
1 − 1/(255^k·254); the deployed k = 3 makes failure negligible.
**Reproduced**: Monte-Carlo rank statistics of the actual coefficient
construction meet the bound at every k, and k = 3 never fails.""",
    ),
]

ABLATIONS = [
    ("ablation_extra_packets", "k extra coded packets (paper point: k = 3)"),
    ("ablation_rho", "per-path spread bound ρ (paper point: 1 < ρ < 1.2)"),
    ("ablation_spread_mode", "one-shot spread strategy (paper point: proportional, capped)"),
    ("ablation_expiry", "packet expiry t_expire (paper point: 700 ms)"),
    ("ablation_range_size", "encode-range cap r (paper point: 10)"),
    ("ablation_app_threshold", "QoE loss-detection threshold (paper: app-defined)"),
]


def block(name: str) -> str:
    path = RESULTS / ("%s.txt" % name)
    if not path.exists():
        return "*(run `pytest benchmarks/ --benchmark-only` to generate)*\n"
    return "```\n%s```\n" % path.read_text()


def main() -> None:
    parts = [HEADER]
    for name, title, commentary in SECTIONS:
        parts.append("## %s\n\n%s\n\nMeasured:\n\n%s" % (title, commentary, block(name)))
    parts.append(
        "## Design-knob ablations (beyond the paper)\n\n"
        "DESIGN.md §5 lists the design choices XNC commits to; these sweeps\n"
        "measure each one's trade-off on outage-bearing traces "
        "(`benchmarks/test_ablation_design_knobs.py`).\n"
    )
    for name, title in ABLATIONS:
        parts.append("### %s\n\n%s" % (title, block(name)))
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print("wrote %s" % (ROOT / "EXPERIMENTS.md"))


if __name__ == "__main__":
    main()
