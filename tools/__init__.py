"""Repo tooling namespace (lint, CI gates, experiment builders)."""
