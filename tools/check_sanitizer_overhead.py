#!/usr/bin/env python3
"""Verify that the disabled protocol sanitizer stays within its overhead budget.

The sanitizer makes the same promise the telemetry layer does: when off,
every instrumented call site is ``if san.enabled:`` against the shared
``NULL_SANITIZER`` singleton, so the disabled cost per site is one
attribute load plus one branch.  This script is the regression check:

1. **Micro-benchmark** the guard: a tight loop over the disabled fast
   path versus the same loop with no sanitizer statement, giving ns/site.
2. **Count check activations** for a representative streaming run by
   running once with the sanitizer armed — ``repro.sanitizer.totals()``
   counts every check that fired, and each check corresponds to one
   guarded site.
3. **Bound the disabled overhead**: activations x guard cost as a
   fraction of the sanitizer-off wall time.  Fail beyond the threshold
   (default 5 %, ``--threshold`` or ``REPRO_SANITIZER_OVERHEAD_PCT`` —
   the same bound the telemetry layer promises).
4. **Bound the disabled state-leak guard** the same way: an unguarded
   run holds ``NULL_STATE_GUARD`` and pays one ``.enabled`` load plus a
   branch at each of its call sites in ``run_stream``, so its bound is
   sites x guard cost against the same off wall time, gated under the
   same threshold.

The enabled-mode cost is reported for information only; armed runs are
CI/debug tools, not the benchmark path.

Usage::

    PYTHONPATH=src python tools/check_sanitizer_overhead.py
    PYTHONPATH=src python tools/check_sanitizer_overhead.py --duration 6 --runs 5
"""

import argparse
import os
import sys
import time

from repro.experiments.runner import run_stream
from repro.sanitizer import NULL_SANITIZER, NULL_STATE_GUARD, reset_totals, totals

DEFAULT_THRESHOLD_PCT = float(os.environ.get("REPRO_SANITIZER_OVERHEAD_PCT", "5.0"))

#: Guarded state-guard call sites per run_stream invocation: the
#: ``state_guard.enabled`` checks around snapshot() and verify().
STATE_GUARD_SITES = 2


def measure_guard_ns(iterations: int = 2_000_000) -> float:
    """Per-call cost of the disabled-sanitizer guard, in nanoseconds."""
    san = NULL_SANITIZER

    def guarded(n):
        acc = 0
        for i in range(n):
            acc += i
            if san.enabled:
                san.check_timer_progress("x", 0.0)
        return acc

    def bare(n):
        acc = 0
        for i in range(n):
            acc += i
        return acc

    guarded(iterations // 10)  # warm up
    bare(iterations // 10)
    t0 = time.perf_counter()
    guarded(iterations)
    with_guard = time.perf_counter() - t0
    t0 = time.perf_counter()
    bare(iterations)
    without = time.perf_counter() - t0
    return max(0.0, (with_guard - without) / iterations * 1e9)


def measure_state_guard_ns(iterations: int = 2_000_000) -> float:
    """Per-call cost of the disabled state-leak guard branch, in ns."""
    guard = NULL_STATE_GUARD

    def guarded(n):
        acc = 0
        for i in range(n):
            acc += i
            if guard.enabled:
                guard.snapshot()
        return acc

    def bare(n):
        acc = 0
        for i in range(n):
            acc += i
        return acc

    guarded(iterations // 10)  # warm up
    bare(iterations // 10)
    t0 = time.perf_counter()
    guarded(iterations)
    with_guard = time.perf_counter() - t0
    t0 = time.perf_counter()
    bare(iterations)
    without = time.perf_counter() - t0
    return max(0.0, (with_guard - without) / iterations * 1e9)


def best_wall_time(sanitize: bool, duration: float, seed: int, runs: int) -> float:
    """Best-of-N wall time of one streaming run (min filters scheduler noise)."""
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        run_stream("cellfusion", duration=duration, seed=seed, sanitize=sanitize)
        times.append(time.perf_counter() - t0)
    return min(times)


def count_activations(duration: float, seed: int) -> int:
    """How many guarded check sites fire during one armed run."""
    reset_totals()
    run_stream("cellfusion", duration=duration, seed=seed, sanitize=True)
    fired = totals()
    reset_totals()
    if fired["violations"]:
        raise SystemExit("sanitizer reported %d violations during the "
                         "calibration run" % fired["violations"])
    return fired["checks"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds of simulated streaming per run")
    parser.add_argument("--seed", type=int, default=1, help="trace seed")
    parser.add_argument("--runs", type=int, default=3, help="best-of-N runs")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
                        help="max disabled overhead in percent")
    args = parser.parse_args(argv)

    guard_ns = measure_guard_ns()
    print("disabled guard cost: %.0f ns/site" % guard_ns)

    activations = count_activations(args.duration, args.seed)
    print("sanitizer checks fired per %.0fs run: %d" % (args.duration, activations))

    off = best_wall_time(False, args.duration, args.seed, args.runs)
    on = best_wall_time(True, args.duration, args.seed, args.runs)
    print("wall time: sanitizer off %.3fs, on %.3fs (+%.1f%%, informational)"
          % (off, on, (on - off) / off * 100.0))

    bound_s = activations * guard_ns * 1e-9
    bound_pct = bound_s / off * 100.0
    print("disabled overhead bound: %d sites x %.0f ns = %.2f ms = %.2f%% of %.3fs"
          % (activations, guard_ns, bound_s * 1000.0, bound_pct, off))

    if bound_pct > args.threshold:
        print("FAIL: disabled sanitizer overhead bound %.2f%% exceeds %.1f%%"
              % (bound_pct, args.threshold))
        return 1
    print("OK: disabled sanitizer overhead bound %.2f%% <= %.1f%%"
          % (bound_pct, args.threshold))

    sg_ns = measure_state_guard_ns()
    sg_bound_s = STATE_GUARD_SITES * sg_ns * 1e-9
    sg_bound_pct = sg_bound_s / off * 100.0
    print("disabled state guard: %d sites x %.0f ns = %.4f ms = %.4f%% of %.3fs"
          % (STATE_GUARD_SITES, sg_ns, sg_bound_s * 1000.0, sg_bound_pct, off))
    if sg_bound_pct > args.threshold:
        print("FAIL: disabled state-leak guard bound %.4f%% exceeds %.1f%%"
              % (sg_bound_pct, args.threshold))
        return 1
    print("OK: disabled state-leak guard bound %.4f%% <= %.1f%%"
          % (sg_bound_pct, args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
