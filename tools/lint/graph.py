"""Whole-program infrastructure for the deep lint pass (phase 1).

:class:`Project` turns the flat list of parsed modules the engine already
holds into the three structures the cross-module rules in
``tools.lint.xrules`` need:

* a **module map** — repo-relative path -> :class:`ModuleInfo`, with each
  file resolved to its dotted module name (``src/repro/core/ranges.py``
  -> ``repro.core.ranges``, ``tests/test_lint.py`` -> ``tests.test_lint``);
* an **import graph** — directed edges between project modules, split
  into top-level imports (which execute at import time and can deadlock
  in a cycle) and deferred function-body imports (which cannot);
* a **symbol table** — every top-level def/class/assignment per module,
  its ``__all__`` exports, and the cross-module *references*: from-import
  bindings, dotted attribute reads through imported module aliases, and
  star-imports.  Package ``__init__`` re-exports are recorded as aliases
  so that reachability propagates through ``repro -> repro.core ->
  repro.core.ranges`` chains instead of counting the re-export itself as
  a use.

Everything here is derived purely from the ASTs the engine parsed — no
project code is imported, so a broken module cannot break the analyzer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "module_name_for",
    "ImportEdge",
    "SymbolDef",
    "ModuleInfo",
    "Project",
    "FuncNode",
    "CallGraph",
    "HOT_SEED_MODULE",
    "HOT_DECORATOR",
    "strongly_connected_components",
]

#: Path prefixes stripped when mapping a file to its dotted module name.
_SRC_PREFIXES = ("src/",)


def module_name_for(rel: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/`` is a roots-only directory, so it is stripped; every other
    top-level directory (``tools``, ``tests``, ``benchmarks``, ...) is
    part of the name.  ``__init__.py`` maps to the package itself.
    """
    rel = rel.replace("\\", "/")
    for prefix in _SRC_PREFIXES:
        if rel.startswith(prefix):
            rel = rel[len(prefix):]
            break
    if rel.endswith(".py"):
        rel = rel[:-3]
    if rel.endswith("/__init__"):
        rel = rel[: -len("/__init__")]
    return rel.replace("/", ".")


@dataclass(frozen=True)
class ImportEdge:
    """One import statement linking two project modules."""

    src: str
    dst: str
    line: int
    top_level: bool


@dataclass
class SymbolDef:
    """A top-level binding in one module."""

    name: str
    module: str
    line: int
    col: int
    kind: str  # "function" | "class" | "assign"
    node: ast.AST = field(repr=False, default=None)


class ModuleInfo:
    """Per-module slice of the project symbol table."""

    def __init__(self, rel: str, name: str, tree: ast.Module):
        self.rel = rel
        self.name = name
        self.tree = tree
        self.is_package = rel.endswith("__init__.py")
        #: Top-level bindings by name.
        self.symbols: Dict[str, SymbolDef] = {}
        #: Names listed in ``__all__`` -> the AST node of the list element.
        self.exports: Dict[str, ast.AST] = {}
        #: Local alias -> dotted module name (``import x.y as z``).
        self.module_aliases: Dict[str, str] = {}
        #: Local name -> (source module, source name) from ``from m import n``.
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: Modules star-imported by this one.
        self.star_imports: Set[str] = set()

    def package(self) -> str:
        """The package this module lives in (itself, for packages)."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


class Project:
    """The whole-program view: modules, import graph, references.

    ``modules`` maps repo-relative path -> an object with ``tree`` (the
    parsed AST) — the engine passes its ``ModuleSource`` instances
    directly.
    """

    def __init__(self, modules: Dict[str, "object"]):
        self.sources = dict(modules)
        self.modules: Dict[str, ModuleInfo] = {}
        #: dotted name -> ModuleInfo (reverse of the path map).
        self.by_name: Dict[str, ModuleInfo] = {}
        #: Lazily-built static call graph (the perf pass); see call_graph().
        self._call_graph: Optional["CallGraph"] = None
        #: Optional set of repo-relative paths the per-module rule work is
        #: limited to (the --changed incremental mode); None = all.
        self.restrict: Optional[Set[str]] = None
        self.edges: List[ImportEdge] = []
        #: (module, symbol) pairs referenced from *other* modules.
        self.references: Set[Tuple[str, str]] = set()
        #: Re-export aliases: (pkg, name) -> (origin module, origin name).
        self.reexports: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for rel, source in sorted(self.sources.items()):
            info = ModuleInfo(rel, module_name_for(rel), source.tree)
            self.modules[rel] = info
            self.by_name[info.name] = info
        for info in self.modules.values():
            self._collect_symbols(info)
            self._collect_imports(info)
        for info in self.modules.values():
            self._collect_references(info)
        self._propagate_reexports()

    # -- construction ----------------------------------------------------------

    def _collect_symbols(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.symbols[node.name] = SymbolDef(
                    node.name, info.name, node.lineno, node.col_offset, "function", node)
            elif isinstance(node, ast.ClassDef):
                info.symbols[node.name] = SymbolDef(
                    node.name, info.name, node.lineno, node.col_offset, "class", node)
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    for name_node in self._target_names(tgt):
                        info.symbols[name_node.id] = SymbolDef(
                            name_node.id, info.name, node.lineno,
                            node.col_offset, "assign", node)
                if any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets):
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                                info.exports[elt.value] = elt
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                info.symbols[node.target.id] = SymbolDef(
                    node.target.id, info.name, node.lineno, node.col_offset,
                    "assign", node)

    @staticmethod
    def _target_names(tgt: ast.AST) -> Iterator[ast.Name]:
        if isinstance(tgt, ast.Name):
            yield tgt
        elif isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                if isinstance(elt, ast.Name):
                    yield elt

    def _resolve_relative(self, info: ModuleInfo, level: int, module: Optional[str]) -> Optional[str]:
        """Resolve a ``from ...x import y`` to an absolute dotted name."""
        if level == 0:
            return module
        base = info.name.split(".")
        if not info.is_package:
            base = base[:-1]
        drop = level - 1
        if drop > len(base):
            return None
        if drop:
            base = base[:-drop]
        if module:
            base = base + module.split(".")
        return ".".join(base) if base else None

    def _collect_imports(self, info: ModuleInfo) -> None:
        top_level_nodes = set(map(id, info.tree.body))
        for node in ast.walk(info.tree):
            top = id(node) in top_level_nodes
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.name
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.asname:
                        info.module_aliases[bound] = target
                    else:
                        # ``import a.b.c`` binds ``a``; dotted reads start there
                        info.module_aliases.setdefault(bound, target.split(".")[0])
                    self._add_edge(info, target, node.lineno, top)
            elif isinstance(node, ast.ImportFrom):
                source = self._resolve_relative(info, node.level, node.module)
                if source is None:
                    continue
                self._add_edge(info, source, node.lineno, top)
                for alias in node.names:
                    if alias.name == "*":
                        if source in self.by_name:
                            info.star_imports.add(source)
                        continue
                    sub = "%s.%s" % (source, alias.name)
                    if sub in self.by_name:
                        # ``from pkg import mod`` — a module binding
                        info.module_aliases[alias.asname or alias.name] = sub
                        self._add_edge(info, sub, node.lineno, top)
                    else:
                        info.from_imports[alias.asname or alias.name] = (source, alias.name)

    def _add_edge(self, info: ModuleInfo, target: str, line: int, top: bool) -> None:
        if target in self.by_name and target != info.name:
            self.edges.append(ImportEdge(info.name, target, line, top))

    def _collect_references(self, info: ModuleInfo) -> None:
        """Record (module, symbol) uses this module makes of other modules."""
        is_reexport_pkg = info.is_package
        for name, (source, orig) in info.from_imports.items():
            if source not in self.by_name:
                continue
            if is_reexport_pkg and name in info.exports:
                # re-export: reachability flows through the package name
                self.reexports[(info.name, name)] = (source, orig)
            else:
                self.references.add((source, orig))
        for source in info.star_imports:
            origin = self.by_name.get(source)
            if origin is not None:
                for exported in origin.exports:
                    self.references.add((source, exported))
        # dotted reads through module aliases: ``alias.attr`` / ``alias.sub.attr``
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _dotted_chain(node)
            if chain is None or len(chain) < 2:
                continue
            root_target = info.module_aliases.get(chain[0])
            if root_target is None:
                continue
            resolved = root_target.split(".") + list(chain[1:])
            # longest module prefix wins; the next component is the symbol
            for cut in range(len(resolved) - 1, 0, -1):
                mod = ".".join(resolved[:cut])
                if mod in self.by_name and mod != info.name:
                    self.references.add((mod, resolved[cut]))
                    break

    def _propagate_reexports(self) -> None:
        """Close references over ``__init__`` re-export aliases."""
        changed = True
        while changed:
            changed = False
            for (pkg, name), (source, orig) in self.reexports.items():
                if (pkg, name) in self.references and (source, orig) not in self.references:
                    self.references.add((source, orig))
                    changed = True

    # -- queries ---------------------------------------------------------------

    def active_modules(self) -> List[Tuple[str, ModuleInfo]]:
        """(rel, info) pairs the per-module rule work should cover, sorted.

        Honours :attr:`restrict` — the incremental mode's contract is
        that skipped modules' findings come from the violation cache, so
        rules iterating this list stay exact while doing less work.
        """
        items = sorted(self.modules.items())
        if self.restrict is None:
            return items
        return [(rel, info) for rel, info in items if rel in self.restrict]

    def import_graph(self, top_level_only: bool = True) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {name: set() for name in self.by_name}
        for edge in self.edges:
            if top_level_only and not edge.top_level:
                continue
            graph[edge.src].add(edge.dst)
        return graph

    def import_cycles(self) -> List[List[str]]:
        """Cycles among *top-level* imports (sorted, deterministic)."""
        graph = self.import_graph(top_level_only=True)
        cycles = [sorted(scc) for scc in strongly_connected_components(graph)
                  if len(scc) > 1 or (len(scc) == 1 and next(iter(scc)) in graph[next(iter(scc))])]
        return sorted(cycles)

    def edge_line(self, src: str, dst_candidates: Iterable[str]) -> int:
        """Line of the first top-level import from ``src`` into the set."""
        wanted = set(dst_candidates)
        lines = [e.line for e in self.edges
                 if e.src == src and e.top_level and e.dst in wanted]
        return min(lines) if lines else 1

    def is_referenced(self, module: str, symbol: str) -> bool:
        return (module, symbol) in self.references

    def call_graph(self) -> "CallGraph":
        """The static call graph + hot set, built once per Project.

        Always computed over **every** module regardless of
        :attr:`restrict` — incremental mode limits reporting, and
        hotness must stay globally exact for spliced verdicts to match a
        full run.
        """
        if self._call_graph is None:
            self._call_graph = CallGraph(self)
        return self._call_graph

    def resolve_callee(self, info: ModuleInfo, func: ast.AST) -> Optional[SymbolDef]:
        """Resolve a call target to a project-level function/class def."""
        if isinstance(func, ast.Name):
            local = info.symbols.get(func.id)
            if local is not None and local.kind in ("function", "class"):
                return local
            imported = info.from_imports.get(func.id)
            if imported is not None:
                source, orig = imported
                origin = self.by_name.get(source)
                if origin is not None:
                    return origin.symbols.get(orig)
            return None
        if isinstance(func, ast.Attribute):
            chain = _dotted_chain(func)
            if chain is None or len(chain) < 2:
                return None
            root_target = info.module_aliases.get(chain[0])
            if root_target is None:
                return None
            resolved = root_target.split(".") + list(chain[1:])
            for cut in range(len(resolved) - 1, 0, -1):
                mod = ".".join(resolved[:cut])
                origin = self.by_name.get(mod)
                if origin is not None and cut == len(resolved) - 1:
                    return origin.symbols.get(resolved[cut])
        return None


#: Module whose top-level functions seed the hot set: the bench suites
#: are, by construction, the packet-rate workloads the repo optimises.
HOT_SEED_MODULE = "tools.bench.suites"
#: Decorator name marking an explicit hot-path entry point
#: (``repro.hotpath.hot_path``).  Matched syntactically by its final
#: component so fixtures and vendored copies seed without imports.
HOT_DECORATOR = "hot_path"

#: A call-graph key: (dotted module name, qualname within the module).
FuncKey = Tuple[str, str]


@dataclass
class FuncNode:
    """One function or method in the static call graph.

    ``qualname`` is ``"name"`` for module-level functions and
    ``"Class.name"`` for methods.  Nested defs are not nodes of their
    own: their bodies (and calls) belong to the enclosing top-level
    function, which matches how their cost is paid at runtime.
    """

    module: str
    qualname: str
    rel: str
    node: ast.AST = field(repr=False, default=None)
    cls: Optional[str] = None

    @property
    def key(self) -> FuncKey:
        return (self.module, self.qualname)

    @property
    def dotted(self) -> str:
        return "%s.%s" % (self.module, self.qualname)


class CallGraph:
    """Static call graph over the whole project, with transitive hotness.

    Resolution is def-site, through the structures :class:`Project`
    already holds, and deliberately mirrors the one-hop indirection the
    constants pass tolerates:

    * plain ``f(...)`` calls via the module symbol table and
      ``from m import f`` bindings (one assignment-alias hop allowed);
    * ``self.m(...)`` / ``cls.m(...)`` through the enclosing class and
      its project-internal base classes;
    * ``ClassName.m(...)`` and ``alias.f(...)`` through imported names
      and module aliases;
    * constructor calls ``Cls(...)`` edge to ``Cls.__init__``;
    * one-hop type inference: ``x = Cls(...); x.m()`` and
      ``self.attr = Cls(...); self.attr.m()`` resolve to ``Cls.m``;
    * callback escapes: a function/method *passed as an argument* from a
      hot call site is treated as called (timer and protocol callbacks
      run at packet rate even though the loop invokes them dynamically).

    Unresolvable targets (stdlib, dynamic dispatch) drop off the graph —
    hotness is a reachability under-approximation, never a guess.
    """

    def __init__(self, project: "Project"):
        self.project = project
        #: key -> FuncNode, insertion-sorted by (rel, lineno).
        self.functions: Dict[FuncKey, FuncNode] = {}
        #: caller key -> callee keys.
        self.edges: Dict[FuncKey, Set[FuncKey]] = {}
        #: hot key -> human-readable provenance ("bench entry point ...",
        #: "@hot_path", "called from <dotted>").
        self.hot: Dict[FuncKey, str] = {}
        #: class key (module, ClassName) -> project-internal base keys.
        self._bases: Dict[FuncKey, List[FuncKey]] = {}
        #: class key -> {attr -> class key} from ``self.attr = Cls(...)``.
        self._attr_types: Dict[FuncKey, Dict[str, FuncKey]] = {}
        self._collect()
        self._link()
        self._seed_and_propagate()

    # -- node collection -------------------------------------------------------

    def _collect(self) -> None:
        for rel, info in sorted(self.project.modules.items()):
            for node in info.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = FuncNode(info.name, node.name, rel, node)
                    self.functions[fn.key] = fn
                elif isinstance(node, ast.ClassDef):
                    clskey = (info.name, node.name)
                    self._bases[clskey] = [
                        base for base in
                        (self._class_of_expr(info, b) for b in node.bases)
                        if base is not None]
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            fn = FuncNode(info.name, "%s.%s" % (node.name, item.name),
                                          rel, item, node.name)
                            self.functions[fn.key] = fn
        # self-attr types need every method collected first
        for fn in self.functions.values():
            if fn.cls is None:
                continue
            info = self.project.by_name[fn.module]
            clskey = (fn.module, fn.cls)
            slots = self._attr_types.setdefault(clskey, {})
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                tgt = node.targets[0]
                if (isinstance(tgt, ast.Attribute) and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self" and isinstance(node.value, ast.Call)):
                    made = self._class_of_expr(info, node.value.func)
                    if made is not None:
                        slots.setdefault(tgt.attr, made)

    def _class_of_expr(self, info: ModuleInfo, expr: ast.AST) -> Optional[FuncKey]:
        """Resolve an expression naming a project class to its key."""
        sd = self.project.resolve_callee(info, expr)
        if sd is not None and sd.kind == "class":
            return (sd.module, sd.name)
        return None

    # -- edge resolution -------------------------------------------------------

    def _link(self) -> None:
        for key, fn in self.functions.items():
            info = self.project.by_name[fn.module]
            out = self.edges.setdefault(key, set())
            var_types = self._infer_locals(info, fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._resolve_call(info, fn, node.func, var_types)
                if callee is not None:
                    out.add(callee)
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    cb = self._resolve_callback(info, fn, arg)
                    if cb is not None:
                        out.add(cb)

    def _infer_locals(self, info: ModuleInfo, fn: FuncNode) -> Dict[str, FuncKey]:
        """``x = Cls(...)`` bindings whose type is unambiguous within fn."""
        seen: Dict[str, Optional[FuncKey]] = {}
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            name = node.targets[0].id
            made = (self._class_of_expr(info, node.value.func)
                    if isinstance(node.value, ast.Call) else None)
            if name in seen and seen[name] != made:
                seen[name] = None  # conflicting rebind: refuse to guess
            else:
                seen[name] = made
        return {name: key for name, key in seen.items() if key is not None}

    def _resolve_call(self, info: ModuleInfo, fn: FuncNode, func: ast.AST,
                      var_types: Dict[str, FuncKey]) -> Optional[FuncKey]:
        if isinstance(func, ast.Name):
            return self._resolve_name_call(info, func.id, hops=1)
        if not isinstance(func, ast.Attribute):
            return None
        chain = _dotted_chain(func)
        if chain is not None and len(chain) >= 2:
            head = chain[0]
            if head in ("self", "cls") and fn.cls is not None:
                clskey = (fn.module, fn.cls)
                if len(chain) == 2:
                    return self._resolve_method(clskey, chain[1])
                if len(chain) == 3:
                    attr_cls = self._attr_types.get(clskey, {}).get(chain[1])
                    if attr_cls is not None:
                        return self._resolve_method(attr_cls, chain[2])
                return None
            if head in var_types and len(chain) == 2:
                return self._resolve_method(var_types[head], chain[1])
            if len(chain) == 2:
                # ClassName.method through a local or imported class name
                base = self._class_of_name(info, head)
                if base is not None:
                    return self._resolve_method(base, chain[1])
        sd = self.project.resolve_callee(info, func)
        return self._key_for_symbol(sd)

    def _resolve_name_call(self, info: ModuleInfo, name: str, hops: int) -> Optional[FuncKey]:
        sd = info.symbols.get(name)
        if sd is None and name in info.from_imports:
            source, orig = info.from_imports[name]
            origin = self.project.by_name.get(source)
            sd = origin.symbols.get(orig) if origin is not None else None
        if sd is None:
            return None
        if sd.kind == "assign" and hops > 0:
            # one-hop alias: ``fast_pack = _pack_impl``
            node = sd.node
            value = node.value if isinstance(node, (ast.Assign, ast.AnnAssign)) else None
            if isinstance(value, ast.Name):
                origin_info = self.project.by_name.get(sd.module)
                if origin_info is not None:
                    return self._resolve_name_call(origin_info, value.id, hops - 1)
            return None
        return self._key_for_symbol(sd)

    def _class_of_name(self, info: ModuleInfo, name: str) -> Optional[FuncKey]:
        sd = info.symbols.get(name)
        if sd is None and name in info.from_imports:
            source, orig = info.from_imports[name]
            origin = self.project.by_name.get(source)
            sd = origin.symbols.get(orig) if origin is not None else None
        if sd is not None and sd.kind == "class":
            return (sd.module, sd.name)
        return None

    def _key_for_symbol(self, sd: Optional[SymbolDef]) -> Optional[FuncKey]:
        if sd is None:
            return None
        if sd.kind == "function":
            key = (sd.module, sd.name)
            return key if key in self.functions else None
        if sd.kind == "class":
            return self._resolve_method((sd.module, sd.name), "__init__")
        return None

    def _resolve_method(self, clskey: FuncKey, method: str) -> Optional[FuncKey]:
        """Look up a method on a class or its project-internal bases."""
        queue, seen = [clskey], set()
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            key = (cur[0], "%s.%s" % (cur[1], method))
            if key in self.functions:
                return key
            queue.extend(self._bases.get(cur, ()))
        return None

    def _resolve_callback(self, info: ModuleInfo, fn: FuncNode,
                          arg: ast.AST) -> Optional[FuncKey]:
        """A function passed by reference from a call site: treated as called."""
        if isinstance(arg, ast.Name):
            return self._resolve_name_call(info, arg.id, hops=0)
        if isinstance(arg, ast.Attribute):
            chain = _dotted_chain(arg)
            if (chain is not None and len(chain) == 2 and chain[0] == "self"
                    and fn.cls is not None):
                return self._resolve_method((fn.module, fn.cls), chain[1])
        return None

    # -- hotness ---------------------------------------------------------------

    def _seed_and_propagate(self) -> None:
        queue: List[FuncKey] = []
        for key, fn in self.functions.items():
            if fn.module == HOT_SEED_MODULE:
                self.hot[key] = "bench entry point %s" % fn.dotted
                queue.append(key)
            elif self._has_hot_decorator(fn.node):
                self.hot[key] = "@%s" % HOT_DECORATOR
                queue.append(key)
        while queue:
            caller = queue.pop(0)
            for callee in sorted(self.edges.get(caller, ())):
                if callee not in self.hot:
                    self.hot[callee] = "called from %s" % self.functions[caller].dotted
                    queue.append(callee)

    @staticmethod
    def _has_hot_decorator(node: ast.AST) -> bool:
        for deco in getattr(node, "decorator_list", ()):
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == HOT_DECORATOR:
                return True
        return False

    # -- queries ---------------------------------------------------------------

    def is_hot(self, key: FuncKey) -> bool:
        return key in self.hot

    def hot_reason(self, key: FuncKey) -> str:
        return self.hot.get(key, "")

    def hot_functions(self) -> List[FuncNode]:
        """Hot FuncNodes sorted by (rel, line) for deterministic reports."""
        nodes = [self.functions[key] for key in self.hot]
        return sorted(nodes, key=lambda fn: (fn.rel, fn.node.lineno, fn.qualname))


def _dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def strongly_connected_components(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan's SCC algorithm, iterative (the tree is ~200 modules deep)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[Set[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                result.append(scc)
    return result
