"""Whole-program infrastructure for the deep lint pass (phase 1).

:class:`Project` turns the flat list of parsed modules the engine already
holds into the three structures the cross-module rules in
``tools.lint.xrules`` need:

* a **module map** — repo-relative path -> :class:`ModuleInfo`, with each
  file resolved to its dotted module name (``src/repro/core/ranges.py``
  -> ``repro.core.ranges``, ``tests/test_lint.py`` -> ``tests.test_lint``);
* an **import graph** — directed edges between project modules, split
  into top-level imports (which execute at import time and can deadlock
  in a cycle) and deferred function-body imports (which cannot);
* a **symbol table** — every top-level def/class/assignment per module,
  its ``__all__`` exports, and the cross-module *references*: from-import
  bindings, dotted attribute reads through imported module aliases, and
  star-imports.  Package ``__init__`` re-exports are recorded as aliases
  so that reachability propagates through ``repro -> repro.core ->
  repro.core.ranges`` chains instead of counting the re-export itself as
  a use.

Everything here is derived purely from the ASTs the engine parsed — no
project code is imported, so a broken module cannot break the analyzer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "module_name_for",
    "ImportEdge",
    "SymbolDef",
    "ModuleInfo",
    "Project",
    "strongly_connected_components",
]

#: Path prefixes stripped when mapping a file to its dotted module name.
_SRC_PREFIXES = ("src/",)


def module_name_for(rel: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/`` is a roots-only directory, so it is stripped; every other
    top-level directory (``tools``, ``tests``, ``benchmarks``, ...) is
    part of the name.  ``__init__.py`` maps to the package itself.
    """
    rel = rel.replace("\\", "/")
    for prefix in _SRC_PREFIXES:
        if rel.startswith(prefix):
            rel = rel[len(prefix):]
            break
    if rel.endswith(".py"):
        rel = rel[:-3]
    if rel.endswith("/__init__"):
        rel = rel[: -len("/__init__")]
    return rel.replace("/", ".")


@dataclass(frozen=True)
class ImportEdge:
    """One import statement linking two project modules."""

    src: str
    dst: str
    line: int
    top_level: bool


@dataclass
class SymbolDef:
    """A top-level binding in one module."""

    name: str
    module: str
    line: int
    col: int
    kind: str  # "function" | "class" | "assign"
    node: ast.AST = field(repr=False, default=None)


class ModuleInfo:
    """Per-module slice of the project symbol table."""

    def __init__(self, rel: str, name: str, tree: ast.Module):
        self.rel = rel
        self.name = name
        self.tree = tree
        self.is_package = rel.endswith("__init__.py")
        #: Top-level bindings by name.
        self.symbols: Dict[str, SymbolDef] = {}
        #: Names listed in ``__all__`` -> the AST node of the list element.
        self.exports: Dict[str, ast.AST] = {}
        #: Local alias -> dotted module name (``import x.y as z``).
        self.module_aliases: Dict[str, str] = {}
        #: Local name -> (source module, source name) from ``from m import n``.
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: Modules star-imported by this one.
        self.star_imports: Set[str] = set()

    def package(self) -> str:
        """The package this module lives in (itself, for packages)."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


class Project:
    """The whole-program view: modules, import graph, references.

    ``modules`` maps repo-relative path -> an object with ``tree`` (the
    parsed AST) — the engine passes its ``ModuleSource`` instances
    directly.
    """

    def __init__(self, modules: Dict[str, "object"]):
        self.sources = dict(modules)
        self.modules: Dict[str, ModuleInfo] = {}
        #: dotted name -> ModuleInfo (reverse of the path map).
        self.by_name: Dict[str, ModuleInfo] = {}
        #: Optional set of repo-relative paths the per-module rule work is
        #: limited to (the --changed incremental mode); None = all.
        self.restrict: Optional[Set[str]] = None
        self.edges: List[ImportEdge] = []
        #: (module, symbol) pairs referenced from *other* modules.
        self.references: Set[Tuple[str, str]] = set()
        #: Re-export aliases: (pkg, name) -> (origin module, origin name).
        self.reexports: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for rel, source in sorted(self.sources.items()):
            info = ModuleInfo(rel, module_name_for(rel), source.tree)
            self.modules[rel] = info
            self.by_name[info.name] = info
        for info in self.modules.values():
            self._collect_symbols(info)
            self._collect_imports(info)
        for info in self.modules.values():
            self._collect_references(info)
        self._propagate_reexports()

    # -- construction ----------------------------------------------------------

    def _collect_symbols(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.symbols[node.name] = SymbolDef(
                    node.name, info.name, node.lineno, node.col_offset, "function", node)
            elif isinstance(node, ast.ClassDef):
                info.symbols[node.name] = SymbolDef(
                    node.name, info.name, node.lineno, node.col_offset, "class", node)
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    for name_node in self._target_names(tgt):
                        info.symbols[name_node.id] = SymbolDef(
                            name_node.id, info.name, node.lineno,
                            node.col_offset, "assign", node)
                if any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets):
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                                info.exports[elt.value] = elt
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                info.symbols[node.target.id] = SymbolDef(
                    node.target.id, info.name, node.lineno, node.col_offset,
                    "assign", node)

    @staticmethod
    def _target_names(tgt: ast.AST) -> Iterator[ast.Name]:
        if isinstance(tgt, ast.Name):
            yield tgt
        elif isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                if isinstance(elt, ast.Name):
                    yield elt

    def _resolve_relative(self, info: ModuleInfo, level: int, module: Optional[str]) -> Optional[str]:
        """Resolve a ``from ...x import y`` to an absolute dotted name."""
        if level == 0:
            return module
        base = info.name.split(".")
        if not info.is_package:
            base = base[:-1]
        drop = level - 1
        if drop > len(base):
            return None
        if drop:
            base = base[:-drop]
        if module:
            base = base + module.split(".")
        return ".".join(base) if base else None

    def _collect_imports(self, info: ModuleInfo) -> None:
        top_level_nodes = set(map(id, info.tree.body))
        for node in ast.walk(info.tree):
            top = id(node) in top_level_nodes
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.name
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.asname:
                        info.module_aliases[bound] = target
                    else:
                        # ``import a.b.c`` binds ``a``; dotted reads start there
                        info.module_aliases.setdefault(bound, target.split(".")[0])
                    self._add_edge(info, target, node.lineno, top)
            elif isinstance(node, ast.ImportFrom):
                source = self._resolve_relative(info, node.level, node.module)
                if source is None:
                    continue
                self._add_edge(info, source, node.lineno, top)
                for alias in node.names:
                    if alias.name == "*":
                        if source in self.by_name:
                            info.star_imports.add(source)
                        continue
                    sub = "%s.%s" % (source, alias.name)
                    if sub in self.by_name:
                        # ``from pkg import mod`` — a module binding
                        info.module_aliases[alias.asname or alias.name] = sub
                        self._add_edge(info, sub, node.lineno, top)
                    else:
                        info.from_imports[alias.asname or alias.name] = (source, alias.name)

    def _add_edge(self, info: ModuleInfo, target: str, line: int, top: bool) -> None:
        if target in self.by_name and target != info.name:
            self.edges.append(ImportEdge(info.name, target, line, top))

    def _collect_references(self, info: ModuleInfo) -> None:
        """Record (module, symbol) uses this module makes of other modules."""
        is_reexport_pkg = info.is_package
        for name, (source, orig) in info.from_imports.items():
            if source not in self.by_name:
                continue
            if is_reexport_pkg and name in info.exports:
                # re-export: reachability flows through the package name
                self.reexports[(info.name, name)] = (source, orig)
            else:
                self.references.add((source, orig))
        for source in info.star_imports:
            origin = self.by_name.get(source)
            if origin is not None:
                for exported in origin.exports:
                    self.references.add((source, exported))
        # dotted reads through module aliases: ``alias.attr`` / ``alias.sub.attr``
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _dotted_chain(node)
            if chain is None or len(chain) < 2:
                continue
            root_target = info.module_aliases.get(chain[0])
            if root_target is None:
                continue
            resolved = root_target.split(".") + list(chain[1:])
            # longest module prefix wins; the next component is the symbol
            for cut in range(len(resolved) - 1, 0, -1):
                mod = ".".join(resolved[:cut])
                if mod in self.by_name and mod != info.name:
                    self.references.add((mod, resolved[cut]))
                    break

    def _propagate_reexports(self) -> None:
        """Close references over ``__init__`` re-export aliases."""
        changed = True
        while changed:
            changed = False
            for (pkg, name), (source, orig) in self.reexports.items():
                if (pkg, name) in self.references and (source, orig) not in self.references:
                    self.references.add((source, orig))
                    changed = True

    # -- queries ---------------------------------------------------------------

    def active_modules(self) -> List[Tuple[str, ModuleInfo]]:
        """(rel, info) pairs the per-module rule work should cover, sorted.

        Honours :attr:`restrict` — the incremental mode's contract is
        that skipped modules' findings come from the violation cache, so
        rules iterating this list stay exact while doing less work.
        """
        items = sorted(self.modules.items())
        if self.restrict is None:
            return items
        return [(rel, info) for rel, info in items if rel in self.restrict]

    def import_graph(self, top_level_only: bool = True) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {name: set() for name in self.by_name}
        for edge in self.edges:
            if top_level_only and not edge.top_level:
                continue
            graph[edge.src].add(edge.dst)
        return graph

    def import_cycles(self) -> List[List[str]]:
        """Cycles among *top-level* imports (sorted, deterministic)."""
        graph = self.import_graph(top_level_only=True)
        cycles = [sorted(scc) for scc in strongly_connected_components(graph)
                  if len(scc) > 1 or (len(scc) == 1 and next(iter(scc)) in graph[next(iter(scc))])]
        return sorted(cycles)

    def edge_line(self, src: str, dst_candidates: Iterable[str]) -> int:
        """Line of the first top-level import from ``src`` into the set."""
        wanted = set(dst_candidates)
        lines = [e.line for e in self.edges
                 if e.src == src and e.top_level and e.dst in wanted]
        return min(lines) if lines else 1

    def is_referenced(self, module: str, symbol: str) -> bool:
        return (module, symbol) in self.references

    def resolve_callee(self, info: ModuleInfo, func: ast.AST) -> Optional[SymbolDef]:
        """Resolve a call target to a project-level function/class def."""
        if isinstance(func, ast.Name):
            local = info.symbols.get(func.id)
            if local is not None and local.kind in ("function", "class"):
                return local
            imported = info.from_imports.get(func.id)
            if imported is not None:
                source, orig = imported
                origin = self.by_name.get(source)
                if origin is not None:
                    return origin.symbols.get(orig)
            return None
        if isinstance(func, ast.Attribute):
            chain = _dotted_chain(func)
            if chain is None or len(chain) < 2:
                return None
            root_target = info.module_aliases.get(chain[0])
            if root_target is None:
                return None
            resolved = root_target.split(".") + list(chain[1:])
            for cut in range(len(resolved) - 1, 0, -1):
                mod = ".".join(resolved[:cut])
                origin = self.by_name.get(mod)
                if origin is not None and cut == len(resolved) - 1:
                    return origin.symbols.get(resolved[cut])
        return None


def _dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def strongly_connected_components(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan's SCC algorithm, iterative (the tree is ~200 modules deep)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[Set[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                result.append(scc)
    return result
