"""Shard-safety rules: the ``repro lint --shard-safety`` pass.

ROADMAP item 1 shards N = 100 → 10k seeded vehicle tunnels across
worker processes, one event loop per shard.  That replication is only
sound if no hidden module-level mutable state, cross-loop object
leakage, or unseeded RNG provenance can make shards interfere or
diverge.  Four cooperating passes over the deep pass's
:class:`~tools.lint.graph.Project` prove it statically:

* ``shard-mutable-global`` — module-level mutable state (dict/list/set
  globals, class-attribute caches, mutable default arguments, unbounded
  memo tables) **written from function bodies**.  Each find is either a
  leak hazard or must carry a ``# lint: shard-safe(<reason>)``
  justification pragma on its definition line.  Bounded
  ``@lru_cache(maxsize=N)`` memos of deterministic functions are
  auto-classified shard-safe (pure, derivable, bounded) and stay
  silent; ``maxsize=None`` / ``functools.cache`` are flagged as
  unbounded.
* ``shard-loop-ownership`` — objects constructed with an ``EventLoop``
  handle escaping into module globals or class attributes, and
  module-level loop construction (a process-wide singleton loop shared
  by every shard).  A simple intra-procedural taint pass: loop
  parameters and ``EventLoop(...)`` results taint every object
  constructed from them.
* ``shard-rng-provenance`` — every RNG must derive from
  ``repro.determinism.seeded_rng(...)`` **with a string derivation
  path** (``seeded_rng(seed, "uplink", path_id)``), so sub-streams
  cannot collide when thousands of components share one configured
  seed.  Flags label-free ``seeded_rng`` calls, mid-flight re-seeding
  (``rng.seed(...)``), and RNG objects escaping their component into
  module state.  (Ambient ``random.*`` and raw ``random.Random``
  construction are already enforced by the per-file rules
  ``no-unseeded-rng`` / ``no-raw-rng``, which run in the same pass.)
* ``shard-spawn-safety`` — lambdas, closures and local classes handed
  to ``multiprocessing`` / ``concurrent.futures`` boundaries
  (``executor.submit``, ``pool.map``, ``Process(target=...)``): they
  cannot be pickled into a worker, so the fleet runner would die at
  spawn time, not analysis time.

The ``# lint: shard-safe(<reason>)`` pragma is the classification
escape hatch for the mutable-global pass: it asserts the state is a
pure memo, derivable, or bounded — and the runtime state-leak guard
(``repro.sanitizer.stateguard``) keeps those assertions honest by
fingerprinting registered globals around seeded runs.  An empty reason
is itself a violation, mirroring ``bare-suppression``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .engine import ShardRule, Violation, register
from .graph import ModuleInfo, Project

__all__ = [
    "SHARD_SAFE_RE",
    "shard_safe_pragmas",
    "MutableGlobalRule",
    "LoopOwnershipRule",
    "RngProvenanceRule",
    "SpawnSafetyRule",
]

#: Shard rules cover the simulated tree; fixtures opt in via --all-rules.
SHARD_SCOPE = ("src/repro/",)

#: Justification pragma grammar: ``# lint: shard-safe(<reason>)``.
SHARD_SAFE_RE = re.compile(r"#\s*lint:\s*shard-safe\((?P<why>[^)]*)\)")

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop", "popitem",
    "clear", "extend", "insert", "remove", "discard", "popleft", "sort",
    "reverse", "__setitem__",
})

#: Callables whose result is a mutable container.
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter", "ChainMap",
})


def shard_safe_pragmas(lines) -> Dict[int, str]:
    """line -> justification text for every ``shard-safe(...)`` pragma."""
    out: Dict[int, str] = {}
    for i, line in enumerate(lines, start=1):
        m = SHARD_SAFE_RE.search(line)
        if m:
            out[i] = m.group("why").strip()
    return out


def _is_mutable_value(node: Optional[ast.AST]) -> bool:
    """Does this expression construct a mutable container?"""
    if node is None:
        return False
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_CTORS
    return False


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_stmts_ordered(body: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements in source/execution order, recursing into nested
    blocks (if/for/while/try/with bodies) but not into nested
    function/class scopes — those are analyzed on their own pass."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            yield from _walk_stmts_ordered(getattr(stmt, field, []))
        for handler in getattr(stmt, "handlers", []):
            yield from _walk_stmts_ordered(handler.body)


def _own_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Call nodes in *stmt*'s own expressions, excluding nested blocks
    (which :func:`_walk_stmts_ordered` visits as their own statements)."""
    for field, value in ast.iter_fields(stmt):
        if field in ("body", "orelse", "finalbody", "handlers"):
            continue
        for item in value if isinstance(value, list) else [value]:
            if isinstance(item, ast.AST):
                for node in ast.walk(item):
                    if isinstance(node, ast.Call):
                        yield node


def _module_lines(project: Project, rel: str):
    source = project.sources.get(rel)
    return getattr(source, "lines", []) or []


@register
class MutableGlobalRule(ShardRule):
    """Module-level mutable state written from function bodies.

    Each worker shard imports its own copy of every module, so a
    mutable global that functions write to silently diverges across
    shards (and across event loops within one process).  A global that
    is genuinely shard-safe — a pure memo, derivable from constants,
    bounded — must say so with ``# lint: shard-safe(<reason>)`` on its
    definition line; everything else is a state-leak hazard.
    """

    id = "shard-mutable-global"
    description = ("module-level mutable state (globals, class-attribute "
                   "caches, mutable default args, unbounded memo tables) "
                   "written from function bodies; classify with "
                   "'# lint: shard-safe(<reason>)' or move into an instance")
    scopes = SHARD_SCOPE

    def check_project(self, project: Project) -> Iterable[Violation]:
        # module -> {global name: definition node} for cross-module writes
        defs: Dict[str, Dict[str, ast.AST]] = {}
        for rel, info in sorted(project.modules.items()):
            defs[info.name] = self._mutable_globals(info)
        for rel, info in project.active_modules():
            pragmas = shard_safe_pragmas(_module_lines(project, rel))
            yield from self._check_module(project, rel, info, defs, pragmas)
            for line, why in sorted(pragmas.items()):
                if not why:
                    yield Violation(
                        self.id, rel, line, 0,
                        "shard-safe pragma without a reason; write "
                        "'# lint: shard-safe(<why this state cannot leak "
                        "across shards>)'")

    # -- collection ------------------------------------------------------------

    @staticmethod
    def _mutable_globals(info: ModuleInfo) -> Dict[str, ast.AST]:
        out: Dict[str, ast.AST] = {}
        for node in info.tree.body:
            if isinstance(node, ast.Assign):
                if _is_mutable_value(node.value):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name) and tgt.id != "__all__":
                            out[tgt.id] = node
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_mutable_value(node.value) and node.target.id != "__all__":
                    out[node.target.id] = node
        return out

    @staticmethod
    def _class_attr_caches(info: ModuleInfo) -> Dict[Tuple[str, str], ast.AST]:
        """(class name, attr) -> def node for mutable class attributes."""
        out: Dict[Tuple[str, str], ast.AST] = {}
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if isinstance(item, ast.Assign) and _is_mutable_value(item.value):
                    for tgt in item.targets:
                        if isinstance(tgt, ast.Name):
                            out[(node.name, tgt.id)] = item
                elif (isinstance(item, ast.AnnAssign)
                      and isinstance(item.target, ast.Name)
                      and _is_mutable_value(item.value)):
                    out[(node.name, item.target.id)] = item
        return out

    # -- write detection -------------------------------------------------------

    @staticmethod
    def _written_names(func: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        """(name, write node) for every mutation of a bare name in ``func``."""
        declared_global: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    # G[...] = v  /  G[...] += v
                    if isinstance(tgt, ast.Subscript) and isinstance(tgt.value, ast.Name):
                        yield tgt.value.id, node
                    # global G; G = v
                    elif isinstance(tgt, ast.Name) and tgt.id in declared_global:
                        yield tgt.id, node
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in _MUTATORS
                  and isinstance(node.func.value, ast.Name)):
                # G.append(v), G.update(...), ...
                yield node.func.value.id, node

    @staticmethod
    def _cross_module_writes(info: ModuleInfo) -> Iterator[Tuple[str, str, ast.AST]]:
        """(target module, global name, write node) for ``mod.G[...] = v`` etc."""
        for func in _iter_functions(info.tree):
            for node in ast.walk(func):
                chains: List[Tuple[Tuple[str, ...], ast.AST]] = []
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for tgt in targets:
                        if isinstance(tgt, ast.Subscript):
                            chain = _dotted(tgt.value)
                            if chain and len(chain) >= 2:
                                chains.append((chain, node))
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and node.func.attr in _MUTATORS):
                    chain = _dotted(node.func.value)
                    if chain and len(chain) >= 2:
                        chains.append((chain, node))
                for chain, write in chains:
                    root = info.module_aliases.get(chain[0])
                    if root is None:
                        continue
                    resolved = root.split(".") + list(chain[1:])
                    yield ".".join(resolved[:-1]), resolved[-1], write

    # -- per-module check ------------------------------------------------------

    def _check_module(self, project: Project, rel: str, info: ModuleInfo,
                      defs: Dict[str, Dict[str, ast.AST]],
                      pragmas: Dict[int, str]) -> Iterator[Violation]:
        mutable = defs.get(info.name, {})
        writes: Dict[str, List[ast.AST]] = {}
        for func in _iter_functions(info.tree):
            func_locals = self._local_bindings(func)
            for name, node in self._written_names(func):
                if name in mutable and name not in func_locals:
                    writes.setdefault(name, []).append(node)
        for name in sorted(writes):
            def_node = mutable[name]
            if def_node.lineno in pragmas and pragmas[def_node.lineno]:
                continue
            first = min(writes[name], key=lambda n: n.lineno)
            yield Violation(
                self.id, rel, def_node.lineno, def_node.col_offset,
                "module-level mutable global %r is written from %d function "
                "site(s) (first at line %d); each worker shard gets a "
                "diverging copy — justify with '# lint: shard-safe(<reason>)' "
                "or move the state into an instance"
                % (name, len(writes[name]), first.lineno))
        # cross-module writes are reported at the write site
        for target_mod, name, node in self._cross_module_writes(info):
            target = defs.get(target_mod, {})
            if name not in target:
                continue
            def_node = target[name]
            origin = project.by_name.get(target_mod)
            origin_lines = _module_lines(project, origin.rel) if origin else []
            origin_pragmas = shard_safe_pragmas(origin_lines)
            if def_node.lineno in origin_pragmas and origin_pragmas[def_node.lineno]:
                continue
            yield Violation(
                self.id, rel, node.lineno, node.col_offset,
                "write into module-level mutable global %s.%s from another "
                "module; cross-module state mutation cannot replicate "
                "safely across shards" % (target_mod, name))
        # class-attribute caches mutated through the class (or cls)
        for (cls_name, attr), def_node in sorted(
                self._class_attr_caches(info).items()):
            if def_node.lineno in pragmas and pragmas[def_node.lineno]:
                continue
            hit = self._class_attr_written(info, cls_name, attr)
            if hit is not None:
                yield Violation(
                    self.id, rel, def_node.lineno, def_node.col_offset,
                    "class-attribute cache %s.%s is mutated from a function "
                    "body (line %d); it is module state in disguise — "
                    "justify with '# lint: shard-safe(<reason>)' or make it "
                    "an instance attribute" % (cls_name, attr, hit.lineno))
        # mutable default arguments: a hidden cache shared across calls
        for func in _iter_functions(info.tree):
            args = func.args
            for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
                if not _is_mutable_value(default):
                    continue
                if default.lineno in pragmas and pragmas[default.lineno]:
                    continue
                yield Violation(
                    self.id, rel, default.lineno, default.col_offset,
                    "mutable default argument on %s() persists across calls "
                    "— a hidden module-level cache; default to None and "
                    "construct inside the function" % func.name)
        # unbounded memo decorators
        for func in _iter_functions(info.tree):
            for deco in func.decorator_list:
                verdict = self._memo_verdict(deco)
                if verdict is None:
                    continue
                if deco.lineno in pragmas and pragmas[deco.lineno]:
                    continue
                if func.lineno in pragmas and pragmas[func.lineno]:
                    continue
                yield Violation(
                    self.id, rel, deco.lineno, deco.col_offset,
                    "%s on %s(): an unbounded memo table grows without limit "
                    "and diverges per shard; use lru_cache(maxsize=N) "
                    "(bounded pure memos are auto-classified shard-safe)"
                    % (verdict, func.name))

    @staticmethod
    def _local_bindings(func: ast.AST) -> Set[str]:
        """Names bound locally in ``func`` (params + plain assignments)."""
        out: Set[str] = set()
        args = func.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            out.add(a.arg)
        if args.vararg:
            out.add(args.vararg.arg)
        if args.kwarg:
            out.add(args.kwarg.arg)
        declared_global: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        out.add(tgt.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    out.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    out.add(node.target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        out.add(item.optional_vars.id)
        return out - declared_global

    @staticmethod
    def _class_attr_written(info: ModuleInfo, cls_name: str,
                            attr: str) -> Optional[ast.AST]:
        """First function-body mutation of ``cls_name.attr`` (or ``cls.attr``)."""
        for func in _iter_functions(info.tree):
            for node in ast.walk(func):
                receiver = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for tgt in targets:
                        if (isinstance(tgt, ast.Subscript)
                                and isinstance(tgt.value, ast.Attribute)
                                and tgt.value.attr == attr):
                            receiver = tgt.value.value
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and node.func.attr in _MUTATORS
                      and isinstance(node.func.value, ast.Attribute)
                      and node.func.value.attr == attr):
                    receiver = node.func.value.value
                if (isinstance(receiver, ast.Name)
                        and receiver.id in (cls_name, "cls")):
                    return node
        return None

    @staticmethod
    def _memo_verdict(deco: ast.AST) -> Optional[str]:
        """Classify a memo decorator: None = silent, str = hazard label."""
        chain = _dotted(deco if not isinstance(deco, ast.Call) else deco.func)
        if chain is None:
            return None
        name = chain[-1]
        if name == "cache" and chain[0] in ("functools", "cache"):
            return "functools.cache"
        if name != "lru_cache":
            return None
        if not isinstance(deco, ast.Call):
            return None  # bare @lru_cache defaults to maxsize=128: bounded
        for kw in deco.keywords:
            if kw.arg == "maxsize":
                if isinstance(kw.value, ast.Constant) and kw.value.value is None:
                    return "lru_cache(maxsize=None)"
                return None  # explicit numeric bound: pure bounded memo
        if deco.args:
            if (isinstance(deco.args[0], ast.Constant)
                    and deco.args[0].value is None):
                return "lru_cache(None)"
            return None
        return None  # lru_cache() defaults to maxsize=128: bounded


#: Constructors whose result owns (or is) an event loop.
_LOOP_CTORS = frozenset({"EventLoop"})
#: Parameter/variable names that are loop handles by convention.
_LOOP_NAMES = frozenset({"loop", "event_loop"})


@register
class LoopOwnershipRule(ShardRule):
    """Event-loop-owned objects must not outlive or cross their loop.

    The fleet runner gives every shard its own event loop; an object
    constructed with a loop handle that escapes into a module global or
    a class attribute survives into the *next* loop instance (or is
    shared across concurrent loops in one process) — timers fire on a
    dead loop, sim clocks disagree, runs stop replaying.
    """

    id = "shard-loop-ownership"
    description = ("objects constructed with an EventLoop handle must not "
                   "be stored in module globals or class attributes, and "
                   "loops must not be constructed at module level")
    scopes = SHARD_SCOPE

    def check_project(self, project: Project) -> Iterable[Violation]:
        for rel, info in project.active_modules():
            # module-level loop construction: a process-wide singleton
            for node in info.tree.body:
                for call in self._calls_in_statement(node):
                    if self._is_loop_ctor(call):
                        yield Violation(
                            self.id, rel, call.lineno, call.col_offset,
                            "EventLoop constructed at module level is a "
                            "process-wide singleton shared by every shard; "
                            "construct one loop per shard inside the runner")
            for func in _iter_functions(info.tree):
                yield from self._check_function(rel, info, func)

    @staticmethod
    def _calls_in_statement(stmt: ast.AST) -> Iterator[ast.Call]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node

    @staticmethod
    def _is_loop_ctor(call: ast.Call) -> bool:
        chain = _dotted(call.func)
        return chain is not None and chain[-1] in _LOOP_CTORS

    def _check_function(self, rel: str, info: ModuleInfo,
                        func: ast.AST) -> Iterator[Violation]:
        mutable_globals = MutableGlobalRule._mutable_globals(info)
        tainted: Set[str] = set()
        args = func.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            if a.arg in _LOOP_NAMES:
                tainted.add(a.arg)
        declared_global: Set[str] = set()
        for stmt in _walk_stmts_ordered(func.body):
            if isinstance(stmt, ast.Global):
                declared_global.update(stmt.names)

        def value_tainted(node: ast.AST) -> bool:
            if isinstance(node, ast.Name):
                return node.id in tainted or node.id in _LOOP_NAMES
            if isinstance(node, ast.Attribute):
                return node.attr in _LOOP_NAMES
            if isinstance(node, ast.Call):
                if self._is_loop_ctor(node):
                    return True
                # an object constructed *with* a loop handle is loop-owned
                operands = list(node.args) + [kw.value for kw in node.keywords]
                return any(value_tainted(arg) for arg in operands)
            return False

        # single forward pass in true source order — nested blocks are
        # recursed where they appear, so reassignment untainting tracks
        # execution order on the straight-line idioms this heuristic
        # targets (BFS would visit a nested tainting assignment after a
        # later top-level untainting one, masking real escapes)
        for node in _walk_stmts_ordered(func.body):
            if isinstance(node, ast.Assign):
                is_tainted = value_tainted(node.value)
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        if tgt.id in declared_global and is_tainted:
                            yield Violation(
                                self.id, rel, node.lineno, node.col_offset,
                                "loop-owned object stored in module global "
                                "%r; it outlives its event loop and leaks "
                                "across shard reruns" % tgt.id)
                        elif is_tainted:
                            tainted.add(tgt.id)
                        else:
                            tainted.discard(tgt.id)
                    elif (isinstance(tgt, ast.Subscript)
                          and isinstance(tgt.value, ast.Name)
                          and tgt.value.id in mutable_globals
                          and is_tainted):
                        yield Violation(
                            self.id, rel, node.lineno, node.col_offset,
                            "loop-owned object stored in module-level "
                            "container %r; it outlives its event loop and "
                            "leaks across shard reruns" % tgt.value.id)
                    elif (isinstance(tgt, ast.Attribute)
                          and isinstance(tgt.value, ast.Name)
                          and tgt.value.id in info.symbols
                          and info.symbols[tgt.value.id].kind == "class"
                          and is_tainted):
                        yield Violation(
                            self.id, rel, node.lineno, node.col_offset,
                            "loop-owned object stored on class attribute "
                            "%s.%s; class state is shared across every loop "
                            "in the process" % (tgt.value.id, tgt.attr))
            for call in _own_calls(node):
                if (isinstance(call.func, ast.Attribute)
                        and call.func.attr in _MUTATORS
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id in mutable_globals):
                    operands = (list(call.args)
                                + [kw.value for kw in call.keywords])
                    if any(value_tainted(arg) for arg in operands):
                        yield Violation(
                            self.id, rel, call.lineno, call.col_offset,
                            "loop-owned object stored in module-level "
                            "container %r; it outlives its event loop and "
                            "leaks across shard reruns" % call.func.value.id)


#: Name pattern for RNG-holding locals/attributes.
_RNG_NAME = re.compile(r"(?:^|_)rng$|^rng", re.IGNORECASE)


@register
class RngProvenanceRule(ShardRule):
    """Every RNG derives from ``seeded_rng`` with a string derivation path.

    ``seeded_rng(seed)`` with no components is byte-equivalent to
    ``random.Random(seed)`` — so two components constructed from the
    same configured seed share one sequence, and a fleet of 10k tunnels
    seeded ``base + i`` can collide sub-streams across shards.  The
    derivation-path convention (``seeded_rng(seed, "uplink", path_id)``)
    makes provenance explicit and collision-free; this rule enforces it,
    bans mid-flight re-seeding, and keeps RNG objects from escaping
    their component into module state.
    """

    id = "shard-rng-provenance"
    description = ("seeded_rng(...) needs a string derivation path "
                   "(seeded_rng(seed, \"component\", ...)); re-seeding and "
                   "RNG objects escaping into module state are banned")
    scopes = SHARD_SCOPE
    #: The helper itself constructs the terminal RNG.
    exempt = ("src/repro/determinism.py",)

    _PROVIDER = ("repro.determinism", "seeded_rng")

    def _seeded_rng_names(self, info: ModuleInfo) -> Set[str]:
        names = {name for name, target in info.from_imports.items()
                 if target == self._PROVIDER}
        return names

    def _is_seeded_rng_call(self, info: ModuleInfo, call: ast.Call,
                            local_names: Set[str]) -> bool:
        if isinstance(call.func, ast.Name):
            return call.func.id in local_names
        chain = _dotted(call.func)
        if chain is None or chain[-1] != "seeded_rng":
            return False
        root = info.module_aliases.get(chain[0])
        if root is None:
            return chain[0] == "determinism"
        resolved = ".".join(root.split(".") + list(chain[1:-1]))
        return resolved == self._PROVIDER[0]

    def check_project(self, project: Project) -> Iterable[Violation]:
        for rel, info in project.active_modules():
            local_names = self._seeded_rng_names(info)
            mutable_globals = MutableGlobalRule._mutable_globals(info)
            rng_call_lines: Set[int] = set()
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                if self._is_seeded_rng_call(info, node, local_names):
                    rng_call_lines.add(node.lineno)
                    yield from self._check_derivation(rel, node)
            # module-level RNG construction: one stream for every shard
            for stmt in info.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                for node in ast.walk(stmt):
                    if (isinstance(node, ast.Call)
                            and self._is_seeded_rng_call(info, node, local_names)):
                        yield Violation(
                            self.id, rel, node.lineno, node.col_offset,
                            "RNG constructed at module level is one shared "
                            "stream for every shard in the process; derive "
                            "it inside the component that owns it")
            yield from self._check_reseed_and_escape(
                rel, info, local_names, mutable_globals)

    def _check_derivation(self, rel: str, call: ast.Call) -> Iterator[Violation]:
        operands = list(call.args) + [kw.value for kw in call.keywords]
        if len(operands) <= 1:
            yield Violation(
                self.id, rel, call.lineno, call.col_offset,
                "seeded_rng(seed) has no derivation path; two components "
                "sharing this seed share one sequence — pass string "
                "components (seeded_rng(seed, \"component\", idx))")
            return
        has_label = any(isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        for arg in operands[1:])
        if not has_label:
            yield Violation(
                self.id, rel, call.lineno, call.col_offset,
                "seeded_rng derivation path has no string label; numeric "
                "components alone can collide across component types — "
                "include a string tag (seeded_rng(seed, \"uplink\", idx))")

    def _check_reseed_and_escape(self, rel: str, info: ModuleInfo,
                                 local_names: Set[str],
                                 mutable_globals) -> Iterator[Violation]:
        for func in _iter_functions(info.tree):
            tainted: Set[str] = set()
            declared_global: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)

            def rng_like(node: ast.AST) -> bool:
                if isinstance(node, ast.Name):
                    return node.id in tainted or bool(_RNG_NAME.search(node.id))
                if isinstance(node, ast.Attribute):
                    return bool(_RNG_NAME.search(node.attr))
                if isinstance(node, ast.Call):
                    return self._is_seeded_rng_call(info, node, local_names)
                return False

            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    is_rng = rng_like(node.value)
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            if tgt.id in declared_global and is_rng:
                                yield Violation(
                                    self.id, rel, node.lineno, node.col_offset,
                                    "RNG object escapes its component into "
                                    "module global %r; shards would share "
                                    "one sequence" % tgt.id)
                            elif is_rng:
                                tainted.add(tgt.id)
                        elif (isinstance(tgt, ast.Subscript)
                              and isinstance(tgt.value, ast.Name)
                              and tgt.value.id in mutable_globals
                              and is_rng):
                            yield Violation(
                                self.id, rel, node.lineno, node.col_offset,
                                "RNG object escapes its component into "
                                "module-level container %r; shards would "
                                "share one sequence" % tgt.value.id)
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and node.func.attr == "seed"):
                    receiver = node.func.value
                    # random.seed(...) is the per-file rule's business
                    if isinstance(receiver, ast.Name) and receiver.id == "random":
                        continue
                    if rng_like(receiver):
                        yield Violation(
                            self.id, rel, node.lineno, node.col_offset,
                            "re-seeding an RNG mid-flight destroys its "
                            "derivation provenance; derive a fresh "
                            "sub-stream with seeded_rng(seed, ...) instead")


#: Executor/pool method names that cross a process boundary.
_SPAWN_METHODS = frozenset({
    "submit", "map", "starmap", "apply", "apply_async", "map_async",
    "starmap_async", "imap", "imap_unordered",
})
#: Receiver-name pattern recognising executors and pools.
_EXECUTOR_NAME = re.compile(r"(pool|executor|exec)", re.IGNORECASE)
_EXECUTOR_CTORS = frozenset({
    "ProcessPoolExecutor", "ThreadPoolExecutor", "Pool",
})


@register
class SpawnSafetyRule(ShardRule):
    """Nothing unpicklable may cross a worker-process boundary.

    ``multiprocessing`` and ``concurrent.futures`` pickle the callable
    and its arguments into the worker; lambdas, closures (functions
    defined inside a function) and local classes fail at spawn time —
    on the 10k-tunnel fleet run, not in the unit tests.  This pass
    rejects them at the call site.
    """

    id = "shard-spawn-safety"
    description = ("lambdas, closures, and local classes cannot be pickled "
                   "across multiprocessing/concurrent.futures boundaries "
                   "(executor.submit/map, Pool.map, Process(target=...))")
    scopes = SHARD_SCOPE

    def check_project(self, project: Project) -> Iterable[Violation]:
        for rel, info in project.active_modules():
            module_level = set(info.symbols)
            for func in _iter_functions(info.tree):
                nested_defs = {
                    n.name for n in ast.walk(func)
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef))
                    and n is not func
                }
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    for payload in self._boundary_payloads(node):
                        yield from self._check_payload(
                            rel, payload, nested_defs, module_level)

    @staticmethod
    def _boundary_payloads(call: ast.Call) -> Iterator[ast.AST]:
        """Expressions this call would pickle into a worker process."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _SPAWN_METHODS:
            receiver = func.value
            is_executor = False
            if isinstance(receiver, ast.Name):
                is_executor = bool(_EXECUTOR_NAME.search(receiver.id))
            elif isinstance(receiver, ast.Attribute):
                is_executor = bool(_EXECUTOR_NAME.search(receiver.attr))
            elif isinstance(receiver, ast.Call):
                chain = _dotted(receiver.func)
                is_executor = chain is not None and chain[-1] in _EXECUTOR_CTORS
            if is_executor:
                yield from call.args
                for kw in call.keywords:
                    yield kw.value
            return
        chain = _dotted(func)
        if chain is not None and chain[-1] == "Process":
            for kw in call.keywords:
                if kw.arg in ("target", "args", "kwargs"):
                    yield kw.value

    def _check_payload(self, rel: str, payload: ast.AST,
                       nested_defs: Set[str],
                       module_level: Set[str]) -> Iterator[Violation]:
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                yield Violation(
                    self.id, rel, node.lineno, node.col_offset,
                    "lambda crosses a worker-process boundary; it cannot be "
                    "pickled — use a module-level function")
            elif (isinstance(node, ast.Name)
                  and node.id in nested_defs
                  and node.id not in module_level):
                yield Violation(
                    self.id, rel, node.lineno, node.col_offset,
                    "%r is defined inside the enclosing function; closures "
                    "and local classes cannot be pickled across the "
                    "worker-process boundary — move it to module level"
                    % node.id)
