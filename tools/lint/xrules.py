"""Cross-module (deep) lint rules: the ``repro lint --deep`` pass.

These rules see the whole program at once — the import graph, the
project symbol table, and the units dataflow of :mod:`tools.lint.graph`
and :mod:`tools.lint.dataflow` — so they catch the bug classes a
per-file pass cannot:

* ``import-cycle`` — top-level import cycles (deferred function-body
  imports are exempt: they cannot deadlock at import time);
* ``dead-public-api`` — a name in ``__all__`` that no other module in
  the project (src, tools, tests, benchmarks, examples) references;
* ``unit-mix`` — arithmetic, comparisons, or resolved call arguments
  mixing two different concrete units (sim-seconds vs milliseconds,
  bytes vs packets, ...);
* ``except-hygiene`` — a broad ``except Exception:`` (or bare
  ``except:``) in sim code that neither re-raises nor records the
  failure through telemetry/logging — the pattern that silently eats
  protocol bugs in hot paths;
* ``constant-drift`` — any config default or dataclass field whose
  value contradicts the paper-constants registry
  (:mod:`tools.lint.constants`);
* ``span-lifecycle`` — causal-span discipline (:mod:`repro.obs.spans`):
  a span opened with its id discarded can never be closed, and a
  function that opens/closes spans must not read the wall clock (span
  timestamps are sim-clock by contract, or replays stop being
  byte-identical).

Deep rules run only under ``repro lint --deep``; they share the engine's
scoping, suppression, and output machinery with the per-file rules.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .constants import REGISTRY, check_project_constants
from .dataflow import analyze_module_units
from .engine import DeepRule, Violation, register
from .graph import Project

__all__ = [
    "ImportCycleRule",
    "DeadPublicApiRule",
    "UnitMixRule",
    "ExceptHygieneRule",
    "ConstantDriftRule",
    "SpanLifecycleRule",
]

#: Deep rules cover the simulated tree; fixtures opt in via --all-rules.
DEEP_SCOPE = ("src/repro/",)


@register
class ImportCycleRule(DeepRule):
    """Top-level import cycles deadlock or import half-initialised modules."""

    id = "import-cycle"
    description = ("modules importing each other at top level form an "
                   "import-time cycle; defer one import into the function "
                   "that needs it")
    scopes = DEEP_SCOPE

    def check_project(self, project: Project) -> Iterable[Violation]:
        for cycle in project.import_cycles():
            members = " -> ".join(cycle + [cycle[0]])
            for name in cycle:
                info = project.by_name[name]
                line = project.edge_line(name, set(cycle) - {name} or {name})
                yield Violation(self.id, info.rel, line, 0,
                                "top-level import cycle: %s" % members)


@register
class DeadPublicApiRule(DeepRule):
    """``__all__`` entries nothing else in the project references."""

    id = "dead-public-api"
    description = ("a name exported via __all__ but referenced by no other "
                   "module (src or tests) is dead API surface; drop the "
                   "export or add the missing consumer")
    scopes = DEEP_SCOPE

    #: The paper-constants registry anchors canonical definitions by name
    #: (tools/lint/constants.py); those exports are the contract itself
    #: and count as referenced even when no module imports them.
    _REGISTRY_ANCHORS = frozenset(
        anchor for const in REGISTRY for anchor in const.anchors)

    def check_project(self, project: Project) -> Iterable[Violation]:
        for rel, info in project.active_modules():
            if info.is_package:
                # package __init__ exports are curated re-export surface;
                # reachability through them is propagated to the origin
                # modules, which is where dead symbols are reported
                continue
            for name, node in sorted(info.exports.items()):
                if name == "__version__":
                    continue
                if (info.name, name) in self._REGISTRY_ANCHORS:
                    continue
                if project.is_referenced(info.name, name):
                    continue
                yield Violation(
                    self.id, rel, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0),
                    "__all__ exports %r but no other module references it" % name)


@register
class UnitMixRule(DeepRule):
    """Mixed units of measure in arithmetic, comparison, or call args."""

    id = "unit-mix"
    description = ("two different concrete units (sim-seconds, milliseconds, "
                   "bytes, packets, GF-symbols) met in +/-, a comparison, or "
                   "a resolved call argument")
    scopes = DEEP_SCOPE

    def check_project(self, project: Project) -> Iterable[Violation]:
        for rel, info in project.active_modules():
            for c in analyze_module_units(project, info):
                yield Violation(
                    self.id, rel, c.line, c.col,
                    "%s mixes units %s and %s (%s); convert explicitly at "
                    "the boundary" % (c.kind, c.left, c.right, c.detail))


@register
class ExceptHygieneRule(DeepRule):
    """Broad exception handlers that swallow failures silently."""

    id = "except-hygiene"
    description = ("'except Exception:' (or bare 'except:') in sim code must "
                   "re-raise or record the failure (telemetry count/event or "
                   "logging); otherwise narrow it to the concrete types")
    scopes = DEEP_SCOPE

    _RECORDERS = {
        # telemetry surface
        "count", "event", "observe", "set_gauge",
        # logging surface
        "debug", "info", "warning", "error", "exception", "critical", "log",
        # sanitizer breach reporting
        "_fail",
    }

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        for t in types:
            if isinstance(t, ast.Name) and t.id in ("Exception", "BaseException"):
                return True
        return False

    def _records_failure(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._RECORDERS):
                return True
        return False

    def check_project(self, project: Project) -> Iterable[Violation]:
        for rel, info in project.active_modules():
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if self._is_broad(node) and not self._records_failure(node):
                    yield Violation(
                        self.id, rel, node.lineno, node.col_offset,
                        "broad exception handler neither re-raises nor "
                        "records the failure; narrow it to the concrete "
                        "exception types (or re-raise + telemetry-count)")


@register
class SpanLifecycleRule(DeepRule):
    """Causal-span lifecycle discipline (see repro.obs.spans).

    Two breach shapes:

    * a statement-position ``sp.open(...)`` whose span id is discarded —
      that span can never be closed, so it survives only as a ``cut``
      leftover at ``finish()`` and poisons the containment invariants;
    * a wall-clock read inside a function that opens/closes/annotates
      spans — span timestamps are sim-clock by contract, and a single
      ``time.time()`` fed into ``open``/``close`` breaks the
      byte-identical-replay guarantee the span tests pin.
    """

    id = "span-lifecycle"
    description = ("span opens must keep the id (sid = sp.open(...)) so the "
                   "span can be closed, and span-handling functions must not "
                   "read the wall clock (span timestamps are sim-clock)")
    scopes = DEEP_SCOPE

    #: SpanRecorder's lifecycle surface, used to recognise span-handling
    #: receivers (``sp`` / ``spans`` locals or any ``.spans`` attribute).
    _SPAN_METHODS = frozenset(
        {"open", "close", "instant", "annotate", "finish", "bind"})
    _WALL_CLOCK = frozenset({
        ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
        ("time", "time_ns"), ("time", "monotonic_ns"),
        ("time", "process_time"),
    })
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    @staticmethod
    def _is_span_receiver(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("sp", "spans")
        if isinstance(node, ast.Attribute):
            return node.attr == "spans"
        return False

    def _span_calls(self, func: ast.AST) -> Iterable[ast.Call]:
        for node in ast.walk(func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._SPAN_METHODS
                    and self._is_span_receiver(node.func.value)):
                yield node

    def _dotted(self, node: ast.AST):
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        return None

    def check_project(self, project: Project) -> Iterable[Violation]:
        for rel, info in project.active_modules():
            # breach 1: statement-position open() discards the span id
            for node in ast.walk(info.tree):
                if not (isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Attribute)
                        and node.value.func.attr == "open"
                        and self._is_span_receiver(node.value.func.value)):
                    continue
                yield Violation(
                    self.id, rel, node.lineno, node.col_offset,
                    "span opened but its id is discarded — it can never be "
                    "closed; keep it (sid = sp.open(...)) or use instant() "
                    "for zero-duration marks")
            # breach 2: wall-clock reads inside span-handling functions
            for func in ast.walk(info.tree):
                if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not any(True for _ in self._span_calls(func)):
                    continue
                for node in func.body:
                    for call in ast.walk(node):
                        if not isinstance(call, ast.Call):
                            continue
                        chain = self._dotted(call.func)
                        if chain is None:
                            continue
                        if chain in self._WALL_CLOCK or (
                                chain[-1] in self._DATETIME_ATTRS
                                and any(p in ("datetime", "date")
                                        for p in chain[:-1])):
                            yield Violation(
                                self.id, rel, call.lineno, call.col_offset,
                                "wall-clock read %s() in a span-handling "
                                "function; span timestamps must come from "
                                "the sim clock (loop.now) or replays stop "
                                "being byte-identical" % ".".join(chain))


@register
class ConstantDriftRule(DeepRule):
    """Defaults contradicting the paper-constants registry."""

    id = "constant-drift"
    description = ("a config default or dataclass field drifts from the "
                   "XNC contract declared in tools/lint/constants.py "
                   "(t_expire, n'=n+3, rho, GF(2^8), XNC_Header, loss "
                   "threshold, range borders)")
    scopes = DEEP_SCOPE

    def check_project(self, project: Project) -> Iterable[Violation]:
        for f in check_project_constants(project):
            yield Violation(self.id, f.rel, f.line, f.col, f.message)
