"""Repo-native lint rules for the CellFusion reproduction.

Every figure in the evaluation depends on two properties the type system
cannot see: **sim-clock purity** (no wall-clock reads inside the
simulated transport — PR 1's idle-timer spin was exactly this class of
bug) and **seeded randomness** (same seed, same packets, same figure).
These rules machine-check both, plus the telemetry null-singleton guard
discipline and the public-API hygiene (`__all__`) that keeps
`from repro.x import *` and the docs honest.

Adding a rule: subclass :class:`~tools.lint.engine.Rule`, implement
``check``, decorate with :func:`~tools.lint.engine.register` — see
``no-wall-clock`` below for the canonical ~20-line shape.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional, Tuple

from .engine import ModuleSource, Rule, Violation, register

__all__ = [
    "dotted_name",
    "WallClockRule",
    "UnseededRngRule",
    "RawRngRule",
    "FloatTimeEqRule",
    "TelemetryGuardRule",
    "ModuleAllRule",
]

#: The deterministic-core scope: everything the event loop simulates.
SIM_SCOPE = ("src/repro/",)


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Resolve ``a.b.c`` attribute chains to ('a', 'b', 'c'), else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


@register
class WallClockRule(Rule):
    """Wall-clock reads poison the sim clock: ``loop.now`` is the only time."""

    id = "no-wall-clock"
    description = ("time.time/monotonic/perf_counter and datetime.now are "
                   "banned in src/repro/ — simulated code reads loop.now")
    scopes = SIM_SCOPE

    _BANNED = {
        ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
        ("time", "time_ns"), ("time", "monotonic_ns"), ("time", "process_time"),
    }
    _DATETIME_ATTRS = {"now", "utcnow", "today"}

    def check(self, module: ModuleSource) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            if chain in self._BANNED:
                yield self.violation(module, node,
                                     "wall-clock read %s(); use the event-loop "
                                     "sim clock (loop.now)" % ".".join(chain))
            elif (chain[-1] in self._DATETIME_ATTRS
                  and any(p in ("datetime", "date") for p in chain[:-1])):
                yield self.violation(module, node,
                                     "wall-clock read %s(); sim code must be "
                                     "reproducible" % ".".join(chain))


@register
class UnseededRngRule(Rule):
    """Global/unseeded RNG makes runs unreproducible across processes."""

    id = "no-unseeded-rng"
    description = ("module-level random.* calls, argless random.Random() and "
                   "argless numpy default_rng() are banned in src/repro/")
    scopes = SIM_SCOPE

    _GLOBAL_FNS = {
        "random", "randrange", "randint", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
        "expovariate", "betavariate", "gammavariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes", "seed",
    }
    _NP_FNS = {
        "rand", "randn", "randint", "random", "choice", "shuffle",
        "permutation", "seed", "random_sample", "standard_normal",
    }

    def check(self, module: ModuleSource) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            if len(chain) == 2 and chain[0] == "random" and chain[1] in self._GLOBAL_FNS:
                yield self.violation(module, node,
                                     "global-RNG call random.%s(); use a seeded "
                                     "repro.determinism.seeded_rng instance" % chain[1])
            elif chain == ("random", "Random") and not node.args and not node.keywords:
                yield self.violation(module, node,
                                     "argless random.Random() seeds from the OS; "
                                     "pass an explicit seed via seeded_rng")
            elif (len(chain) == 3 and chain[0] in ("np", "numpy")
                  and chain[1] == "random"):
                if chain[2] in self._NP_FNS:
                    yield self.violation(module, node,
                                         "global numpy RNG call %s(); use "
                                         "default_rng(seed)" % ".".join(chain))
                elif chain[2] == "default_rng" and not node.args and not node.keywords:
                    yield self.violation(module, node,
                                         "argless default_rng() seeds from the OS; "
                                         "pass an explicit seed")


@register
class RawRngRule(Rule):
    """Seeded RNGs must come from the one audited construction helper."""

    id = "no-raw-rng"
    description = ("direct random.Random(seed) construction is banned in "
                   "src/repro/ — use repro.determinism.seeded_rng so the "
                   "seeding discipline stays in one place")
    scopes = SIM_SCOPE

    def check(self, module: ModuleSource) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) == ("random", "Random") and (node.args or node.keywords):
                yield self.violation(module, node,
                                     "construct RNGs via "
                                     "repro.determinism.seeded_rng(seed, ...) "
                                     "instead of random.Random(...)")


@register
class FloatTimeEqRule(Rule):
    """Float equality on sim timestamps is a determinism landmine."""

    id = "no-float-time-eq"
    description = ("== / != between sim timestamps (or a timestamp and a "
                   "float literal) — compare with <, >, or a tolerance")
    scopes = SIM_SCOPE

    _TIME_NAME = re.compile(
        r"(?:^|_)(now|time|timestamp|ts|deadline|expiry|expires?)$|(?:_time|_at|_ts)$"
    )

    def _time_like(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return bool(self._TIME_NAME.search(node.id))
        if isinstance(node, ast.Attribute):
            return bool(self._TIME_NAME.search(node.attr))
        return False

    def _numeric_literal(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self._numeric_literal(node.operand)
        return False

    def check(self, module: ModuleSource) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                a, b = operands[i], operands[i + 1]
                if (self._time_like(a) and (self._time_like(b) or self._numeric_literal(b))) or \
                        (self._time_like(b) and self._numeric_literal(a)):
                    yield self.violation(module, node,
                                         "float equality on a sim timestamp; "
                                         "use an ordering comparison or a "
                                         "tolerance window")


@register
class TelemetryGuardRule(Rule):
    """Telemetry hot-path calls must sit behind the null-singleton guard.

    The disabled-overhead budget (tools/check_telemetry_overhead.py)
    assumes every ``tel.event/count/observe/set_gauge`` call site is
    guarded by ``if tel.enabled:`` (or an enclosing ``is not None`` check
    on an optional handle), so the disabled cost is one branch — an
    unguarded site pays kwargs construction even when telemetry is off.
    """

    id = "telemetry-guard"
    description = ("telemetry event/count/observe/set_gauge calls need an "
                   "enclosing 'if tel.enabled:' (or 'is not None') guard")
    scopes = SIM_SCOPE
    exempt = ("src/repro/obs/",)

    _METHODS = {"event", "count", "observe", "set_gauge"}

    def _is_telemetry_receiver(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("tel", "telemetry")
        if isinstance(node, ast.Attribute):
            return node.attr in ("telemetry", "tel")
        return False

    def _test_guards(self, test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
            if isinstance(sub, ast.Compare):
                ops_none = any(isinstance(o, (ast.Is, ast.IsNot)) for o in sub.ops)
                mentions_none = any(
                    isinstance(c, ast.Constant) and c.value is None
                    for c in [sub.left] + list(sub.comparators)
                )
                if ops_none and mentions_none:
                    return True
        return False

    def check(self, module: ModuleSource) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in self._METHODS:
                continue
            if not self._is_telemetry_receiver(node.func.value):
                continue
            guarded = any(
                isinstance(anc, (ast.If, ast.IfExp)) and self._test_guards(anc.test)
                for anc in module.ancestors(node)
            )
            if not guarded:
                yield self.violation(module, node,
                                     "unguarded telemetry call .%s(); wrap in "
                                     "'if tel.enabled:' so the disabled path "
                                     "stays one branch" % node.func.attr)


@register
class ModuleAllRule(Rule):
    """Public modules declare their API with ``__all__`` (and keep it honest)."""

    id = "module-all"
    description = ("modules defining public top-level names need __all__, "
                   "and every __all__ entry must exist")
    scopes = SIM_SCOPE

    def _top_level_bindings(self, tree: ast.Module) -> set:
        names = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
                    elif isinstance(tgt, ast.Tuple):
                        names.update(e.id for e in tgt.elts if isinstance(e, ast.Name))
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.ImportFrom):
                names.update(a.asname or a.name for a in node.names if a.name != "*")
            elif isinstance(node, ast.Import):
                names.update((a.asname or a.name).split(".")[0] for a in node.names)
        return names

    def check(self, module: ModuleSource) -> Iterable[Violation]:
        basename = module.rel.rsplit("/", 1)[-1]
        if basename == "__main__.py":
            return
        bindings = self._top_level_bindings(module.tree)
        all_node = None
        for node in module.tree.body:
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets)):
                all_node = node
        defines_public = any(
            isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Assign, ast.AnnAssign))
            and any(not name.startswith("_") for name in self._node_names(n))
            for n in module.tree.body
        )
        if all_node is None:
            if defines_public:
                yield Violation(self.id, module.rel, 1, 0,
                                "module defines public names but no __all__")
            return
        if isinstance(all_node.value, (ast.List, ast.Tuple)):
            for elt in all_node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    if elt.value not in bindings and elt.value != "__version__":
                        yield self.violation(module, elt,
                                             "__all__ lists %r which is not "
                                             "defined at top level" % elt.value)

    @staticmethod
    def _node_names(node: ast.AST):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return [node.name]
        if isinstance(node, ast.Assign):
            out = []
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out.append(tgt.id)
                elif isinstance(tgt, ast.Tuple):
                    out.extend(e.id for e in tgt.elts if isinstance(e, ast.Name))
            return out
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            return [node.target.id]
        return []
