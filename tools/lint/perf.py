"""Hot-path performance rules: the ``repro lint --perf`` pass.

CellFusion's data plane must sustain per-packet encode/recode/decode at
line rate (§5); PR 4 bought 2.66× on that path largely by deleting
per-packet allocation churn and slow idioms, and ROADMAP item 2 demands
the next order of magnitude.  Nothing structural stopped a later change
from re-introducing those costs — so this pass makes hot-path cost a
statically checked property, the way determinism, paper constants and
shard safety already are.

The pass runs over the deep pass's single-parse
:class:`~tools.lint.graph.Project` plus its static call graph
(:meth:`Project.call_graph`).  **Hotness** is seeded from the bench
suite entry points (every function in ``tools.bench.suites``) and from
the explicit ``@hot_path`` registry (``repro.hotpath``), then propagated
transitively along resolvable call edges — every function reachable
from a packet-rate loop is analyzed.  Four cooperating rules cover the
cost classes:

* ``alloc-in-hot-loop`` — object/list/dict/tuple construction,
  comprehensions, lambda/closure creation, bytes concatenation and
  f-string/``%`` formatting inside loops of hot functions;
* ``slow-idiom`` — ``list.pop(0)``, membership tests on lists,
  non-precompiled ``struct.pack``/``struct.unpack``, repeated multi-hop
  attribute chains in loop bodies, try/except inside tight loops;
* ``hidden-quadratic`` — ``+=`` on list/bytes/str accumulators in
  loops, and nested iteration over the same collection;
* ``unguarded-hot-call`` — hot code calling logging/span/telemetry
  APIs without the null-singleton or enabled-flag guard the obs layer
  provides (the per-file ``telemetry-guard`` rule already covers
  ``tel.event/count/observe/set_gauge`` everywhere; this rule covers
  the remaining observability surfaces, only on hot paths).

Each finding is suppressible only via a mandatory-reason pragma on the
flagged line, mirroring ``shard-safe``::

    acc = bytearray(width)  # lint: hot-ok(one buffer per encode call, reused across rows)

An empty reason is itself a violation.  The runtime complement is the
bench harness's ``allocs_per_op`` gate (``tools/bench`` schema v2):
these rules catch transient churn the allocator statistics cannot see,
the gate catches retention growth the AST cannot see.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .engine import PerfRule, Violation, register
from .graph import CallGraph, FuncNode, ModuleInfo, Project

__all__ = [
    "HOT_OK_RE",
    "hot_ok_pragmas",
    "AllocInHotLoopRule",
    "SlowIdiomRule",
    "HiddenQuadraticRule",
    "UnguardedHotCallRule",
]

#: Perf rules cover the simulated tree; fixtures opt in via --all-rules.
PERF_SCOPE = ("src/repro/",)

#: Justification pragma grammar: ``# lint: hot-ok(<reason>)``.
HOT_OK_RE = re.compile(r"#\s*lint:\s*hot-ok\((?P<why>[^)]*)\)")


def hot_ok_pragmas(lines) -> Dict[int, str]:
    """line -> justification text for every ``hot-ok(...)`` pragma."""
    out: Dict[int, str] = {}
    for i, line in enumerate(lines, start=1):
        m = HOT_OK_RE.search(line)
        if m:
            out[i] = m.group("why").strip()
    return out


def _module_lines(project: Project, rel: str):
    source = project.sources.get(rel)
    return getattr(source, "lines", []) or []


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _loops_in(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Every For/While loop in the function, nested defs included
    (their bodies run per call of the enclosing hot function)."""
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node


def _loop_stmts(body: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements inside a loop body in source order, recursing through
    nested blocks but not into nested def/class bodies (the def
    statement itself is still yielded — creating it per iteration is
    the finding)."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            yield from _loop_stmts(getattr(stmt, field, []))
        for handler in getattr(stmt, "handlers", []):
            yield from _loop_stmts(handler.body)


#: Names that hold observability handles by repo convention.
_OBS_HANDLE = re.compile(
    r"(?:^|_)(?:tel|telemetry|spans?|sp|logger|log|profiler|tracer|sanitizer)$")


def _obs_guard_test(test: ast.AST) -> bool:
    """Is this ``if`` test an observability guard — an ``.enabled`` flag
    read, or an is/is-not-None check on an obs handle?  Blocks behind
    such guards only run in instrumented mode; their per-iteration cost
    is the price of observing, not hot-path churn."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Compare):
            ops_none = any(isinstance(o, (ast.Is, ast.IsNot)) for o in sub.ops)
            mentions_none = any(
                isinstance(c, ast.Constant) and c.value is None
                for c in [sub.left] + list(sub.comparators))
            if ops_none and mentions_none:
                for operand in [sub.left] + list(sub.comparators):
                    chain = _dotted(operand)
                    if chain is not None and _OBS_HANDLE.search(chain[-1]):
                        return True
    return False


def _unguarded_loop_stmts(body: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
    """:func:`_loop_stmts`, but skipping obs-guarded ``if`` bodies."""
    for stmt in body:
        if isinstance(stmt, ast.If) and _obs_guard_test(stmt.test):
            yield from _unguarded_loop_stmts(stmt.orelse)
            continue
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            yield from _unguarded_loop_stmts(getattr(stmt, field, []))
        for handler in getattr(stmt, "handlers", []):
            yield from _unguarded_loop_stmts(handler.body)


def _parent_map(fn_node: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(fn_node):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _inside_obs_guard(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    """Is this node nested anywhere under an obs-guarded ``if`` block?"""
    while id(node) in parents:
        node = parents[id(node)]
        if isinstance(node, (ast.If, ast.IfExp)) and _obs_guard_test(node.test):
            return True
    return False


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """AST nodes in *stmt*'s own expressions, excluding nested blocks
    (which :func:`_loop_stmts` yields as their own statements) and
    nested def/class bodies."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    for field, value in ast.iter_fields(stmt):
        if field in ("body", "orelse", "finalbody", "handlers"):
            continue
        for item in value if isinstance(value, list) else [value]:
            if isinstance(item, ast.AST):
                yield from ast.walk(item)


class _HotFunctionRule(PerfRule):
    """Shared driver: iterate hot functions, apply pragma suppression.

    Subclasses implement :meth:`check_hot_function`; a finding whose
    line carries a non-empty ``# lint: hot-ok(<reason>)`` pragma is
    accepted as justified and dropped here.
    """

    scopes = PERF_SCOPE

    def check_project(self, project: Project) -> Iterable[Violation]:
        cg = project.call_graph()
        pragma_cache: Dict[str, Dict[int, str]] = {}
        for fn in cg.hot_functions():
            info = project.by_name[fn.module]
            if fn.rel not in pragma_cache:
                pragma_cache[fn.rel] = hot_ok_pragmas(_module_lines(project, fn.rel))
            pragmas = pragma_cache[fn.rel]
            for violation in self.check_hot_function(project, cg, info, fn):
                if pragmas.get(violation.line):
                    continue
                yield violation

    def check_hot_function(self, project: Project, cg: CallGraph,
                           info: ModuleInfo, fn: FuncNode) -> Iterator[Violation]:
        raise NotImplementedError

    def _why_hot(self, cg: CallGraph, fn: FuncNode) -> str:
        return "hot function %s (%s)" % (fn.dotted, cg.hot_reason(fn.key))


#: Builtin constructors that allocate a fresh container per call.
_ALLOC_CTORS = frozenset({
    "list", "dict", "set", "tuple", "frozenset", "bytearray", "bytes",
    "deque", "defaultdict", "OrderedDict", "Counter",
})
#: numpy allocators (receiver ``np``/``numpy``) that matter per packet.
_NP_ALLOC_ATTRS = frozenset({"zeros", "ones", "empty", "array", "full"})


@register
class AllocInHotLoopRule(_HotFunctionRule):
    """Per-iteration allocation inside a hot-path loop.

    Every object constructed in the loop body of a packet-rate function
    is churn the allocator (and GC) pays per packet; PR 4's wins came
    from hoisting exactly these.  Flags container/object construction,
    comprehensions, lambda/closure creation, bytes/str concatenation and
    string formatting inside For/While bodies of hot functions.
    """

    id = "alloc-in-hot-loop"
    description = ("object/list/dict/tuple construction, comprehensions, "
                   "lambda/closure creation, bytes concatenation and "
                   "f-string/% formatting inside hot-path loops; hoist or "
                   "reuse the buffer, or justify with "
                   "'# lint: hot-ok(<reason>)'")

    def check_project(self, project: Project) -> Iterable[Violation]:
        yield from super().check_project(project)
        # a hot-ok pragma with no reason is itself a violation (reported
        # once, by this rule, mirroring shard-mutable-global)
        for rel, info in project.active_modules():
            for line, why in sorted(hot_ok_pragmas(_module_lines(project, rel)).items()):
                if not why:
                    yield Violation(
                        self.id, rel, line, 0,
                        "hot-ok pragma without a reason; write "
                        "'# lint: hot-ok(<why this cost is acceptable on "
                        "the hot path>)'")

    def check_hot_function(self, project: Project, cg: CallGraph,
                           info: ModuleInfo, fn: FuncNode) -> Iterator[Violation]:
        seen: Set[int] = set()
        parents = _parent_map(fn.node)
        for loop in _loops_in(fn.node):
            # a loop living entirely inside an obs-guarded block only
            # runs in instrumented mode
            if _inside_obs_guard(loop, parents):
                continue
            for stmt in _unguarded_loop_stmts(loop.body + loop.orelse):
                # allocations feeding a raise/return leave the loop — not
                # per-iteration steady state
                if isinstance(stmt, (ast.Raise, ast.Return)):
                    continue
                # ``a, b = x, y`` compiles to pure stack ops: no tuple
                if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Tuple)
                        and isinstance(stmt.value, ast.Tuple)
                        and len(stmt.targets[0].elts) == len(stmt.value.elts)):
                    seen.add(id(stmt.value))
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if id(stmt) not in seen:
                        seen.add(id(stmt))
                        yield Violation(
                            self.id, fn.rel, stmt.lineno, stmt.col_offset,
                            "closure %r created per loop iteration in %s; "
                            "define it once outside the loop"
                            % (stmt.name, self._why_hot(cg, fn)))
                    continue
                for node in _own_exprs(stmt):
                    if id(node) in seen:
                        continue
                    label = self._alloc_label(project, info, node)
                    if label is None:
                        continue
                    seen.add(id(node))
                    yield Violation(
                        self.id, fn.rel, node.lineno, node.col_offset,
                        "%s per loop iteration in %s; hoist it out of the "
                        "loop or reuse a preallocated buffer"
                        % (label, self._why_hot(cg, fn)))

    def _alloc_label(self, project: Project, info: ModuleInfo,
                     node: ast.AST) -> Optional[str]:
        """Classify one expression node as a per-iteration allocation."""
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return "comprehension allocates a fresh container"
        if isinstance(node, ast.Lambda):
            return "lambda created"
        if isinstance(node, (ast.List, ast.Set, ast.Dict)):
            return "%s literal allocated" % type(node).__name__.lower()
        if isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load) and node.elts:
            return "tuple constructed"
        if isinstance(node, ast.JoinedStr):
            return "f-string formatted"
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Mod) and self._is_str_constant(node.left):
                return "%-style string formatted"
            if isinstance(node.op, ast.Add) and (
                    self._is_bytes_like(node.left) or self._is_bytes_like(node.right)):
                return "bytes/str concatenation allocates"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _ALLOC_CTORS:
                    return "%s() constructed" % func.id
                sd = project.resolve_callee(info, func)
                if sd is not None and sd.kind == "class":
                    return "%s object constructed" % func.id
                if func.id[:1].isupper():
                    return "%s object constructed" % func.id
            elif isinstance(func, ast.Attribute):
                chain = _dotted(func)
                if (chain is not None and len(chain) == 2
                        and chain[0] in ("np", "numpy")
                        and chain[1] in _NP_ALLOC_ATTRS):
                    return "np.%s array allocated" % chain[1]
                if func.attr == "format" and self._is_str_constant(func.value):
                    return "str.format() formatted"
        return None

    @staticmethod
    def _is_str_constant(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and isinstance(node.value, str)

    @staticmethod
    def _is_bytes_like(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and isinstance(node.value, (bytes, str))


#: struct-module functions that re-parse their format string per call.
_STRUCT_FUNCS = frozenset({"pack", "unpack", "pack_into", "unpack_from",
                           "calcsize"})


@register
class SlowIdiomRule(_HotFunctionRule):
    """Known-slow idioms anywhere in a hot function.

    These are constant-factor sinks, not asymptotic ones (see
    ``hidden-quadratic`` for those): ``list.pop(0)`` shifts the whole
    list, a membership test on a list scans it, bare ``struct.pack``
    re-parses the format string every call, a multi-hop attribute chain
    re-dereferenced in a loop body pays the lookups per iteration, and
    try/except in a tight loop adds per-iteration setup.
    """

    id = "slow-idiom"
    description = ("list.pop(0), membership tests on lists, non-precompiled "
                   "struct.pack/unpack, repeated multi-hop attribute chains "
                   "and try/except inside hot loops; use deque/set/"
                   "struct.Struct/local bindings, or justify with "
                   "'# lint: hot-ok(<reason>)'")

    def check_hot_function(self, project: Project, cg: CallGraph,
                           info: ModuleInfo, fn: FuncNode) -> Iterator[Violation]:
        why = self._why_hot(cg, fn)
        list_locals = self._list_locals(fn.node)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (node.func.attr == "pop" and len(node.args) == 1
                        and isinstance(node.args[0], ast.Constant)
                        and node.args[0].value == 0):
                    yield Violation(
                        self.id, fn.rel, node.lineno, node.col_offset,
                        "list.pop(0) shifts every element, in %s; use "
                        "collections.deque and popleft()" % why)
                chain = _dotted(node.func)
                if (chain is not None and len(chain) == 2
                        and chain[0] == "struct" and chain[1] in _STRUCT_FUNCS):
                    yield Violation(
                        self.id, fn.rel, node.lineno, node.col_offset,
                        "struct.%s() re-parses its format string on every "
                        "call, in %s; hoist a module-level struct.Struct "
                        "and call its bound method" % (chain[1], why))
            elif isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if not isinstance(op, (ast.In, ast.NotIn)):
                        continue
                    if isinstance(comparator, ast.List) or (
                            isinstance(comparator, ast.Name)
                            and comparator.id in list_locals):
                        yield Violation(
                            self.id, fn.rel, node.lineno, node.col_offset,
                            "membership test scans a list, in %s; use a "
                            "set (or frozenset constant)" % why)
        seen_try: Set[int] = set()
        for loop in _loops_in(fn.node):
            yield from self._repeated_chains(fn, loop, why)
            for stmt in _loop_stmts(loop.body + loop.orelse):
                if isinstance(stmt, ast.Try) and id(stmt) not in seen_try:
                    seen_try.add(id(stmt))
                    yield Violation(
                        self.id, fn.rel, stmt.lineno, stmt.col_offset,
                        "try/except inside a hot loop, in %s; hoist the "
                        "try outside the loop or pre-validate the input"
                        % why)

    @staticmethod
    def _list_locals(fn_node: ast.AST) -> Set[str]:
        """Names bound to list values within the function."""
        out: Set[str] = set()
        for node in ast.walk(fn_node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            value = node.value
            is_list = isinstance(value, (ast.List, ast.ListComp)) or (
                isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id == "list")
            if is_list:
                out.add(node.targets[0].id)
        return out

    def _repeated_chains(self, fn: FuncNode, loop: ast.AST,
                         why: str) -> Iterator[Violation]:
        """Multi-hop attribute chains read >= 2 times in one loop body."""
        counts: Dict[Tuple[str, ...], List[ast.AST]] = {}
        for stmt in _loop_stmts(loop.body + loop.orelse):
            for node in _own_exprs(stmt):
                if not (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)):
                    continue
                chain = _dotted(node)
                if chain is None or len(chain) < 3:
                    continue
                counts.setdefault(chain, []).append(node)
        for chain, nodes in sorted(counts.items()):
            # drop sub-chains of a longer counted chain (a.b.c.d also
            # walks a.b.c); report the longest form only
            if any(other != chain and other[:len(chain)] == chain
                   for other in counts):
                continue
            if len(nodes) < 2:
                continue
            first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
            yield Violation(
                self.id, fn.rel, first.lineno, first.col_offset,
                "attribute chain %s dereferenced %d times in this loop "
                "body, in %s; bind it to a local before the loop"
                % (".".join(chain), len(nodes), why))


@register
class HiddenQuadraticRule(_HotFunctionRule):
    """Accidentally-quadratic loops in hot functions.

    ``acc += piece`` on a list/bytes/str accumulator copies the whole
    accumulator per iteration — O(n²) disguised as an append — and a
    nested loop over the same collection is O(n²) by construction.
    """

    id = "hidden-quadratic"
    description = ("+= on list/bytes/str accumulators inside loops and "
                   "nested iteration over the same collection; collect "
                   "into a list and join/extend once, or justify with "
                   "'# lint: hot-ok(<reason>)'")

    def check_hot_function(self, project: Project, cg: CallGraph,
                           info: ModuleInfo, fn: FuncNode) -> Iterator[Violation]:
        why = self._why_hot(cg, fn)
        acc_types = self._accumulator_types(fn.node)
        seen: Set[int] = set()
        for loop in _loops_in(fn.node):
            for stmt in _loop_stmts(loop.body + loop.orelse):
                if id(stmt) in seen:
                    continue
                target: Optional[str] = None
                if (isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add)
                        and isinstance(stmt.target, ast.Name)):
                    target = stmt.target.id
                elif (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                      and isinstance(stmt.targets[0], ast.Name)
                      and isinstance(stmt.value, ast.BinOp)
                      and isinstance(stmt.value.op, ast.Add)
                      and isinstance(stmt.value.left, ast.Name)
                      and stmt.value.left.id == stmt.targets[0].id):
                    target = stmt.targets[0].id
                if target is not None and target in acc_types:
                    seen.add(id(stmt))
                    yield Violation(
                        self.id, fn.rel, stmt.lineno, stmt.col_offset,
                        "'%s += ...' on a %s accumulator in a loop copies "
                        "the whole accumulator per iteration (quadratic), "
                        "in %s; append parts and join/extend once after "
                        "the loop" % (target, acc_types[target], why))
            yield from self._nested_same_iter(fn, loop, why, seen)

    @staticmethod
    def _accumulator_types(fn_node: ast.AST) -> Dict[str, str]:
        """name -> kind for locals initialised as list/bytes/str."""
        out: Dict[str, str] = {}
        for node in ast.walk(fn_node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            name = node.targets[0].id
            value = node.value
            if isinstance(value, (ast.List, ast.ListComp)):
                out.setdefault(name, "list")
            elif isinstance(value, ast.Constant) and isinstance(value.value, bytes):
                out.setdefault(name, "bytes")
            elif isinstance(value, ast.Constant) and isinstance(value.value, str):
                out.setdefault(name, "str")
            elif (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                  and value.func.id in ("list", "bytes", "str")):
                out.setdefault(name, value.func.id)
        return out

    def _nested_same_iter(self, fn: FuncNode, loop: ast.AST, why: str,
                          seen: Set[int]) -> Iterator[Violation]:
        if not isinstance(loop, (ast.For, ast.AsyncFor)):
            return
        outer_iter = self._iter_key(loop.iter)
        if outer_iter is None:
            return
        for stmt in _loop_stmts(loop.body + loop.orelse):
            if (isinstance(stmt, (ast.For, ast.AsyncFor))
                    and id(stmt) not in seen
                    and self._iter_key(stmt.iter) == outer_iter):
                seen.add(id(stmt))
                yield Violation(
                    self.id, fn.rel, stmt.lineno, stmt.col_offset,
                    "nested iteration over %s inside a loop over the same "
                    "collection is O(n^2), in %s; restructure (index map, "
                    "sort, or single pass)"
                    % (".".join(outer_iter), why))

    @staticmethod
    def _iter_key(node: ast.AST) -> Optional[Tuple[str, ...]]:
        """Identity of an iterable expression, when nameable."""
        chain = _dotted(node)
        if chain is not None:
            return chain
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("items", "keys", "values") and not node.args):
            return _dotted(node.func.value)
        return None


#: Observability receivers and the methods that build payloads per call.
#: ``tel.event/count/observe/set_gauge`` is deliberately absent: the
#: per-file ``telemetry-guard`` rule owns those sites everywhere.
_OBS_RECEIVERS = re.compile(r"(?:^|_)(?:spans?|tracer|logger|log)$")
_OBS_METHODS = frozenset({
    # span API (repro.obs.spans)
    "start", "end", "span", "annotate", "start_span", "end_span", "record",
    # stdlib-style logging
    "debug", "info", "warning", "error", "exception",
})


@register
class UnguardedHotCallRule(_HotFunctionRule):
    """Observability calls on the hot path must be guard-gated.

    The obs layer provides null singletons (``NULL_SPANS``,
    ``NULL_TELEMETRY``) with an ``enabled`` flag precisely so disabled
    observability costs one branch; an unguarded ``spans.start(...)`` or
    ``logger.debug("%s", pkt)`` in a packet-rate function pays argument
    construction per packet even when the sink is off.
    """

    id = "unguarded-hot-call"
    description = ("logging/span calls in hot functions need an enclosing "
                   "'if x.enabled:' / 'is not None' / truthiness guard so "
                   "the disabled path stays one branch; or justify with "
                   "'# lint: hot-ok(<reason>)'")
    #: The obs layer implements the guarded APIs; it may call itself.
    exempt = ("src/repro/obs/",)

    def check_hot_function(self, project: Project, cg: CallGraph,
                           info: ModuleInfo, fn: FuncNode) -> Iterator[Violation]:
        why = self._why_hot(cg, fn)
        parents = _parent_map(fn.node)
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in _OBS_METHODS:
                continue
            receiver = node.func.value
            rchain = _dotted(receiver)
            if rchain is None or not _OBS_RECEIVERS.search(rchain[-1]):
                continue
            if self._guarded(node, parents, rchain):
                continue
            yield Violation(
                self.id, fn.rel, node.lineno, node.col_offset,
                "unguarded observability call %s.%s() in %s; wrap it in "
                "'if %s.enabled:' (or an 'is not None' / truthiness check) "
                "so the disabled path costs one branch"
                % (".".join(rchain), node.func.attr, why, ".".join(rchain)))

    def _guarded(self, call: ast.AST, parents: Dict[int, ast.AST],
                 rchain: Tuple[str, ...]) -> bool:
        node = call
        while id(node) in parents:
            node = parents[id(node)]
            if isinstance(node, (ast.If, ast.IfExp)) and self._test_guards(
                    node.test, rchain):
                return True
        return False

    @staticmethod
    def _test_guards(test: ast.AST, rchain: Tuple[str, ...]) -> bool:
        # bare truthiness of the receiver (or a prefix of it)
        chain = _dotted(test)
        if chain is not None and (chain == rchain or rchain[:len(chain)] == chain):
            return True
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
            if isinstance(sub, ast.Compare):
                ops_none = any(isinstance(o, (ast.Is, ast.IsNot)) for o in sub.ops)
                mentions_none = any(
                    isinstance(c, ast.Constant) and c.value is None
                    for c in [sub.left] + list(sub.comparators))
                if ops_none and mentions_none:
                    return True
        return False
